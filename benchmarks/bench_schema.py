"""The shared schema for the repository's BENCH_*.json files.

Every benchmark (``BENCH_match.json``, ``BENCH_dependence.json``,
``BENCH_service.json``) records its numbers in one normalized shape so
dashboards and regression checks can read any of them identically:

* ``host`` — where the numbers were measured: ``python`` version,
  ``platform`` string, ``cpus`` (usable cores, the scheduler's
  affinity mask), ``cpu_count`` (``os.cpu_count()``, the machine's
  total — parallel speedups are meaningless without both), and
  optionally ``backend`` (the service worker mode the numbers were
  taken under);
* ``sizes`` — a non-empty list of measurements, each with an integer
  ``size`` (the workload scale knob) and at least one ``*speedup*``
  field (the ratio the benchmark exists to track).

Benchmark-specific fields (pipelines, counters, targets) ride along
unconstrained.  :func:`write_bench` stamps the host block, validates,
and writes; ``tests/test_bench_schema.py`` re-validates the committed
files so a benchmark edit cannot silently drift from the shape.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import sys
from pathlib import Path


def host_info(backend: str | None = None) -> dict[str, object]:
    """Where (and under which service backend) these numbers were
    measured.  ``cpus`` is the usable-core count (affinity mask);
    ``cpu_count`` is the machine total — a 0.9x "parallel speedup"
    on a 1-CPU host is expected, not a regression, and the host block
    is what lets a reader tell the difference."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    info: dict[str, object] = {
        "python": sys.version.split()[0],
        "platform": _platform.platform(),
        "cpus": cpus,
        "cpu_count": os.cpu_count() or 1,
    }
    if backend is not None:
        info["backend"] = backend
    return info


def validate_bench(payload: dict) -> list[str]:
    """Schema problems in a BENCH payload (empty list: conforming)."""
    problems: list[str] = []
    host = payload.get("host")
    if not isinstance(host, dict):
        problems.append("missing 'host' object")
    else:
        for key in ("python", "platform"):
            if not isinstance(host.get(key), str) or not host.get(key):
                problems.append(f"host.{key} must be a non-empty string")
        cpus = host.get("cpus")
        if not isinstance(cpus, int) or cpus < 1:
            problems.append("host.cpus must be an integer >= 1")
        cpu_count = host.get("cpu_count")
        if not isinstance(cpu_count, int) or cpu_count < 1:
            problems.append("host.cpu_count must be an integer >= 1")
        backend = host.get("backend")
        if backend is not None and (
            not isinstance(backend, str) or not backend
        ):
            problems.append("host.backend must be a non-empty string")
    sizes = payload.get("sizes")
    if not isinstance(sizes, list) or not sizes:
        problems.append("'sizes' must be a non-empty list")
        return problems
    previous_size: int | None = None
    for index, entry in enumerate(sizes):
        if not isinstance(entry, dict):
            problems.append(f"sizes[{index}] must be an object")
            continue
        size = entry.get("size")
        if not isinstance(size, int) or size < 1:
            problems.append(f"sizes[{index}].size must be an integer >= 1")
        else:
            if previous_size is not None and size <= previous_size:
                problems.append(
                    f"sizes[{index}].size ({size}) must exceed "
                    f"sizes[{index - 1}].size ({previous_size}): entries "
                    "are one scaling curve, smallest first"
                )
            previous_size = size
        speedups = [
            key for key, value in entry.items()
            if "speedup" in key and isinstance(value, (int, float))
        ]
        if not speedups:
            problems.append(
                f"sizes[{index}] needs at least one numeric *speedup* field"
            )
    return problems


def write_bench(path: Path | str, payload: dict) -> dict:
    """Stamp the host block, validate, and write the BENCH file."""
    payload = dict(payload)
    payload.setdefault("host", host_info())
    problems = validate_bench(payload)
    if problems:
        raise ValueError(
            f"{path}: BENCH payload violates the shared schema: "
            + "; ".join(problems)
        )
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload
