"""Shared benchmark fixtures."""

from __future__ import annotations

import pytest

from repro.opts.catalog import standard_optimizers
from repro.workloads.suite import full_suite


@pytest.fixture(scope="session")
def optimizers():
    return standard_optimizers()


@pytest.fixture(scope="session")
def suite():
    return full_suite()
