"""Ablation benchmark: dependence recomputation between applications.

The interactive interface lets the user skip recomputation (paper
Figure 4, step 3.b.vi); this bench quantifies the trade on the suite.
The driver's alive-edge guard makes stale graphs safe for the
self-disabling scalar sequence, at a multi-x speedup.
"""

from repro.experiments.ablation import run_recompute_ablation


def test_recompute_ablation(benchmark, capsys):
    result = benchmark.pedantic(run_recompute_ablation, rounds=1,
                                iterations=1)
    with capsys.disabled():
        print()
        print(result.table())
    assert result.stale_is_faster_overall
    assert result.all_correct
    assert result.total_stale <= result.total_fresh
