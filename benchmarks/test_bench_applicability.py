"""Benchmark E2: the applicability sweep.

Regenerates the paper's applicability observations: CTP is the most
frequently applicable optimization; ICM has no application points; CPP
appears in two programs; FUS in one.
"""

from repro.experiments.applicability import run_applicability


def test_e2_report(benchmark, capsys):
    result = benchmark.pedantic(run_applicability, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.table())
    claims = result.paper_claims()
    assert all(claims.values()), claims


def test_applicability_single_program(benchmark):
    from repro.workloads.suite import full_suite

    benchmark(run_applicability, full_suite(["jacobian"]))
