"""Benchmark E5: cost and benefit of the optimizations.

Regenerates the paper's cost/benefit study: instrumented precondition/
transformation counts per application, validated against wall-clock
time (high correlation), and estimated benefits under scalar, vector
and multiprocessor models.  The headline shapes: INX cheap with large
parallel benefit; CTP cheap (and an enabler); FUS rare and expensive
with little benefit.
"""

from repro.experiments.costbenefit import run_costbenefit


def test_e5_report(benchmark, capsys):
    result = benchmark.pedantic(run_costbenefit, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.table())
    assert result.correlation() > 0.8
    inx = result.row("INX")
    fus = result.row("FUS")
    ctp = result.row("CTP")
    assert inx.cost_per_application < fus.cost_per_application
    assert inx.benefit["multiprocessor"] > 0
    assert fus.applications == 1
    assert ctp.applications == max(r.applications for r in result.rows)
