"""Full-rebuild vs incremental dependence maintenance (ISSUE 2).

Runs a ten-pass scalar pipeline over synthetic workloads of growing
size, once with an :class:`AnalysisManager` forced to rebuild the
dependence graph from scratch on every program mutation (the paper's
Figure 5 driver behaviour) and once with incremental splicing enabled.
Timings for every size are recorded in ``BENCH_dependence.json`` at
the repository root; the largest size must show at least a
:data:`TARGET_SPEEDUP` wall-clock improvement.

``test_smoke_incremental_matches_full`` is the cheap CI entry point
(select with ``-k smoke``): one small size, asserting the two arms
produce the identical optimized program rather than any timing ratio.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from bench_schema import write_bench
from repro.analysis.manager import AnalysisManager, AnalysisStats
from repro.genesis.driver import DriverOptions, run_optimizer
from repro.ir.program import Program
from repro.opts.catalog import standard_optimizers
from repro.workloads.synthetic import random_program

#: The 10-pass pipeline: two cleanup rounds plus a final sweep.
PASSES = ["CTP", "CFO", "CPP", "DCE"] * 2 + ["CTP", "DCE"]

#: Synthetic workload sizes (requested statement counts).
SIZES = (80, 160, 320, 480)

SEED = 7

#: Required wall-clock improvement at the largest size.  Was 3.0 when
#: a from-scratch analysis was the superlinear seed implementation;
#: the million-quad IR work (structured-walk scalar dataflow, memoized
#: subscript tests — see docs/ir.md) cut the full-rebuild arm itself
#: by ~1.7x, compressing the incremental ratio it is measured against.
TARGET_SPEEDUP = 1.8

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_dependence.json"


@pytest.fixture(scope="module")
def pipeline_optimizers():
    return standard_optimizers(("CTP", "CFO", "CPP", "DCE"))


def _run_pipeline(
    program: Program, optimizers, incremental: bool
) -> AnalysisStats:
    manager = AnalysisManager(program, incremental=incremental)
    options = DriverOptions(apply_all=True)
    for name in PASSES:
        run_optimizer(optimizers[name], program, options, manager=manager)
    return manager.stats


def _measure(
    base: Program, optimizers, incremental: bool
) -> tuple[float, Program, AnalysisStats]:
    program = base.clone()
    start = time.perf_counter()
    stats = _run_pipeline(program, optimizers, incremental)
    return time.perf_counter() - start, program, stats


def test_incremental_speedup(pipeline_optimizers):
    """Sizes x rebuild-vs-incremental sweep, recorded as JSON."""
    results: dict[str, object] = {
        "pipeline": PASSES,
        "seed": SEED,
        "target_speedup_at_largest": TARGET_SPEEDUP,
        "sizes": [],
    }
    speedup_at_largest = 0.0
    for size in SIZES:
        base = random_program(SEED, size=size, max_depth=2)
        full_s, full_prog, full_stats = _measure(
            base, pipeline_optimizers, incremental=False
        )
        incr_s, incr_prog, incr_stats = _measure(
            base, pipeline_optimizers, incremental=True
        )
        # both arms must optimize identically, or the timing is moot
        assert [str(q) for q in incr_prog] == [str(q) for q in full_prog]
        speedup = full_s / incr_s
        results["sizes"].append(
            {
                "size": size,
                "quads": len(base),
                "full_rebuild_s": round(full_s, 4),
                "incremental_s": round(incr_s, 4),
                "speedup": round(speedup, 2),
                "full_arm_rebuilds": full_stats.full_rebuilds,
                "incremental_arm": {
                    "full_rebuilds": incr_stats.full_rebuilds,
                    "incremental_updates": incr_stats.incremental_updates,
                    "edges_retained": incr_stats.edges_retained,
                    "edges_recomputed": incr_stats.edges_recomputed,
                },
            }
        )
        if size == SIZES[-1]:
            speedup_at_largest = speedup
    write_bench(RESULTS_PATH, results)
    assert speedup_at_largest >= TARGET_SPEEDUP, (
        f"incremental maintenance gave only {speedup_at_largest:.2f}x at "
        f"size {SIZES[-1]} (need {TARGET_SPEEDUP}x); see {RESULTS_PATH}"
    )


def test_smoke_incremental_matches_full(pipeline_optimizers):
    """CI smoke: one small size, equivalence only (no timing assert)."""
    base = random_program(SEED, size=40, max_depth=2)
    _, full_prog, _ = _measure(base, pipeline_optimizers, incremental=False)
    _, incr_prog, incr_stats = _measure(
        base, pipeline_optimizers, incremental=True
    )
    assert [str(q) for q in incr_prog] == [str(q) for q in full_prog]
    assert incr_stats.incremental_updates > 0
    assert incr_stats.edges_retained > 0
