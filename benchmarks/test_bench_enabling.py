"""Benchmark E3: enabling interactions.

Regenerates the paper's counts: "Of the total 97 application points for
CTP, 13 of these enabled DCE, 5 enabled CFO and 41 enabled LUR ...  CPP
... did not create opportunities for further optimization."  The
absolute counts depend on the workload substitution; the shape (LUR
first, DCE second, CFO third; CPP enabling nothing) must reproduce.
"""

from repro.experiments.enabling import run_enabling_matrix


def test_e3_report(benchmark, capsys):
    result = benchmark.pedantic(run_enabling_matrix, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.table())
    ctp = result.results["CTP"]
    assert ctp.enabled_counts["LUR"] > ctp.enabled_counts["DCE"]
    assert ctp.enabled_counts["DCE"] > ctp.enabled_counts["CFO"]
    assert ctp.enabled_counts["CFO"] > 0
    cpp = result.results["CPP"]
    assert sum(cpp.enabled_counts.values()) == 0
