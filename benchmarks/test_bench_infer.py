"""Spec-inference throughput: serial vs service-backed screening.

Runs the full mine -> generalize -> admit loop at growing pair-stream
sizes, once with in-process screening and once with the legality gate
fanned out through a :class:`~repro.service.client.ServiceClient`
(process backend).  Records candidates screened per second, admitted
counts, and the service-vs-serial wall-clock ratio per size in
``BENCH_infer.json`` (shared schema, ``benchmarks/bench_schema.py``).

The two arms must agree exactly — same admitted fingerprints, same
rejection sequence — before any timing is recorded; a parity break is
a correctness bug, not a performance data point.

``test_smoke_infer_admits_and_refuses`` is the cheap CI entry point
(select with ``-k smoke``): a small serial run asserting the harness
admits sound specs, refuses the unsound plants, and leaves
counterexample artifacts, with no timing assertions.
"""

from __future__ import annotations

import time
from pathlib import Path

from bench_schema import host_info, write_bench
from repro.service.client import ServiceClient
from repro.synth.infer import InferenceConfig, run_inference

#: pair-generator stream lengths (the workload scale knob); each size
#: also trace-mines a fuzz corpus scaled to the stream
SIZES = (9, 18, 36)

SEED = 0

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_infer.json"


def _config(pairs: int) -> InferenceConfig:
    return InferenceConfig(
        seed=SEED,
        pairs=pairs,
        trace_programs=pairs,
        network_gate=False,
    )


def _signature(result):
    return (
        [(s.name, s.fingerprint) for s in result.admitted],
        [(r.name, r.rung, r.rejected_gate) for r in result.rejections],
    )


def test_infer_throughput():
    entries = []
    for pairs in SIZES:
        config = _config(pairs)
        start = time.perf_counter()
        serial = run_inference(config)
        serial_s = time.perf_counter() - start
        with ServiceClient(backend="process", max_workers=2) as client:
            start = time.perf_counter()
            backed = run_inference(config, client=client)
            service_s = time.perf_counter() - start
        assert _signature(serial) == _signature(backed), (
            "service-backed screening diverged from serial"
        )
        entries.append(
            {
                "size": pairs,
                "windows": serial.windows,
                "candidates_screened": serial.screened,
                "admitted": len(serial.admitted),
                "rejections": len(serial.rejections),
                "skipped_windows": len(serial.skipped_windows),
                "serial_s": round(serial_s, 4),
                "service_s": round(service_s, 4),
                "candidates_per_s_serial": round(
                    serial.screened / serial_s, 2
                ),
                "candidates_per_s_service": round(
                    backed.screened / service_s, 2
                ),
                "service_speedup": round(serial_s / service_s, 2),
            }
        )
    payload = {
        "seed": SEED,
        "host": host_info(backend="process"),
        "sizes": entries,
    }
    write_bench(RESULTS_PATH, payload)
    # throughput floor, not a parallel-speedup target: screening is
    # admission-dominated and the container may have one usable core
    # (see host.cpus), so the service arm only has to stay sane
    largest = entries[-1]
    assert largest["admitted"] >= 5, largest
    assert largest["candidates_per_s_serial"] > 1.0, largest


def test_smoke_infer_admits_and_refuses(tmp_path):
    """CI smoke: one small serial run, evidence checks only."""
    config = InferenceConfig(
        seed=SEED, pairs=9, trace_programs=0,
        network_gate=False, out_dir=tmp_path,
    )
    result = run_inference(config)
    assert len(result.admitted) >= 5, result.summary()
    admitted = {spec.name for spec in result.admitted}
    assert not any("DIV" in name or "MOD" in name for name in admitted)
    # every admitted spec is persisted, every oracle rejection shrunk
    for spec in result.admitted:
        assert (tmp_path / f"{spec.name}.gospel").exists()
    oracle_rejects = [
        r for r in result.rejections if r.rejected_gate == "oracle"
    ]
    assert oracle_rejects
    assert any(r.counterexample is not None for r in oracle_rejects)
