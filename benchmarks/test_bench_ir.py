"""Million-quad IR scaling: mutation throughput and fingerprint latency.

The blocked-list container (:mod:`repro.ir.blocklist`) replaced the
seed ``Program``'s dense ``qid -> position`` dict, which was rebuilt in
full after *every* mutation — O(n) per edit, quadratic for any
transformation sweep.  The incremental fingerprint replaced a full
re-render of every statement per digest.  This benchmark measures both
against the seed path on HOMPACK-flavoured programs from
:func:`repro.workloads.large_program`:

* **mutation arm** — identical random insert/remove scripts, once with
  the container's own index maintenance, once paying the seed's dense
  reindex (the exact dict comprehension the old ``_reindex`` ran)
  after every mutation;
* **fingerprint arm** — identical random ``replace`` scripts, once
  asking the incremental ``fingerprint()`` after each edit, once the
  full recompute (``_full_fingerprint``).  The two arms' digests must
  agree edit for edit, or the timing is moot.

Results for every size land in ``BENCH_ir.json``; the largest size
must clear :data:`TARGET_MUTATION_SPEEDUP` and
:data:`TARGET_FP_SPEEDUP`.  ``test_million_quad_driver_pass``
additionally generates a fresh 10^6-quad program and runs one full
driver pass (dependence analysis + matching + one application) inside
:data:`MILLION_BUDGET_S`, recording the phase times alongside the
curve.

``test_smoke_ir_equivalence`` is the cheap CI entry point (select with
``-k smoke``): one small size, equivalence of both arms only.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

from bench_schema import host_info, write_bench
from repro.analysis.manager import AnalysisManager
from repro.genesis.driver import DriverOptions, run_optimizer
from repro.ir.program import Program
from repro.ir.quad import Opcode, Quad
from repro.opts.catalog import standard_optimizers
from repro.workloads import bulk_alloc, large_program

SEED = 5

#: Workload sizes (requested quad counts) — one curve, smallest first.
SIZES = (1_000, 10_000, 100_000, 1_000_000)

#: Edit-script lengths per size (the seed arm pays O(n) per edit, so
#: the biggest sizes use shorter scripts to keep the run bounded).
MUTATIONS = {1_000: 400, 10_000: 400, 100_000: 200, 1_000_000: 50}
FP_PROBES = {1_000: 50, 10_000: 50, 100_000: 20, 1_000_000: 4}

#: Required wall-clock ratios at the largest size.
TARGET_MUTATION_SPEEDUP = 10.0
TARGET_FP_SPEEDUP = 20.0

MILLION = 1_000_000
#: Generation plus one full driver pass must fit in this many seconds.
MILLION_BUDGET_S = 1_800.0

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_ir.json"


def _fresh_quad(rng: random.Random) -> Quad:
    from repro.ir.types import Const, Var

    return Quad(
        Opcode.ASSIGN,
        result=Var(f"bm{rng.randint(0, 99)}"),
        a=Const(rng.randint(0, 999)),
    )


def _dense_reindex(program: Program) -> dict[int, int]:
    """The seed container's per-mutation cost: rebuild the complete
    ``qid -> position`` map (what ``Program._reindex`` did before the
    blocked list)."""
    return {quad.qid: position for position, quad in enumerate(program)}


# ----------------------------------------------------------------------
# mutation arm
# ----------------------------------------------------------------------
def _mutation_script(program: Program, ops: int, seed: int):
    """The shared edit script: (anchor qid, replacement quad) pairs."""
    rng = random.Random(seed)
    anchors = rng.choices(program.qids(), k=ops)
    return [(anchor, _fresh_quad(rng)) for anchor in anchors]


def _time_mutations(program: Program, script, dense: bool) -> float:
    start = time.perf_counter()
    for anchor, quad in script:
        inserted = program.insert_after(anchor, quad)
        if dense:
            index = _dense_reindex(program)
            position = index[inserted.qid]
        else:
            position = program.position(inserted.qid)
        assert position >= 0
        program.remove(inserted.qid)
        if dense:
            _dense_reindex(program)
    return time.perf_counter() - start


# ----------------------------------------------------------------------
# fingerprint arm
# ----------------------------------------------------------------------
def _fp_script(program: Program, probes: int, seed: int):
    rng = random.Random(seed)
    targets = rng.sample(program.qids(), probes)
    return [(qid, _fresh_quad(rng)) for qid, _ in zip(targets, range(probes))]


def _time_fingerprints(program: Program, script, full: bool):
    program.fingerprint()  # both arms start from a warm digest
    digests = []
    start = time.perf_counter()
    for qid, quad in script:
        program.replace(qid, quad)
        if full:
            digests.append(program._full_fingerprint())
        else:
            digests.append(program.fingerprint())
    return time.perf_counter() - start, digests


def _measure_size(size: int) -> dict[str, object]:
    base = large_program(seed=SEED, target_quads=size)
    ops = MUTATIONS[size]
    probes = FP_PROBES[size]

    script = _mutation_script(base, ops, seed=SEED + 1)
    seed_prog, new_prog = base.clone(), base.clone()
    seed_mut_s = _time_mutations(seed_prog, script, dense=True)
    new_mut_s = _time_mutations(new_prog, script, dense=False)
    # identical scripts must leave identical programs
    assert seed_prog.fingerprint() == new_prog.fingerprint()

    fp_script = _fp_script(base, probes, seed=SEED + 2)
    seed_prog, new_prog = base.clone(), base.clone()
    seed_fp_s, seed_digests = _time_fingerprints(seed_prog, fp_script, full=True)
    new_fp_s, new_digests = _time_fingerprints(new_prog, fp_script, full=False)
    # the incremental digest must equal the full recompute, edit for edit
    assert seed_digests == new_digests

    return {
        "size": size,
        "quads": len(base),
        "mutations": ops,
        "seed_mutation_s": round(seed_mut_s, 4),
        "blocklist_mutation_s": round(new_mut_s, 4),
        "mutation_speedup": round(seed_mut_s / new_mut_s, 2),
        "mutation_us_per_op": round(new_mut_s / ops * 1e6, 2),
        "fingerprint_probes": probes,
        "full_fingerprint_s": round(seed_fp_s, 4),
        "incremental_fingerprint_s": round(new_fp_s, 4),
        "fingerprint_speedup": round(seed_fp_s / new_fp_s, 2),
    }


def test_mutation_and_fingerprint_speedups():
    """The sizes curve, recorded as BENCH_ir.json."""
    entries = [_measure_size(size) for size in SIZES]
    payload: dict[str, object] = {
        "seed": SEED,
        "target_mutation_speedup_at_largest": TARGET_MUTATION_SPEEDUP,
        "target_fingerprint_speedup_at_largest": TARGET_FP_SPEEDUP,
        "sizes": entries,
    }
    if RESULTS_PATH.exists():  # keep a previously recorded driver pass
        previous = json.loads(RESULTS_PATH.read_text())
        if "million_driver" in previous:
            payload["million_driver"] = previous["million_driver"]
    write_bench(RESULTS_PATH, payload)
    largest = entries[-1]
    assert largest["mutation_speedup"] >= TARGET_MUTATION_SPEEDUP, (
        f"mutation speedup {largest['mutation_speedup']}x at size "
        f"{largest['size']} (need {TARGET_MUTATION_SPEEDUP}x); "
        f"see {RESULTS_PATH}"
    )
    assert largest["fingerprint_speedup"] >= TARGET_FP_SPEEDUP, (
        f"fingerprint speedup {largest['fingerprint_speedup']}x at size "
        f"{largest['size']} (need {TARGET_FP_SPEEDUP}x); "
        f"see {RESULTS_PATH}"
    )


def test_million_quad_driver_pass():
    """Generate 10^6 quads and run one full Figure 5 driver pass —
    dependence graph, pattern matching, one application — inside the
    budget.  Phase times are recorded next to the curve."""
    start = time.perf_counter()
    program = large_program(seed=SEED + 3, target_quads=MILLION)
    gen_s = time.perf_counter() - start

    optimizer = standard_optimizers(("DCE",))["DCE"]
    manager = AnalysisManager(program)
    options = DriverOptions(apply_all=False, max_applications=1)
    with bulk_alloc():
        start = time.perf_counter()
        result = run_optimizer(optimizer, program, options, manager=manager)
        driver_s = time.perf_counter() - start

    total_s = gen_s + driver_s
    record = {
        "quads": len(program),
        "generation_s": round(gen_s, 2),
        "driver_pass_s": round(driver_s, 2),
        "total_s": round(total_s, 2),
        "applications": len(result.applications),
        "budget_s": MILLION_BUDGET_S,
    }
    if RESULTS_PATH.exists():
        payload = json.loads(RESULTS_PATH.read_text())
    else:  # standalone run: a minimal conforming payload
        payload = {
            "host": host_info(),
            "sizes": [{"size": MILLION, "fingerprint_speedup": 1.0}],
        }
    payload["million_driver"] = record
    write_bench(RESULTS_PATH, payload)
    assert total_s <= MILLION_BUDGET_S, (
        f"10^6-quad generation + driver pass took {total_s:.1f}s "
        f"(budget {MILLION_BUDGET_S}s); see {RESULTS_PATH}"
    )


def test_smoke_ir_equivalence():
    """CI smoke: one small size, equivalence of both arms only."""
    base = large_program(seed=SEED, target_quads=2_000)
    script = _mutation_script(base, 40, seed=SEED + 1)
    seed_prog, new_prog = base.clone(), base.clone()
    _time_mutations(seed_prog, script, dense=True)
    _time_mutations(new_prog, script, dense=False)
    assert seed_prog.fingerprint() == new_prog.fingerprint()
    assert seed_prog.fingerprint() == seed_prog._full_fingerprint()

    fp_script = _fp_script(base, 10, seed=SEED + 2)
    seed_prog, new_prog = base.clone(), base.clone()
    _, full_digests = _time_fingerprints(seed_prog, fp_script, full=True)
    _, incremental_digests = _time_fingerprints(
        new_prog, fp_script, full=False
    )
    assert full_digests == incremental_digests
    new_prog._store.check_invariants()
