"""Restart-from-top re-scan vs worklist-driven matching (ISSUE 4).

Runs a ten-pass scalar pipeline over synthetic workloads of growing
size, once with ``match_mode="rescan"`` (the paper's Figure 5 driver:
after every application the pattern scan restarts from the top of the
program) and once with ``match_mode="worklist"`` (candidate indexes
plus a dirty-region worklist, :mod:`repro.genesis.matching`).  Only
the matching phase is compared — each arm's discovery wall-clock is
accumulated in ``DriverResult.match_seconds`` — so action/analysis
time does not dilute the ratio.  Timings for every size are recorded
in ``BENCH_match.json`` at the repository root; the largest size must
show at least a :data:`TARGET_SPEEDUP` matching-phase improvement.

``test_network_spec_scaling`` is the catalog-size arm (ISSUE 7): the
steady-state per-edit cost of re-deriving every loaded spec's agenda,
once with a per-spec ``sweep()`` loop and once through the shared
discrimination network's ``sweep_all()``, at catalog sizes 1/5/11,
the full 26-spec real catalog (standard + extended + inferred), and a
~50-spec prefix-sharing stress catalog; recorded under
``spec_scaling`` in the same JSON.

``test_smoke_worklist_matches_rescan`` and
``test_smoke_network_agenda_matches_per_spec`` are the cheap CI entry
points (select with ``-k smoke``): small sizes, asserting behavioural
equivalence between the arms rather than any timing ratio.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from bench_schema import write_bench
from repro.analysis.manager import AnalysisManager
from repro.genesis.driver import DriverOptions, make_context, run_optimizer
from repro.genesis.generator import generate_optimizer
from repro.genesis.matching import (
    MatchEngine,
    MatchStats,
    engine_for,
    spec_fingerprint,
)
from repro.ir.program import Program
from repro.ir.quad import Opcode
from repro.ir.types import Const
from repro.opts.catalog import build_optimizer, standard_optimizers
from repro.opts.extended import EXTENDED_SPECS
from repro.opts.inferred import INFERRED_SPECS
from repro.opts.specs import STANDARD_SPECS
from repro.workloads.synthetic import random_program

#: The 10-pass pipeline: two cleanup rounds plus a final sweep.
PASSES = ["CTP", "CFO", "CPP", "DCE"] * 2 + ["CTP", "DCE"]

#: Synthetic workload sizes (requested statement counts).
SIZES = (80, 160, 320, 480)

SEED = 7

#: Required matching-phase improvement at the largest size.
TARGET_SPEEDUP = 2.5

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_match.json"


@pytest.fixture(scope="module")
def pipeline_optimizers():
    return standard_optimizers(("CTP", "CFO", "CPP", "DCE"))


def _run_pipeline(
    program: Program, optimizers, match_mode: str
) -> tuple[float, MatchStats]:
    manager = AnalysisManager(program)
    options = DriverOptions(apply_all=True, match_mode=match_mode)
    match_seconds = 0.0
    for name in PASSES:
        result = run_optimizer(
            optimizers[name], program, options, manager=manager
        )
        match_seconds += result.match_seconds
    return match_seconds, engine_for(manager).stats


def _measure(
    base: Program, optimizers, match_mode: str
) -> tuple[float, float, Program, MatchStats]:
    program = base.clone()
    start = time.perf_counter()
    match_seconds, stats = _run_pipeline(program, optimizers, match_mode)
    return time.perf_counter() - start, match_seconds, program, stats


def test_worklist_speedup(pipeline_optimizers):
    """Sizes x rescan-vs-worklist sweep, recorded as JSON."""
    results: dict[str, object] = {
        "pipeline": PASSES,
        "seed": SEED,
        "target_match_speedup_at_largest": TARGET_SPEEDUP,
        "sizes": [],
    }
    speedup_at_largest = 0.0
    for size in SIZES:
        base = random_program(SEED, size=size, max_depth=2)
        rescan_total, rescan_match, rescan_prog, _ = _measure(
            base, pipeline_optimizers, match_mode="rescan"
        )
        work_total, work_match, work_prog, work_stats = _measure(
            base, pipeline_optimizers, match_mode="worklist"
        )
        # both arms must optimize identically, or the timing is moot
        assert [str(q) for q in work_prog] == [str(q) for q in rescan_prog]
        speedup = rescan_match / work_match
        results["sizes"].append(
            {
                "size": size,
                "quads": len(base),
                "rescan_match_s": round(rescan_match, 4),
                "worklist_match_s": round(work_match, 4),
                "match_speedup": round(speedup, 2),
                "rescan_total_s": round(rescan_total, 4),
                "worklist_total_s": round(work_total, 4),
                "total_speedup": round(rescan_total / work_total, 2),
                "worklist_arm": {
                    "candidates_scanned": work_stats.candidates_scanned,
                    "index_hits": work_stats.index_hits,
                    "worklist_sweeps": work_stats.worklist_sweeps,
                    "full_sweeps": work_stats.full_sweeps,
                    "cached_sweeps": work_stats.cached_sweeps,
                    "points_survived": work_stats.points_survived,
                    "points_dropped": work_stats.points_dropped,
                    "points_rediscovered": work_stats.points_rediscovered,
                },
            }
        )
        if size == SIZES[-1]:
            speedup_at_largest = speedup
    write_bench(RESULTS_PATH, results)
    assert speedup_at_largest >= TARGET_SPEEDUP, (
        f"worklist matching gave only {speedup_at_largest:.2f}x at "
        f"size {SIZES[-1]} (need {TARGET_SPEEDUP}x); see {RESULTS_PATH}"
    )


# ----------------------------------------------------------------------
# catalog-size scaling: shared network vs a per-spec sweep loop (ISSUE 7)
# ----------------------------------------------------------------------

#: Catalog sizes for the spec-count scaling arm.  26 is the full real
#: catalog (standard + extended + inferred); the last size pads it
#: with CTP variants whose seed shape and anchor dependence test are
#: identical, so the shared trie merges their whole prefix — the
#: prefix-sharing stress case.
SPEC_SIZES = (1, 5, 11, 26, 50)

#: Steady-state edits per measurement (constant-value modifies).
EDITS = 12

#: Program scale for the scaling arm.
SCALING_PROGRAM_SIZE = 160

#: Required shared-network per-sweep improvement by catalog size.
TARGET_NETWORK_SPEEDUP = {11: 3.0, 50: 5.0}

ALL_NAMES = (
    "BMP", "CFO", "CPP", "CRC", "CTP", "DCE", "FUS", "ICM", "INX",
    "LUR", "PAR",
)

#: The real catalog beyond the paper's eleven: the extended hand-
#: written specs, then the machine-inferred ones — every entry is a
#: shipped spec reachable through ``build_optimizer``.  CSE is
#: excluded: its unconstrained any-pair enumeration costs ~200ms per
#: edit in *both* arms (nothing to share, nothing to incrementalize),
#: which would swamp the quantity this arm measures; the exclusion is
#: recorded in the JSON.
EXCLUDED_FROM_SCALING = ("CSE",)
REAL_TAIL = tuple(
    name
    for name in sorted(EXTENDED_SPECS)
    if name not in EXCLUDED_FROM_SCALING
) + tuple(sorted(INFERRED_SPECS))


def _scaling_catalog(count: int) -> list:
    """The first ``count`` specs of the real catalog (standard, then
    extended, then inferred), padded past it with CTP variants that
    share the standard prefix.  Every entry carries a distinct
    ``spec_fingerprint``, which is what keys the engine's per-spec
    sweep caches and profiles."""
    standard = standard_optimizers()
    catalog = [standard[name] for name in ALL_NAMES[:count]]
    for name in REAL_TAIL[: max(0, count - len(catalog))]:
        catalog.append(build_optimizer(name))
    variant = STANDARD_SPECS["CTP"].replace(
        "type(Si.opr_1) == var;",
        "type(Si.opr_1) == var AND Si.opr_2 == {k};",
    )
    for k in range(count - len(catalog)):
        catalog.append(
            generate_optimizer(
                variant.format(k=1000 + k), name=f"CTP_V{k}"
            )
        )
    fingerprints = {spec_fingerprint(optimizer) for optimizer in catalog}
    assert len(fingerprints) == len(catalog), "catalog fingerprint clash"
    return catalog


def _const_edits(program: Program):
    """An endless steady-state edit stream: bump the value of each
    constant-assignment quad in turn (a pre-imaged in-place modify)."""
    value = 100
    while True:
        victims = [
            quad
            for quad in program
            if quad.opcode is Opcode.ASSIGN and isinstance(quad.a, Const)
        ]
        for quad in victims:
            value += 1
            before = program.preimage(quad.qid)
            quad.set_operand("a", Const(value))
            program.touch(quad.qid, before=before)
            yield


def _measure_per_spec(base: Program, catalog) -> float:
    """Seconds of matching per edit with one sweep() call per spec."""
    program = base.clone()
    manager = AnalysisManager(program)
    engine = MatchEngine(manager, full_check=False)
    manager._match_engine = engine
    edits = _const_edits(program)
    ctx = make_context(program, manager=manager)
    for optimizer in catalog:  # warm the caches
        engine.sweep(optimizer, ctx)
    elapsed = 0.0
    for _ in range(EDITS):
        next(edits)
        ctx = make_context(program, manager=manager)
        start = time.perf_counter()
        for optimizer in catalog:
            engine.sweep(optimizer, ctx)
        elapsed += time.perf_counter() - start
    return elapsed / EDITS


def _measure_network(base: Program, catalog) -> tuple[float, MatchStats]:
    """Seconds of matching per edit with one sweep_all() shared pass."""
    program = base.clone()
    manager = AnalysisManager(program)
    engine = MatchEngine(manager, full_check=False)
    manager._match_engine = engine
    edits = _const_edits(program)
    engine.sweep_all(make_context(program, manager=manager), catalog)
    elapsed = 0.0
    for _ in range(EDITS):
        next(edits)
        ctx = make_context(program, manager=manager)
        start = time.perf_counter()
        engine.sweep_all(ctx)
        elapsed += time.perf_counter() - start
    return elapsed / EDITS, engine.stats


def test_network_spec_scaling():
    """Per-edit sweep cost vs catalog size, recorded as JSON.

    The per-spec arm pays every spec a sweep per edit; the shared
    network classifies the touched quads once against the merged trie
    and re-runs only the tails the edit's recorded support touched, so
    its per-sweep cost must grow sublinearly in the number of loaded
    specs: at least 3x over the per-spec loop at the standard eleven,
    at least 5x on the ~50-spec prefix-sharing catalog.
    """
    base = random_program(SEED, size=SCALING_PROGRAM_SIZE, max_depth=2)
    entries = []
    speedups: dict[int, float] = {}
    for count in SPEC_SIZES:
        catalog = _scaling_catalog(count)
        per_spec_s = _measure_per_spec(base, catalog)
        network_s, stats = _measure_network(base, catalog)
        speedup = per_spec_s / network_s
        speedups[count] = speedup
        entries.append(
            {
                "size": count,
                "quads": len(base),
                "edits": EDITS,
                "per_spec_sweep_s": round(per_spec_s, 6),
                "network_sweep_s": round(network_s, 6),
                "network_speedup": round(speedup, 2),
                "network_arm": {
                    "network_nodes": stats.network_nodes,
                    "network_shared_hits": stats.network_shared_hits,
                    "network_tokens": stats.network_tokens,
                    "network_tail_runs": stats.network_tail_runs,
                    "network_entries_reused": stats.network_entries_reused,
                    "network_agenda_points": stats.network_agenda_points,
                },
            }
        )
    if RESULTS_PATH.exists():
        payload = json.loads(RESULTS_PATH.read_text())
    else:  # standalone run: the scaling entries satisfy the schema
        payload = {"seed": SEED, "sizes": entries}
    payload["spec_scaling"] = {
        "program_size": SCALING_PROGRAM_SIZE,
        "edits_per_measurement": EDITS,
        "excluded_specs": list(EXCLUDED_FROM_SCALING),
        "targets": {
            str(size): target
            for size, target in TARGET_NETWORK_SPEEDUP.items()
        },
        "sizes": entries,
    }
    write_bench(RESULTS_PATH, payload)
    for count, target in TARGET_NETWORK_SPEEDUP.items():
        assert speedups[count] >= target, (
            f"shared network gave only {speedups[count]:.2f}x over the "
            f"per-spec loop at {count} specs (need {target}x); see "
            f"{RESULTS_PATH}"
        )


def test_smoke_network_agenda_matches_per_spec():
    """CI smoke: shared-network agendas == per-spec sweeps (no timing)."""
    base = random_program(SEED, size=40, max_depth=2)
    catalog = _scaling_catalog(11)
    program = base.clone()
    manager = AnalysisManager(program)
    engine = MatchEngine(manager, full_check=False)
    manager._match_engine = engine
    reference = MatchEngine(manager, full_check=False)
    edits = _const_edits(program)
    for step in range(3):
        if step:
            next(edits)
        ctx = make_context(program, manager=manager)
        results = engine.sweep_all(ctx, catalog)
        for optimizer in catalog:
            want = reference.sweep(
                optimizer,
                make_context(program, manager=manager),
                allow_worklist=False,
            )
            assert results[optimizer.name].points == want.points, (
                optimizer.name
            )
    assert engine.stats.network_sweeps > 0


def test_smoke_worklist_matches_rescan(pipeline_optimizers):
    """CI smoke: one small size, equivalence only (no timing assert)."""
    base = random_program(SEED, size=40, max_depth=2)
    _, _, rescan_prog, _ = _measure(
        base, pipeline_optimizers, match_mode="rescan"
    )
    _, _, work_prog, work_stats = _measure(
        base, pipeline_optimizers, match_mode="worklist"
    )
    assert [str(q) for q in work_prog] == [str(q) for q in rescan_prog]
    assert work_stats.worklist_sweeps + work_stats.cached_sweeps > 0
    assert work_stats.index_hits > 0
