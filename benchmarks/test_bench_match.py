"""Restart-from-top re-scan vs worklist-driven matching (ISSUE 4).

Runs a ten-pass scalar pipeline over synthetic workloads of growing
size, once with ``match_mode="rescan"`` (the paper's Figure 5 driver:
after every application the pattern scan restarts from the top of the
program) and once with ``match_mode="worklist"`` (candidate indexes
plus a dirty-region worklist, :mod:`repro.genesis.matching`).  Only
the matching phase is compared — each arm's discovery wall-clock is
accumulated in ``DriverResult.match_seconds`` — so action/analysis
time does not dilute the ratio.  Timings for every size are recorded
in ``BENCH_match.json`` at the repository root; the largest size must
show at least a :data:`TARGET_SPEEDUP` matching-phase improvement.

``test_smoke_worklist_matches_rescan`` is the cheap CI entry point
(select with ``-k smoke``): one small size, asserting the two arms
produce the identical optimized program rather than any timing ratio.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from bench_schema import write_bench
from repro.analysis.manager import AnalysisManager
from repro.genesis.driver import DriverOptions, run_optimizer
from repro.genesis.matching import MatchStats, engine_for
from repro.ir.program import Program
from repro.opts.catalog import standard_optimizers
from repro.workloads.synthetic import random_program

#: The 10-pass pipeline: two cleanup rounds plus a final sweep.
PASSES = ["CTP", "CFO", "CPP", "DCE"] * 2 + ["CTP", "DCE"]

#: Synthetic workload sizes (requested statement counts).
SIZES = (80, 160, 320, 480)

SEED = 7

#: Required matching-phase improvement at the largest size.
TARGET_SPEEDUP = 2.5

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_match.json"


@pytest.fixture(scope="module")
def pipeline_optimizers():
    return standard_optimizers(("CTP", "CFO", "CPP", "DCE"))


def _run_pipeline(
    program: Program, optimizers, match_mode: str
) -> tuple[float, MatchStats]:
    manager = AnalysisManager(program)
    options = DriverOptions(apply_all=True, match_mode=match_mode)
    match_seconds = 0.0
    for name in PASSES:
        result = run_optimizer(
            optimizers[name], program, options, manager=manager
        )
        match_seconds += result.match_seconds
    return match_seconds, engine_for(manager).stats


def _measure(
    base: Program, optimizers, match_mode: str
) -> tuple[float, float, Program, MatchStats]:
    program = base.clone()
    start = time.perf_counter()
    match_seconds, stats = _run_pipeline(program, optimizers, match_mode)
    return time.perf_counter() - start, match_seconds, program, stats


def test_worklist_speedup(pipeline_optimizers):
    """Sizes x rescan-vs-worklist sweep, recorded as JSON."""
    results: dict[str, object] = {
        "pipeline": PASSES,
        "seed": SEED,
        "target_match_speedup_at_largest": TARGET_SPEEDUP,
        "sizes": [],
    }
    speedup_at_largest = 0.0
    for size in SIZES:
        base = random_program(SEED, size=size, max_depth=2)
        rescan_total, rescan_match, rescan_prog, _ = _measure(
            base, pipeline_optimizers, match_mode="rescan"
        )
        work_total, work_match, work_prog, work_stats = _measure(
            base, pipeline_optimizers, match_mode="worklist"
        )
        # both arms must optimize identically, or the timing is moot
        assert [str(q) for q in work_prog] == [str(q) for q in rescan_prog]
        speedup = rescan_match / work_match
        results["sizes"].append(
            {
                "size": size,
                "quads": len(base),
                "rescan_match_s": round(rescan_match, 4),
                "worklist_match_s": round(work_match, 4),
                "match_speedup": round(speedup, 2),
                "rescan_total_s": round(rescan_total, 4),
                "worklist_total_s": round(work_total, 4),
                "total_speedup": round(rescan_total / work_total, 2),
                "worklist_arm": {
                    "candidates_scanned": work_stats.candidates_scanned,
                    "index_hits": work_stats.index_hits,
                    "worklist_sweeps": work_stats.worklist_sweeps,
                    "full_sweeps": work_stats.full_sweeps,
                    "cached_sweeps": work_stats.cached_sweeps,
                    "points_survived": work_stats.points_survived,
                    "points_dropped": work_stats.points_dropped,
                    "points_rediscovered": work_stats.points_rediscovered,
                },
            }
        )
        if size == SIZES[-1]:
            speedup_at_largest = speedup
    write_bench(RESULTS_PATH, results)
    assert speedup_at_largest >= TARGET_SPEEDUP, (
        f"worklist matching gave only {speedup_at_largest:.2f}x at "
        f"size {SIZES[-1]} (need {TARGET_SPEEDUP}x); see {RESULTS_PATH}"
    )


def test_smoke_worklist_matches_rescan(pipeline_optimizers):
    """CI smoke: one small size, equivalence only (no timing assert)."""
    base = random_program(SEED, size=40, max_depth=2)
    _, _, rescan_prog, _ = _measure(
        base, pipeline_optimizers, match_mode="rescan"
    )
    _, _, work_prog, work_stats = _measure(
        base, pipeline_optimizers, match_mode="worklist"
    )
    assert [str(q) for q in work_prog] == [str(q) for q in rescan_prog]
    assert work_stats.worklist_sweeps + work_stats.cached_sweeps > 0
    assert work_stats.index_hits > 0
