"""Benchmark E4: the ordering study.

Regenerates the paper's interaction findings on the ORDERING workload:
FUS/INX/LUR enable and disable one another, different orders yield
different programs, and "there is not a right order of application".
"""

from repro.experiments.ordering import run_ordering


def test_e4_report(benchmark, capsys):
    result = benchmark.pedantic(run_ordering, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.table())
        print()
        print(result.claims_table())
    assert result.distinct_programs > 1
    assert all(result.claims.values()), result.claims
