"""Micro-benchmarks of the core pipeline stages (paper Figure 3):
parsing, dependence computation, optimizer generation, matching and
application."""

import pytest

from repro.analysis.dependence import compute_dependences
from repro.frontend.lower import parse_program
from repro.genesis.driver import (
    DriverOptions,
    find_application_points,
    run_optimizer,
)
from repro.genesis.generator import generate_optimizer
from repro.opts.specs import STANDARD_SPECS
from repro.workloads.programs import SOURCES


def test_parse_workload(benchmark):
    """Source -> intermediate code (frontend)."""
    benchmark(parse_program, SOURCES["gauss"])


def test_compute_dependences(benchmark):
    """Intermediate code -> dependence graph (the Figure 3 input box)."""
    program = parse_program(SOURCES["gauss"])
    benchmark(compute_dependences, program)


def test_generate_optimizer_ctp(benchmark):
    """GOSpeL -> generated optimizer (GENesis itself)."""
    benchmark(generate_optimizer, STANDARD_SPECS["CTP"], "CTP")


def test_generate_all_eleven(benchmark):
    """Generating the whole catalog."""

    def build_all():
        for name, source in STANDARD_SPECS.items():
            generate_optimizer(source, name=name)

    benchmark(build_all)


def test_find_points_ctp(benchmark, optimizers):
    """Pattern matching + precondition checking without applying."""
    program = parse_program(SOURCES["fft"])
    graph = compute_dependences(program)
    benchmark(
        find_application_points, optimizers["CTP"], program, graph
    )


def test_apply_ctp_to_fixpoint(benchmark, optimizers):
    """The full driver loop (Figure 5), dependences recomputed."""

    def run():
        program = parse_program(SOURCES["fft"])
        run_optimizer(
            optimizers["CTP"], program, DriverOptions(apply_all=True)
        )

    benchmark(run)


def test_interpreter_throughput(benchmark):
    """Reference-interpreter execution of the heaviest workload."""
    from repro.ir.interp import run_program
    from repro.workloads.suite import workload

    item = workload("track")
    program = item.load()
    benchmark(run_program, program, item.inputs)
