"""Benchmark E1: generated vs hand-coded optimizers.

Regenerates the paper's quality comparison ("our optimizers found the
same application points and the resulting code was comparable") and
benchmarks both sides' full runs so their relative speed is visible.
"""

import pytest

from repro.experiments.quality import run_quality
from repro.genesis.driver import DriverOptions, run_optimizer
from repro.opts.handcoded import handcoded_optimizer
from repro.workloads.suite import full_suite, workload


def test_e1_report(benchmark, capsys):
    """The full E1 table; asserts the paper's three claims."""
    result = benchmark.pedantic(run_quality, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.table())
    assert result.all_points_match
    assert result.all_correct
    assert result.all_comparable


def test_generated_ctp_full_run(benchmark, optimizers):
    item = workload("gauss")

    def run():
        program = item.load()
        run_optimizer(
            optimizers["CTP"], program, DriverOptions(apply_all=True)
        )

    benchmark(run)


def test_handcoded_ctp_full_run(benchmark):
    item = workload("gauss")
    baseline = handcoded_optimizer("CTP")

    def run():
        program = item.load()
        baseline.apply_all(program)

    benchmark(run)
