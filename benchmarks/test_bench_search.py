"""Search cost: naive sequential search vs service-cached search.

Runs the same iterated-greedy search on the same evaluation budget two
ways:

* **sequential** — fingerprint pruning off, no memo, no service: every
  candidate evaluation runs the driver, the way a naive phase-ordering
  loop would;
* **service-cached** — fingerprint pruning on and every candidate
  evaluated through the optimization service, so convergent orderings
  and repeated ``(state, pass)`` extensions are result-cache hits
  instead of backend executions.

Both arms spend the same *exploration* budget; the claim under test is
that pruning plus the fingerprint-keyed cache cuts the *work* (backend
executions) at least ``TARGET_EXECUTION_REDUCTION``-fold.  Iterated
greedy is the strategy that exercises the cache the way a real
campaign does: every destroy-and-rebuild round replays a prefix of the
incumbent and re-walks states earlier rounds visited, all free hits in
the cached arm and all re-executed in the sequential arm.  The two
arms may report different best pipelines — on a fixed budget, pruning
changes which states get explored — so best-pipeline equality is
deliberately not asserted; both winners are oracle-certified instead.

Numbers land in ``BENCH_search.json`` (shared BENCH schema, see
``bench_schema.py``), one ``sizes`` entry per budget: backend
executions and wall-clock for both arms, the execution-reduction
ratio, the cache-hit pruning rate, and ``search_speedup`` (sequential
wall-clock / service-cached wall-clock).

``test_smoke_search_cache`` is the cheap CI entry point (``-k
smoke``): a tiny search twice through one in-process service,
asserting the restart is served entirely from the cache.
"""

from __future__ import annotations

import time
from pathlib import Path

from bench_schema import host_info, write_bench
from repro.search import LocalEvaluator, SearchConfig, certify, search_program
from repro.service import ServiceClient
from repro.workloads.suite import workload

WORKLOAD = "ordering"

PASSES = ("CTP", "CFO", "DCE", "FUS", "INX", "LUR")

BUDGETS = (60, 200)

#: Required reduction in backend executions, service-cached vs
#: sequential, on the same budget (the PR's acceptance criterion).
TARGET_EXECUTION_REDUCTION = 2.0

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_search.json"


def _config(budget: int, prune: bool) -> SearchConfig:
    return SearchConfig(
        opt_names=PASSES,
        strategy="iterated",
        iterations=8,
        depth=4,
        budget=budget,
        prune=prune,
    )


def test_search_cache_pruning():
    source = workload(WORKLOAD).source
    sizes = []
    for budget in BUDGETS:
        sequential_config = _config(budget, prune=False)
        start = time.perf_counter()
        sequential = search_program(
            source,
            sequential_config,
            evaluator=LocalEvaluator(
                options=sequential_config.driver_options(), memo=False
            ),
            name=WORKLOAD,
        )
        sequential_s = time.perf_counter() - start

        cached_config = _config(budget, prune=True)
        with ServiceClient(backend="inprocess") as client:
            start = time.perf_counter()
            cached = search_program(
                source, cached_config, client=client, name=WORKLOAD
            )
            cached_s = time.perf_counter() - start

        # both explored the same budget; only the work may differ
        assert sequential.evaluator.evaluations <= budget
        assert cached.evaluator.evaluations <= budget
        assert sequential.backend_executions == (
            sequential.evaluator.evaluations
        )
        # both winners must still be semantics-preserving
        certify(sequential, source, options=sequential_config.driver_options())
        certify(cached, source, options=cached_config.driver_options())
        assert sequential.certified is True
        assert cached.certified is True

        reduction = sequential.backend_executions / max(
            1, cached.backend_executions
        )
        hit_rate = cached.cache_hits / max(1, cached.evaluator.evaluations)
        sizes.append(
            {
                "size": budget,
                "sequential_executions": sequential.backend_executions,
                "cached_executions": cached.backend_executions,
                "cache_hits": cached.cache_hits,
                "pruned_states": cached.pruned,
                "cache_hit_rate": round(hit_rate, 3),
                "execution_reduction": round(reduction, 2),
                "sequential_s": round(sequential_s, 4),
                "cached_s": round(cached_s, 4),
                "search_speedup": round(sequential_s / cached_s, 2),
                "sequential_best": list(sequential.best_sequence),
                "cached_best": list(cached.best_sequence),
            }
        )

    write_bench(
        RESULTS_PATH,
        {
            "workload": WORKLOAD,
            "passes": list(PASSES),
            "strategy": "iterated",
            "iterations": 8,
            "depth": 4,
            "target_execution_reduction": TARGET_EXECUTION_REDUCTION,
            "host": host_info(),
            "sizes": sizes,
        },
    )
    for entry in sizes:
        assert entry["execution_reduction"] >= TARGET_EXECUTION_REDUCTION, (
            f"budget {entry['size']}: cache-hit pruning cut backend "
            f"executions only {entry['execution_reduction']}x "
            f"(need {TARGET_EXECUTION_REDUCTION}x); see {RESULTS_PATH}"
        )


def test_smoke_search_cache():
    """CI smoke: a restarted tiny search is served from the cache."""
    source = workload("integrate").source
    config = SearchConfig(
        opt_names=("CTP", "CFO", "DCE"), strategy="beam",
        beam_width=2, depth=2, budget=16,
    )
    with ServiceClient(backend="inprocess") as client:
        first = search_program(source, config, client=client)
        second = search_program(source, config, client=client)
        assert first.backend_executions > 0
        assert second.backend_executions == 0
        assert second.cache_hits == second.evaluator.evaluations
        assert second.best_sequence == first.best_sequence
