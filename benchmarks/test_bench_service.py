"""Service batch throughput: serial vs process pool vs warm cache.

Optimizes a fixed batch of synthetic programs through the same 10-pass
pipeline three ways:

* **serial** — the in-process backend, one worker, caching disabled:
  the baseline a lone ``optimize()`` loop would give;
* **process pool** — ``WORKERS`` forked workers, caching disabled: the
  tentpole's parallel throughput claim (only asserted on hosts with at
  least ``WORKERS`` usable cores — the measured ratio is recorded
  either way);
* **warm cache** — the same batch resubmitted to a service that has
  already computed it: every job is a fingerprint-keyed cache hit;
* **disk tier** — the batch recomputed by a *fresh* service instance
  sharing a persistent cache directory with a previous one (the
  warm-restart story: memory tier empty, every job served from disk).

All arms must produce byte-identical optimized sources; the numbers
go to ``BENCH_service.json`` at the repository root in the shared
BENCH schema (see ``bench_schema.py``).  On hosts with fewer usable
cores than ``WORKERS`` the parallel entry is annotated as
host-qualified rather than asserted — a sub-1x "speedup" on a 1-CPU
host measures fork overhead, not a regression.

``test_smoke_service_batch`` and ``test_smoke_disk_cache_batch`` are
the cheap CI entry points (select with ``-k smoke``): small batches on
the in-process backend, asserting cache-hit behaviour rather than any
timing ratio.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import pytest

from bench_schema import host_info, write_bench
from repro.frontend.unparse import unparse_program
from repro.genesis.driver import DriverOptions
from repro.service import ServiceClient
from repro.service.job import Job
from repro.workloads.synthetic import random_program

#: The 10-pass pipeline every job runs (duplicates = multiple passes).
PASSES = ("CTP", "CFO", "CPP", "DCE") * 2 + ("CTP", "DCE")

#: The batch: one synthetic program per seed at this statement budget.
SEEDS = tuple(range(100, 108))
SIZE = 120

WORKERS = 4

#: Required process-pool batch speedup (hosts with >= WORKERS cores).
TARGET_PARALLEL_SPEEDUP = 3.0

#: Required warm-cache speedup over recomputing the batch.
TARGET_WARM_SPEEDUP = 10.0

#: Required disk-tier (warm-restart) speedup over recomputing.
TARGET_DISK_SPEEDUP = 5.0

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _batch(size: int = SIZE, seeds=SEEDS) -> list[Job]:
    options = DriverOptions(apply_all=True)
    jobs = []
    for seed in seeds:
        program = random_program(seed, size=size, max_depth=2)
        jobs.append(
            Job.from_source(
                unparse_program(program, name=program.name),
                PASSES,
                options,
            )
        )
    return jobs


def _run_batch(client: ServiceClient, jobs: list[Job]) -> tuple[float, list]:
    start = time.perf_counter()
    results = client.run_batch(jobs, timeout=600.0)
    elapsed = time.perf_counter() - start
    assert all(result.ok for result in results), [
        str(result) for result in results if not result.ok
    ]
    return elapsed, results


def test_service_throughput():
    host = host_info(backend="process")

    with ServiceClient(
        backend="inprocess", max_workers=1, cache_capacity=0
    ) as client:
        serial_s, serial_results = _run_batch(client, _batch())

    with ServiceClient(
        backend="process", max_workers=WORKERS, cache_capacity=0
    ) as client:
        parallel_s, parallel_results = _run_batch(client, _batch())

    with ServiceClient(backend="inprocess", max_workers=1) as client:
        cold_s, _ = _run_batch(client, _batch())
        warm_s, warm_results = _run_batch(client, _batch())
        warm_stats = client.stats

    # the disk tier: a fresh service lifetime over a shared directory
    with tempfile.TemporaryDirectory() as cache_dir:
        with ServiceClient(
            backend="inprocess", max_workers=1, cache_capacity=0,
            cache_dir=cache_dir,
        ) as client:
            disk_cold_s, _ = _run_batch(client, _batch())
        with ServiceClient(
            backend="inprocess", max_workers=1, cache_capacity=0,
            cache_dir=cache_dir,
        ) as client:
            disk_warm_s, disk_results = _run_batch(client, _batch())
            disk_stats = client.stats.disk

    # every arm must optimize the batch identically
    serial_sources = [result.source for result in serial_results]
    assert [r.source for r in parallel_results] == serial_sources
    assert [r.source for r in warm_results] == serial_sources
    assert [r.source for r in disk_results] == serial_sources
    assert all(result.cached for result in warm_results)
    assert warm_stats.cache_served == len(SEEDS)
    assert all(result.cached for result in disk_results)
    assert disk_stats is not None and disk_stats.hits == len(SEEDS)

    parallel_speedup = serial_s / parallel_s
    warm_speedup = cold_s / warm_s
    disk_speedup = disk_cold_s / disk_warm_s
    entry = {
        "size": SIZE,
        "jobs": len(SEEDS),
        "serial_s": round(serial_s, 4),
        "process_pool_s": round(parallel_s, 4),
        "parallel_speedup": round(parallel_speedup, 2),
        "cache_cold_s": round(cold_s, 4),
        "cache_warm_s": round(warm_s, 4),
        "warm_cache_speedup": round(warm_speedup, 2),
        "disk_cold_s": round(disk_cold_s, 4),
        "disk_warm_s": round(disk_warm_s, 4),
        "disk_warm_speedup": round(disk_speedup, 2),
    }
    if host["cpus"] < WORKERS:
        entry["parallel_speedup_note"] = (
            f"host-qualified: measured with {host['cpus']} usable "
            f"core(s) (cpu_count={host['cpu_count']}), fewer than "
            f"workers={WORKERS}; the {TARGET_PARALLEL_SPEEDUP}x "
            f"target is asserted only on hosts with >= {WORKERS} "
            f"cores, so this ratio measures fork overhead, not a "
            f"regression"
        )
    write_bench(
        RESULTS_PATH,
        {
            "pipeline": list(PASSES),
            "jobs": len(SEEDS),
            "workers": WORKERS,
            "target_parallel_speedup": TARGET_PARALLEL_SPEEDUP,
            "target_warm_cache_speedup": TARGET_WARM_SPEEDUP,
            "target_disk_warm_speedup": TARGET_DISK_SPEEDUP,
            "host": host,
            "sizes": [entry],
        },
    )
    assert disk_speedup >= TARGET_DISK_SPEEDUP, (
        f"disk tier gave only {disk_speedup:.2f}x over recomputing "
        f"(need {TARGET_DISK_SPEEDUP}x); see {RESULTS_PATH}"
    )
    assert warm_speedup >= TARGET_WARM_SPEEDUP, (
        f"warm cache gave only {warm_speedup:.2f}x over recomputing "
        f"(need {TARGET_WARM_SPEEDUP}x); see {RESULTS_PATH}"
    )
    if host["cpus"] < WORKERS:
        pytest.skip(
            f"host has {host['cpus']} usable core(s); the "
            f"{TARGET_PARALLEL_SPEEDUP}x/{WORKERS}-worker claim needs "
            f">= {WORKERS} (measured {parallel_speedup:.2f}x, recorded "
            f"in {RESULTS_PATH.name})"
        )
    assert parallel_speedup >= TARGET_PARALLEL_SPEEDUP, (
        f"{WORKERS} process workers gave only {parallel_speedup:.2f}x "
        f"over serial (need {TARGET_PARALLEL_SPEEDUP}x); see "
        f"{RESULTS_PATH}"
    )


def test_smoke_service_batch():
    """CI smoke: tiny batch, in-process, cache-hit behaviour only."""
    jobs = _batch(size=30, seeds=(100, 101, 102))
    with ServiceClient(backend="inprocess") as client:
        _, cold = _run_batch(client, jobs)
        _, warm = _run_batch(client, _batch(size=30, seeds=(100, 101, 102)))
        assert [r.source for r in warm] == [r.source for r in cold]
        assert all(result.cached for result in warm)
        assert client.stats.cache.hits == len(jobs)


def test_smoke_disk_cache_batch(tmp_path):
    """CI smoke for the disk arm: two service lifetimes, one
    directory, the second fully disk-served and byte-identical."""
    seeds = (100, 101, 102)
    with ServiceClient(
        backend="inprocess", cache_capacity=0, cache_dir=str(tmp_path)
    ) as client:
        _, cold = _run_batch(client, _batch(size=30, seeds=seeds))
    with ServiceClient(
        backend="inprocess", cache_capacity=0, cache_dir=str(tmp_path)
    ) as client:
        _, warm = _run_batch(client, _batch(size=30, seeds=seeds))
        disk = client.stats.disk
    assert [r.source for r in warm] == [r.source for r in cold]
    assert all(result.cached for result in warm)
    assert disk is not None and disk.hits == len(seeds)
