"""Benchmark E6: implementation-strategy costs.

E6a regenerates the LUR specification-variant comparison ("LUR is less
costly to apply if the upper limit is checked before the lower bound");
E6b the membership-method comparison ("varies tremendously and is not
consistently better for one method over the other ... the heuristic
correctly selected the best implementation").  The benchmarks time the
two LUR variants' scans directly so the cost difference is visible in
wall-clock too.
"""

from repro.experiments.strategies import (
    run_lur_variants,
    run_membership_strategies,
)
from repro.genesis.cost import CostCounters
from repro.genesis.driver import find_application_points
from repro.genesis.generator import generate_optimizer
from repro.opts.specs import STANDARD_SPECS, VARIANT_SPECS
from repro.workloads.suite import full_suite


def test_e6a_report(benchmark, capsys):
    result = benchmark.pedantic(run_lur_variants, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.table())
    assert result.upper_first_cheaper


def test_e6b_report(benchmark, capsys):
    result = benchmark.pedantic(
        run_membership_strategies, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.table())
    assert result.winners_differ
    assert result.heuristic_always_optimal


def _scan_all(optimizer, workloads):
    for item in workloads:
        find_application_points(
            optimizer, item.load(), counters=CostCounters()
        )


def test_lur_upper_first_scan(benchmark):
    optimizer = generate_optimizer(STANDARD_SPECS["LUR"], name="LUR")
    workloads = full_suite()
    benchmark(_scan_all, optimizer, workloads)


def test_lur_lower_first_scan(benchmark):
    optimizer = generate_optimizer(
        VARIANT_SPECS["LUR_LOWER_FIRST"], name="LUR_LOWER_FIRST"
    )
    workloads = full_suite()
    benchmark(_scan_all, optimizer, workloads)
