"""Micro-benchmarks of the differential-testing oracle: what a single
equivalence check costs, and the overhead the ``--verify`` gate adds
to every applied transformation."""

import pytest

from repro.frontend.lower import parse_program
from repro.genesis.driver import DriverOptions, run_optimizer
from repro.verify.envgen import environments_for
from repro.verify.oracle import EquivalenceOracle
from repro.workloads.programs import SOURCES


def _transformed(optimizers, name, source):
    before = parse_program(source)
    after = before.clone()
    run_optimizer(optimizers[name], after, DriverOptions(apply_all=True))
    return before, after


def test_oracle_check_gauss_ctp(benchmark, optimizers):
    """One before/after equivalence verdict at the default budget."""
    before, after = _transformed(optimizers, "CTP", SOURCES["gauss"])
    oracle = EquivalenceOracle(trials=3, seed=0)
    report = benchmark(oracle.check, before, after)
    assert report.equivalent


def test_oracle_check_precomputed_envs(benchmark, optimizers):
    """The verdict alone, with environment generation hoisted out."""
    before, after = _transformed(optimizers, "DCE", SOURCES["gauss"])
    envs = environments_for(before, trials=3)
    oracle = EquivalenceOracle()
    report = benchmark(oracle.check, before, after, envs)
    assert report.equivalent


def test_environment_generation(benchmark):
    """Randomized input-environment synthesis by itself."""
    program = parse_program(SOURCES["fft"])
    benchmark(environments_for, program, trials=3)


@pytest.mark.parametrize("verify", [False, True], ids=["plain", "verified"])
def test_driver_fixpoint_overhead(benchmark, optimizers, verify):
    """The Figure 5 driver to fixpoint, with and without the oracle
    gating every application — the per-transformation verify cost is
    the difference between the two rows."""

    def run():
        program = parse_program(SOURCES["fft"])
        result = run_optimizer(
            optimizers["CTP"], program,
            DriverOptions(apply_all=True, verify=verify, verify_trials=2),
        )
        return len(result.applications)

    applications = benchmark(run)
    assert applications > 0
