#!/usr/bin/env python3
"""Authoring a brand-new optimization in GOSpeL.

"Such a system enables a user to create and easily implement novel
optimizations which may be of particular benefit to the system in
hand."  This example writes two optimizations that are *not* in the
paper's catalog, generates optimizers for them, and applies them:

* MUL1 — algebraic simplification: ``x := y * 1`` becomes ``x := y``;
* RED0 — redundant self-assignment elimination: delete ``x := x``.

Neither needed any change to GENesis: a few lines of specification each.

Run:  python examples/custom_optimization.py
"""

from repro import (
    DriverOptions,
    format_side_by_side,
    generate_optimizer,
    parse_program,
    run_optimizer,
    run_program,
)

MUL1 = """
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    /* a multiplication whose right operand is the literal 1 */
    any Si: Si.opc == mul AND type(Si.opr_3) == const AND Si.opr_3 == 1;
  Depend
ACTION
  /* demote to a plain copy */
  modify(Si.opc, assign);
  modify(Si.opr_3, none);
"""

RED0 = """
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    /* a self-assignment x := x */
    any Si: Si.opc == assign AND type(Si.opr_1) == var AND
            Si.opr_1 == Si.opr_2;
  Depend
ACTION
  delete(Si);
"""

SOURCE = """
program custom
  integer k
  real p, q, r
  read p
  q = p * 1
  q = q
  r = q * 1
  write r
end
"""


def main() -> None:
    mul1 = generate_optimizer(MUL1, name="MUL1")
    red0 = generate_optimizer(RED0, name="RED0")

    print("=== generated code for MUL1 ===")
    print(mul1.source)

    program = parse_program(SOURCE)
    before = program.clone()
    for optimizer in (mul1, red0):
        result = run_optimizer(
            optimizer, program, DriverOptions(apply_all=True)
        )
        print(result)
    print()
    print(format_side_by_side(before, program))

    inputs = [2.5]
    assert (
        run_program(before, inputs).observable()
        == run_program(program, inputs).observable()
    )
    print("\nsemantics preserved; output:", run_program(program, inputs).output)


if __name__ == "__main__":
    main()
