#!/usr/bin/env python3
"""An interactive parallelization session.

The paper motivates GENesis for parallel machines, "where it may be
unclear which transformations to use and how to order them": the user
inspects application points, applies transformations selectively, and
may override dependence restrictions they know to be spurious.  This
example drives the constructed optimizer's interface
(:class:`repro.OptimizerSession`) through such a session on a
stencil-flavoured kernel.

Run:  python examples/interactive_parallelizer.py
"""

from repro import OptimizerSession, standard_optimizers

SOURCE = """
program stencil
  integer i, j, n
  real u(16,16), w(16)
  n = 8
  ! independent initialization: a parallelization candidate
  do i = 1, n
    w(i) = 0.0
  end do
  ! column-recurrence: carried in i, independent in j --
  ! interchanging makes the *outer* loop parallel
  do i = 2, n
    do j = 1, n
      u(i,j) = u(i-1,j) * 0.5
    end do
  end do
  write w(3)
  write u(4,4)
end
"""


def run_command(session: OptimizerSession, command: str) -> None:
    print(f"genesis> {command}")
    output = session.execute_command(command)
    if output:
        print(output)
    print()


def main() -> None:
    session = OptimizerSession.from_source(
        SOURCE,
        optimizers=standard_optimizers(("CTP", "PAR", "INX")).values(),
    )

    print("The kernel as parsed:\n")
    run_command(session, "show")

    # propagate n=8 so the analyses see constant bounds
    run_command(session, "apply CTP all")

    # which loops can be parallelized as-is?  only the init loop —
    # the recurrence nest is carried at its outer level
    run_command(session, "points PAR")
    run_command(session, "apply PAR 0")

    # interchange the nest: the j loop moves outward...
    run_command(session, "points INX")
    run_command(session, "apply INX 0")

    # ...and now the new outer loop parallelizes
    run_command(session, "points PAR")
    run_command(session, "apply PAR all")

    run_command(session, "show")
    run_command(session, "history")

    doalls = sum(
        1 for quad in session.program if quad.opcode.name == "DOALL"
    )
    print(f"parallel loops found: {doalls} (expected 2: the init loop "
          "and the interchanged outer loop; the inner loop still "
          "carries the recurrence)")
    assert doalls == 2


if __name__ == "__main__":
    main()
