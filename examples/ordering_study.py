#!/usr/bin/env python3
"""The ordering experiment, interactively (paper Section 4 / E4).

"Experiments indicate that optimizations interact in practice and that
different orderings of optimizations are needed for different code
segments of the same program."  This example applies {FUS, INX, LUR} in
every order to the ORDERING workload and shows how opportunities are
created and destroyed.

Run:  python examples/ordering_study.py
"""

from repro import (
    DriverOptions,
    apply_at_point,
    find_application_points,
    format_program,
    run_optimizer,
    standard_optimizers,
    workload,
)
from repro.experiments.ordering import run_ordering


def show_points(optimizers, program) -> None:
    for name in ("FUS", "INX", "LUR"):
        points = find_application_points(optimizers[name], program.clone())
        print(f"  {name}: {len(points)} point(s)")


def main() -> None:
    optimizers = standard_optimizers(("CTP", "FUS", "INX", "LUR"))
    base = workload("ordering").load()
    run_optimizer(optimizers["CTP"], base, DriverOptions(apply_all=True))

    print("The ordering workload after constant propagation:\n")
    print(format_program(base))
    print("\nOpportunities before any loop transformation:")
    show_points(optimizers, base)

    print("\n--- applying FUS first destroys an INX opportunity ---")
    fused = base.clone()
    apply_at_point(optimizers["FUS"], fused, 0)
    show_points(optimizers, fused)

    print("\n--- applying INX in segment 2 *creates* a FUS opportunity ---")
    interchanged = base.clone()
    apply_at_point(optimizers["INX"], interchanged, 1)
    show_points(optimizers, interchanged)

    print("\n--- applying LUR first destroys FUS but not INX ---")
    unrolled = base.clone()
    apply_at_point(optimizers["LUR"], unrolled, 0)
    show_points(optimizers, unrolled)

    print("\n=== the full six-permutation sweep ===\n")
    result = run_ordering()
    print(result.table())
    print()
    print(result.claims_table())
    print(
        "\nAs the paper concludes: \"there is not a right order of "
        "application.  The context of the application point is needed.\""
    )


if __name__ == "__main__":
    main()
