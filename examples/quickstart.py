#!/usr/bin/env python3
"""Quickstart: generate an optimizer from the paper's Figure 1 and run it.

This walks the full Figure 3 pipeline:

    GOSpeL spec --GENesis--> generated optimizer (inspectable code)
    source --frontend--> intermediate code + dependences --OPT--> optimized

Run:  python examples/quickstart.py
"""

from repro import (
    DriverOptions,
    STANDARD_SPECS,
    find_application_points,
    format_side_by_side,
    generate_optimizer,
    parse_program,
    run_optimizer,
    run_program,
)

SOURCE = """
program quick
  integer i, n
  real a(16), s
  n = 8
  s = 0.0
  do i = 1, n
    a(i) = i * 2.0
  end do
  do i = 1, n
    s = s + a(i)
  end do
  write s
end
"""


def main() -> None:
    # 1. GENesis: specification in, optimizer out.
    ctp = generate_optimizer(STANDARD_SPECS["CTP"], name="CTP")
    print("=== the GOSpeL specification (paper Figure 1) ===")
    print(STANDARD_SPECS["CTP"].strip())
    print()
    print("=== the generated code (paper Figure 6) ===")
    print(ctp.source)

    # 2. Frontend: source to intermediate code.
    program = parse_program(SOURCE)
    before = program.clone()

    # 3. Where does constant propagation apply?
    points = find_application_points(ctp, program)
    print(f"=== {len(points)} application points ===")
    for index, point in enumerate(points):
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(point.items()))
        print(f"  {index}: {pairs}")
    print()

    # 4. Apply everywhere and compare.
    result = run_optimizer(ctp, program, DriverOptions(apply_all=True))
    print(f"=== driver result ===\n{result}\n")
    print(format_side_by_side(before, program))
    print()

    # 5. The transformation is semantics-preserving.
    assert run_program(before).observable() == run_program(
        program
    ).observable()
    print("output unchanged:", run_program(program).output)


if __name__ == "__main__":
    main()
