"""repro: Whitfield & Soffa's GOSpeL / GENesis optimizer generator.

A from-scratch Python reproduction of *Automatic Generation of Global
Optimizers* (PLDI 1991): a declarative specification language for
global (dependence-based) optimizations, a generator that turns
specifications into runnable optimizers, the ten optimizations the
paper evaluates, hand-coded baselines, a mini-Fortran frontend, a quad
IR with dependence analysis, and the full Section 4 experiment suite.

Quick start::

    import repro

    program = repro.parse_program('''
        program demo
          integer i, n
          real a(10)
          n = 4
          do i = 1, n
            a(i) = a(i) + 1.0
          end do
          write a(2)
        end
    ''')
    ctp = repro.generate_optimizer(repro.STANDARD_SPECS["CTP"], name="CTP")
    print(ctp.source)                       # the generated code
    repro.run_optimizer(ctp, program,
                        repro.DriverOptions(apply_all=True))
    print(repro.format_program(program))    # n propagated everywhere
"""

from repro.analysis import (
    AnalysisManager,
    AnalysisStats,
    DepEdge,
    DependenceGraph,
    compute_dependences,
)
from repro.frontend import FrontendError, parse_program, parse_source
from repro.genesis import (
    ApplicationRecord,
    CostCounters,
    DriverOptions,
    DriverResult,
    GeneratedOptimizer,
    GenesisRuntimeError,
    MatchContext,
    StrategyPolicy,
    apply_at_point,
    find_application_points,
    generate_optimizer,
    run_optimizer,
)
from repro.genesis.pipeline import PipelineReport, optimize, optimize_source
from repro.genesis.session import OptimizerSession, SessionError
from repro.gospel import (
    GospelError,
    Specification,
    analyze_spec,
    parse_spec,
)
from repro.ir import (
    IRBuilder,
    Opcode,
    Program,
    Quad,
    format_program,
    format_side_by_side,
)
from repro.ir.interp import run_program, same_behaviour
from repro.machine import (
    ALL_MODELS,
    MULTIPROCESSOR,
    MachineModel,
    SCALAR,
    VECTOR,
    estimate_benefit,
    estimate_time,
)
from repro.opts import (
    EXTENDED_SPECS,
    PAPER_TEN,
    STANDARD_SPECS,
    VARIANT_SPECS,
    build_optimizer,
    standard_optimizers,
)
from repro.opts.handcoded import HANDCODED, handcoded_optimizer
from repro.service import (
    Job,
    JobResult,
    OptimizationService,
    ServiceClient,
    ServiceConfig,
)
from repro.verify import (
    EquivalenceOracle,
    EquivalenceReport,
    FuzzConfig,
    FuzzReport,
    VerificationError,
    check_equivalence,
    replay_repro,
    run_fuzz,
    shrink_program,
)
from repro.workloads import SOURCES, Workload, full_suite, workload

from repro._version import __version__

__all__ = [
    "ALL_MODELS",
    "AnalysisManager",
    "AnalysisStats",
    "ApplicationRecord",
    "CostCounters",
    "DepEdge",
    "DependenceGraph",
    "DriverOptions",
    "DriverResult",
    "EXTENDED_SPECS",
    "EquivalenceOracle",
    "EquivalenceReport",
    "FrontendError",
    "FuzzConfig",
    "FuzzReport",
    "GeneratedOptimizer",
    "GenesisRuntimeError",
    "GospelError",
    "HANDCODED",
    "IRBuilder",
    "Job",
    "JobResult",
    "MULTIPROCESSOR",
    "MachineModel",
    "MatchContext",
    "Opcode",
    "OptimizationService",
    "OptimizerSession",
    "PAPER_TEN",
    "PipelineReport",
    "Program",
    "Quad",
    "SCALAR",
    "SOURCES",
    "STANDARD_SPECS",
    "ServiceClient",
    "ServiceConfig",
    "SessionError",
    "Specification",
    "StrategyPolicy",
    "VARIANT_SPECS",
    "VECTOR",
    "VerificationError",
    "Workload",
    "__version__",
    "analyze_spec",
    "apply_at_point",
    "build_optimizer",
    "check_equivalence",
    "compute_dependences",
    "estimate_benefit",
    "estimate_time",
    "find_application_points",
    "format_program",
    "format_side_by_side",
    "full_suite",
    "generate_optimizer",
    "handcoded_optimizer",
    "optimize",
    "optimize_source",
    "parse_program",
    "parse_source",
    "parse_spec",
    "replay_repro",
    "run_fuzz",
    "run_optimizer",
    "run_program",
    "same_behaviour",
    "shrink_program",
    "standard_optimizers",
    "workload",
]
