"""The package version, single-sourced from ``pyproject.toml``.

The checkout's ``pyproject.toml`` is authoritative so that a source
tree run via ``PYTHONPATH=src`` (tests, CI, the service workers) and an
installed distribution report the same version.  When the project file
is not reachable (an installed wheel without the source tree), the
installed distribution metadata is used instead.

The version participates in service cache keys
(:meth:`repro.service.job.Job.cache_key`), so bumping it invalidates
every previously cached optimization result — stale caches
self-invalidate across releases.
"""

from __future__ import annotations

from pathlib import Path

_FALLBACK = "0+unknown"


def _from_pyproject() -> str | None:
    """Read ``[project].version`` from the checkout's pyproject.toml.

    A deliberately tiny line parser (not a TOML library): Python 3.10
    has no ``tomllib``, and the one assignment we need is written on a
    single line by every formatter.
    """
    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    try:
        text = pyproject.read_text()
    except OSError:
        return None
    section = ""
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("[") and stripped.endswith("]"):
            section = stripped[1:-1].strip()
            continue
        if section == "project" and stripped.startswith("version"):
            _, _, value = stripped.partition("=")
            return value.strip().strip("\"'") or None
    return None


def _from_metadata() -> str | None:
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - importlib.metadata is 3.8+
        return None
    try:
        return version("repro")
    except PackageNotFoundError:
        return None


def _detect() -> str:
    return _from_pyproject() or _from_metadata() or _FALLBACK


__version__ = _detect()
