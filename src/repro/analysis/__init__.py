"""Dependence analysis: CFG, dataflow, scalar/array/control dependences."""

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.control_dep import ControlDependence, compute_control_deps
from repro.analysis.dataflow import bits_to_indices, solve_backward, solve_forward
from repro.analysis.dependence import DependenceAnalyzer, compute_dependences
from repro.analysis.dominators import (
    DominatorTree,
    compute_dominators,
    compute_postdominators,
    control_dependence_fow,
)
from repro.analysis.graph import KINDS, DepEdge, DependenceGraph
from repro.analysis.liveness import Liveness, compute_liveness
from repro.analysis.manager import (
    AnalysisManager,
    AnalysisStats,
    IncrementalMismatchError,
    manager_for,
)
from repro.analysis.reaching import DefSite, ReachingDefinitions, compute_reaching
from repro.analysis.subscript import (
    ALL_DIRECTIONS,
    LoopContext,
    expand_direction_vectors,
    lexicographic_class,
    matches_direction_pattern,
    reverse_vector,
    test_access_pair,
)

__all__ = [
    "ALL_DIRECTIONS",
    "AnalysisManager",
    "AnalysisStats",
    "CFG",
    "ControlDependence",
    "IncrementalMismatchError",
    "manager_for",
    "DefSite",
    "DepEdge",
    "DependenceAnalyzer",
    "DependenceGraph",
    "DominatorTree",
    "KINDS",
    "Liveness",
    "LoopContext",
    "ReachingDefinitions",
    "bits_to_indices",
    "build_cfg",
    "compute_control_deps",
    "compute_dependences",
    "compute_dominators",
    "compute_liveness",
    "compute_postdominators",
    "compute_reaching",
    "control_dependence_fow",
    "expand_direction_vectors",
    "lexicographic_class",
    "matches_direction_pattern",
    "reverse_vector",
    "solve_backward",
    "solve_forward",
    "test_access_pair",
]
