"""Statement-level control-flow graph for the structured quad IR.

Because the IR is fully structured (DO/ENDDO, IF/ELSE/ENDIF, no gotos),
the CFG is derived directly from the markers:

* ``DO`` branches into its body and — for the zero-trip case — past the
  matching ``ENDDO``;
* ``ENDDO`` branches back to its ``DO`` (the *back edge*) and out;
* ``IF`` branches to the THEN part and to the ELSE part (or past the
  ``ENDIF`` when there is none);
* ``ELSE`` is the "end of THEN" jump and goes straight to ``ENDIF``;
* everything else falls through.

Nodes are list positions (ints); the virtual exit node is
``len(program)``.  Back edges are recorded so dependence analysis can
distinguish loop-independent from loop-carried reaching paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ir.program import IRError, Program
from repro.ir.quad import LOOP_HEADS, Opcode


@dataclass
class CFG:
    """Control-flow graph over quad positions."""

    program: Program
    succs: list[list[int]] = field(default_factory=list)
    preds: list[list[int]] = field(default_factory=list)
    #: set of (src, dst) edges that are loop back edges
    back_edges: set[tuple[int, int]] = field(default_factory=set)
    #: position of matching ENDDO for each loop-head position
    enddo_of: dict[int, int] = field(default_factory=dict)

    @property
    def entry(self) -> int:
        return 0

    @property
    def exit(self) -> int:
        return len(self.program)

    def node_count(self) -> int:
        """Nodes = every quad position plus the virtual exit."""
        return len(self.program) + 1

    def successors(self, position: int) -> list[int]:
        return self.succs[position]

    def predecessors(self, position: int) -> list[int]:
        return self.preds[position]

    def forward_successors(self, position: int) -> list[int]:
        """Successors excluding back edges (the acyclic CFG)."""
        return [
            succ
            for succ in self.succs[position]
            if (position, succ) not in self.back_edges
        ]

    def forward_predecessors(self, position: int) -> list[int]:
        """Predecessors excluding back edges (the acyclic CFG)."""
        return [
            pred
            for pred in self.preds[position]
            if (pred, position) not in self.back_edges
        ]


def build_cfg(program: Program) -> CFG:
    """Construct the CFG for a structured program.

    Raises :class:`IRError` on malformed nesting (delegated to
    :meth:`Program.check_structure` semantics).
    """
    program.check_structure()
    size = len(program)
    cfg = CFG(
        program=program,
        succs=[[] for _ in range(size + 1)],
        preds=[[] for _ in range(size + 1)],
    )

    # match the structured regions (reverse maps recorded here so edge
    # construction is O(1) per marker instead of scanning every region)
    else_of: dict[int, Optional[int]] = {}
    endif_of: dict[int, int] = {}
    head_of_enddo: dict[int, int] = {}
    guard_of_else: dict[int, int] = {}
    stack: list[tuple[str, int]] = []
    for position, quad in enumerate(program):
        op = quad.opcode
        if op in LOOP_HEADS:
            stack.append(("do", position))
        elif op is Opcode.ENDDO:
            kind, head = stack.pop()
            assert kind == "do"
            cfg.enddo_of[head] = position
            head_of_enddo[position] = head
        elif op is Opcode.IF:
            stack.append(("if", position))
            else_of[position] = None
        elif op is Opcode.ELSE:
            kind, guard = stack[-1]
            assert kind == "if"
            else_of[guard] = position
            guard_of_else[position] = guard
        elif op is Opcode.ENDIF:
            kind, guard = stack.pop()
            assert kind == "if"
            endif_of[guard] = position

    def add_edge(src: int, dst: int, back: bool = False) -> None:
        cfg.succs[src].append(dst)
        cfg.preds[dst].append(src)
        if back:
            cfg.back_edges.add((src, dst))

    for position, quad in enumerate(program):
        op = quad.opcode
        if op in LOOP_HEADS:
            enddo = cfg.enddo_of[position]
            add_edge(position, position + 1)  # enter the body
            add_edge(position, enddo + 1)  # zero-trip skip
        elif op is Opcode.ENDDO:
            head = head_of_enddo.get(position)
            if head is None:
                raise IRError(
                    f"no loop head for ENDDO at position {position}"
                )
            add_edge(position, head, back=True)  # next iteration
            add_edge(position, position + 1)  # loop exit
        elif op is Opcode.IF:
            add_edge(position, position + 1)  # THEN part
            orelse = else_of[position]
            if orelse is not None:
                add_edge(position, orelse + 1)  # ELSE part
            else:
                add_edge(position, endif_of[position])
        elif op is Opcode.ELSE:
            guard = guard_of_else.get(position)
            if guard is None:
                raise IRError(f"no IF for ELSE at position {position}")
            add_edge(position, endif_of[guard])  # skip the ELSE body
        else:
            add_edge(position, position + 1)

    return cfg
