"""Control dependence for the structured IR.

The paper: "A control dependence (Si δc Sj) exists between a control
statement Si and all of the statements Sj under its control. In other
words, if Si is an IF condition then all of the statements within the
THEN and the ELSE are control dependent on Si."  Loop heads likewise
control their bodies (a statement executes only when its loop does).

With structured control flow these relations fall directly out of the
:class:`~repro.ir.loops.StructureTable` controller stacks; the
postdominance-frontier construction in :mod:`repro.analysis.dominators`
is kept as an independent cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.loops import StructureTable
from repro.ir.program import Program


@dataclass
class ControlDependence:
    """controller qid -> controlled qids, and the inverse."""

    controlled_by: dict[int, tuple[int, ...]] = field(default_factory=dict)
    controls: dict[int, tuple[int, ...]] = field(default_factory=dict)

    def is_control_dependent(self, controlled_qid: int, guard_qid: int) -> bool:
        """True when ``controlled_qid`` is under ``guard_qid``'s control."""
        return guard_qid in self.controlled_by.get(controlled_qid, ())

    def guards_of(self, qid: int) -> tuple[int, ...]:
        """All guards controlling a statement, outermost first."""
        return self.controlled_by.get(qid, ())

    def region_of(self, guard_qid: int) -> tuple[int, ...]:
        """All statements controlled by a guard."""
        return self.controls.get(guard_qid, ())


def compute_control_deps(
    program: Program, structure: StructureTable | None = None
) -> ControlDependence:
    """Control dependences from the structure table."""
    if structure is None:
        structure = StructureTable(program)
    controlled_by: dict[int, tuple[int, ...]] = {}
    controls: dict[int, list[int]] = {}
    for quad in program:
        guards = structure.controllers.get(quad.qid, ())
        controlled_by[quad.qid] = guards
        for guard in guards:
            controls.setdefault(guard, []).append(quad.qid)
    return ControlDependence(
        controlled_by=controlled_by,
        controls={guard: tuple(qids) for guard, qids in controls.items()},
    )
