"""Generic iterative bit-vector dataflow solver.

Sets are represented as Python ints used as bit vectors, which keeps
the worklist iterations cheap for the program sizes the experiments
use.  Both forward and backward problems over the statement-level CFG
are supported, in may (union) or must (intersection) flavours.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.cfg import CFG


@dataclass
class DataflowResult:
    """IN and OUT bit vectors for each CFG node."""

    in_sets: list[int]
    out_sets: list[int]

    def in_bits(self, node: int) -> int:
        return self.in_sets[node]

    def out_bits(self, node: int) -> int:
        return self.out_sets[node]


def solve_forward(
    cfg: CFG,
    gen: Sequence[int],
    kill: Sequence[int],
    may: bool = True,
    universe_bits: int = 0,
    acyclic: bool = False,
    entry_bits: int = 0,
) -> DataflowResult:
    """Solve a forward gen/kill problem to a fixed point.

    ``gen[p]`` and ``kill[p]`` are bit vectors for the quad at position
    ``p``; node ``exit`` has empty gen/kill.  With ``may=True`` the meet
    is union (e.g. reaching definitions); otherwise intersection over a
    ``universe_bits`` initial value (e.g. available expressions).  With
    ``acyclic=True`` back edges are ignored, giving the loop-independent
    solution used to separate loop-carried dependences.  ``entry_bits``
    seeds the entry node's IN set (synthetic boundary definitions).
    """
    nodes = cfg.node_count()
    init = 0 if may else universe_bits
    in_sets = [init] * nodes
    out_sets = [0] * nodes
    in_sets[cfg.entry] = entry_bits

    preds = (
        cfg.forward_predecessors if acyclic else cfg.predecessors
    )

    def transfer(node: int, in_bits: int) -> int:
        if node >= len(gen):
            return in_bits
        return (in_bits & ~kill[node]) | gen[node]

    for node in range(nodes):
        out_sets[node] = transfer(node, in_sets[node])

    # FIFO in program order: a structured forward problem converges in
    # one sweep plus one revisit per back edge (LIFO from the last node
    # would recompute most nodes against unfinished predecessors)
    worklist = deque(range(nodes))
    in_worklist = [True] * nodes
    while worklist:
        node = worklist.popleft()
        in_worklist[node] = False
        predecessors = preds(node)
        if predecessors:
            merged = 0 if may else universe_bits
            for pred in predecessors:
                if may:
                    merged |= out_sets[pred]
                else:
                    merged &= out_sets[pred]
            if node == cfg.entry:
                merged |= entry_bits
        else:
            merged = entry_bits if node == cfg.entry else 0
        in_sets[node] = merged
        new_out = transfer(node, merged)
        if new_out != out_sets[node]:
            out_sets[node] = new_out
            for succ in cfg.successors(node) if node < len(cfg.succs) else []:
                if not in_worklist[succ]:
                    worklist.append(succ)
                    in_worklist[succ] = True
    return DataflowResult(in_sets=in_sets, out_sets=out_sets)


def solve_backward(
    cfg: CFG,
    gen: Sequence[int],
    kill: Sequence[int],
    may: bool = True,
    universe_bits: int = 0,
) -> DataflowResult:
    """Solve a backward gen/kill problem (e.g. liveness) to fixed point."""
    nodes = cfg.node_count()
    init = 0 if may else universe_bits
    out_sets = [init] * nodes
    in_sets = [0] * nodes
    out_sets[cfg.exit] = 0

    def transfer(node: int, out_bits: int) -> int:
        if node >= len(gen):
            return out_bits
        return (out_bits & ~kill[node]) | gen[node]

    for node in range(nodes):
        in_sets[node] = transfer(node, out_sets[node])

    worklist = list(range(nodes))
    in_worklist = [True] * nodes
    while worklist:
        node = worklist.pop()
        in_worklist[node] = False
        successors = cfg.successors(node) if node < len(cfg.succs) else []
        if successors:
            merged = 0 if may else universe_bits
            for succ in successors:
                if may:
                    merged |= in_sets[succ]
                else:
                    merged &= in_sets[succ]
        else:
            merged = 0
        out_sets[node] = merged
        new_in = transfer(node, merged)
        if new_in != in_sets[node]:
            in_sets[node] = new_in
            for pred in cfg.predecessors(node):
                if not in_worklist[pred]:
                    worklist.append(pred)
                    in_worklist[pred] = True
    return DataflowResult(in_sets=in_sets, out_sets=out_sets)


def bits_to_indices(bits: int) -> list[int]:
    """Expand a bit vector into the list of set bit positions.

    Isolates the lowest set bit each round (``bits & -bits``) instead
    of shifting through every position: the cost is proportional to
    the population count, not the highest index, which matters once
    site vectors reach 10^5+ bits.
    """
    indices = []
    while bits:
        low = bits & -bits
        indices.append(low.bit_length() - 1)
        bits ^= low
    return indices
