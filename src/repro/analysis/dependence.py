"""Computing the dependence graph of a program.

Scalar dependences come from reaching-definition-style dataflow over
the statement CFG; the acyclic (back-edge-free) solution distinguishes
loop-independent dependences (direction ``=`` at every common level)
from loop-carried ones (``<`` at the carrying loop).  Array dependences
come from the subscript tests of :mod:`repro.analysis.subscript`
applied to every access pair, expanded into concrete direction
vectors.  Control dependences come from the structured region table.

This module implements the "data dependencies are computed" box of the
paper's Figure 3 — the input every generated optimizer consumes.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.control_dep import compute_control_deps
from repro.analysis.graph import DepEdge, DependenceGraph
from repro.analysis.siteflow import SiteFlow, SiteSets
from repro.analysis.subscript import (
    LoopContext,
    expand_direction_vectors,
    lexicographic_class,
    test_access_pair,
)
from repro.ir.loops import Loop, StructureTable, trip_count
from repro.ir.program import Program
from repro.ir.quad import Opcode
from repro.ir.types import Affine, ArrayRef

#: Safety valve on direction-vector expansion per access pair.
MAX_VECTORS_PER_PAIR = 128


@dataclass(frozen=True)
class _Site:
    """One scalar definition or use site."""

    index: int  # bit position
    position: int  # quad position (-1 for the synthetic boundary defs)
    qid: int
    var: str
    pos: str  # operand position ("result", "a", "b", "step")


@dataclass(frozen=True)
class _ArrayAccess:
    """One array element access."""

    position: int
    qid: int
    pos: str
    ref: ArrayRef
    is_write: bool


class DependenceAnalyzer:
    """Builds the :class:`DependenceGraph` for one program version.

    With ``restrict_names`` the analysis is *partial*: only scalar and
    array dependences whose variable/array is in the set are computed,
    and only control dependences sinking into ``restrict_ctrl_qids``
    are emitted.  Because the dataflow bits of distinct variables never
    interact (gen/kill masks are per variable) and structured control
    flow fixes every path relation independently of straight-line
    statements, the partial result is *exactly* the subset of the full
    graph touching those names — the property the incremental
    :class:`repro.analysis.manager.AnalysisManager` splices on.
    """

    def __init__(
        self,
        program: Program,
        restrict_names: Optional[frozenset[str]] = None,
        restrict_ctrl_qids: Optional[frozenset[int]] = None,
        cfg: Optional[CFG] = None,
        structure: Optional[StructureTable] = None,
    ):
        self.program = program
        # callers holding current-version CFG/structure (the analysis
        # manager) pass them in; they MUST describe this exact version
        self.cfg: CFG = cfg if cfg is not None else build_cfg(program)
        self.structure = (
            structure if structure is not None else StructureTable(program)
        )
        self.graph = DependenceGraph()
        self._restrict_names = restrict_names
        self._restrict_ctrl_qids = restrict_ctrl_qids
        self._def_sites: list[_Site] = []
        self._use_sites: list[_Site] = []
        self._defs_of_var: dict[str, list[_Site]] = {}
        self._uses_of_var: dict[str, list[_Site]] = {}
        self._site_flow_cache: Optional[SiteFlow] = None
        # memoization for the array-pair tests: all of these are pure
        # functions of values that cannot change within one analysis
        # (the structure table and program are fixed for the version),
        # and large programs repeat a small vocabulary of subscript
        # shapes across millions of access pairs
        self._context_cache: dict[int, LoopContext] = {}
        self._lcvs_cache: dict[int, frozenset[str]] = {}
        self._rename_cache: dict[tuple, tuple] = {}
        self._pair_test_cache: dict[tuple, Optional[tuple]] = {}
        self._vector_cache: dict[tuple, list[tuple[str, ...]]] = {}
        self._collect_scalar_sites()

    def _wanted(self, name: str) -> bool:
        return self._restrict_names is None or name in self._restrict_names

    # ------------------------------------------------------------------
    def analyze(self) -> DependenceGraph:
        """Compute all four dependence kinds."""
        self._scalar_dependences()
        self._array_dependences()
        self._control_dependences()
        return self.graph

    # ------------------------------------------------------------------
    # site collection
    # ------------------------------------------------------------------
    def _collect_scalar_sites(self) -> None:
        variables = sorted(
            name for name in self.program.scalar_names() if self._wanted(name)
        )
        wanted = None if self._restrict_names is None else set(variables)
        # synthetic boundary definitions model "defined before entry",
        # which makes upward exposure at loop heads visible in the
        # acyclic reaching sets
        for var in variables:
            site = _Site(
                index=len(self._def_sites), position=-1, qid=-1, var=var,
                pos="result",
            )
            self._def_sites.append(site)
            self._defs_of_var.setdefault(var, []).append(site)
        for position, quad in enumerate(self.program):
            var = quad.defined_scalar()
            if var is not None and (wanted is None or var in wanted):
                def_pos = "a" if quad.opcode is Opcode.READ else "result"
                site = _Site(
                    index=len(self._def_sites), position=position,
                    qid=quad.qid, var=var, pos=def_pos,
                )
                self._def_sites.append(site)
                self._defs_of_var.setdefault(var, []).append(site)
            for pos, operand in quad.use_positions():
                for name in sorted(_scalar_uses_at(operand)):
                    if wanted is not None and name not in wanted:
                        continue
                    site = _Site(
                        index=len(self._use_sites), position=position,
                        qid=quad.qid, var=name, pos=pos,
                    )
                    self._use_sites.append(site)
                    self._uses_of_var.setdefault(name, []).append(site)

    # ------------------------------------------------------------------
    # scalar dependences
    # ------------------------------------------------------------------
    def _scalar_dependences(self) -> None:
        flow = self._site_flow()
        self._flow_and_out(flow.def_full, flow.def_acyclic)
        self._anti(flow.use_full, flow.use_acyclic)

    def _site_flow(self) -> SiteFlow:
        """The structured reaching-sites solutions, built on demand.

        Query points are every site's own position plus the ENDDO
        position of every loop enclosing a site (where
        :meth:`_emit_carried` asks whether a value survives the back
        edge), each paired with the site's variable.
        """
        flow = self._site_flow_cache
        if flow is None:
            needed: dict[int, set[str]] = {}
            for sites in (self._def_sites, self._use_sites):
                for site in sites:
                    if site.position < 0:
                        continue
                    needed.setdefault(site.position, set()).add(site.var)
                    for head in self.structure.loop_chain(site.qid):
                        loop = self.structure.loops[head]
                        enddo = self.program.position(loop.end_qid)
                        needed.setdefault(enddo, set()).add(site.var)
            flow = SiteFlow(
                self.program, self._def_sites, self._use_sites, needed
            )
            self._site_flow_cache = flow
        return flow

    def _flow_and_out(self, full: SiteSets, acyclic: SiteSets) -> None:
        # Pairs are driven from the solved reaching sets: a source site
        # can produce an edge into a sink only if it reaches the sink
        # in the full (may, cyclic) solution — carried edges included,
        # since surviving a back edge into an exposed sink implies
        # reaching it.  This keeps the work proportional to real
        # dependences rather than |defs| x |uses| per variable.

        # flow: def site reaches a use of the same variable
        for use in self._use_sites:
            for def_index in sorted(full.at(use.position, use.var)):
                definition = self._def_sites[def_index]
                if definition.position == -1:
                    continue
                if definition.qid == use.qid and definition.pos == use.pos:
                    continue
                self._emit_pair(
                    kind="flow",
                    src=definition,
                    dst=use,
                    full=full,
                    acyclic=acyclic,
                    allow_same_stmt_equal=False,
                )
        # out: def site reaches a later def of the same variable
        for later in self._def_sites:
            if later.position == -1:
                continue
            if self._is_own_lcv_def(later):
                continue
            for def_index in sorted(full.at(later.position, later.var)):
                # a re-executed definition reaches itself around a back
                # edge: the carried self-output that orders a loop's
                # iterations appears here naturally
                earlier = self._def_sites[def_index]
                if earlier.position == -1:
                    continue
                self._emit_pair(
                    kind="out",
                    src=earlier,
                    dst=later,
                    full=full,
                    acyclic=acyclic,
                    allow_same_stmt_equal=False,
                )

    def _is_own_lcv_def(self, site: _Site) -> bool:
        """A DO/DOALL header (re)initializing its own control variable.

        FORTRAN's DO owns its variable (the body may read but not write
        it), so anti/output dependences *into* the header's
        initialization are not ordering constraints — the standard
        induction-variable treatment.  Flow dependences from the header
        to the variable's readers are kept; they carry all the real
        ordering information.
        """
        if site.position == -1:
            return False
        quad = self.program[site.position]
        return quad.opcode in (Opcode.DO, Opcode.DOALL) and (
            quad.defined_scalar() == site.var
        )

    def _anti(self, full: SiteSets, acyclic: SiteSets) -> None:
        # anti: use site "reaches" a def of the same variable
        for definition in self._def_sites:
            if definition.position == -1:
                continue
            if self._is_own_lcv_def(definition):
                continue
            for use_index in sorted(
                full.at(definition.position, definition.var)
            ):
                use = self._use_sites[use_index]
                if use.qid == definition.qid:
                    # within one statement the reads precede the write;
                    # record the self-anti only when loop-carried
                    self._emit_carried_only(
                        kind="anti", src=use, dst=definition, full=full
                    )
                    continue
                self._emit_pair(
                    kind="anti",
                    src=use,
                    dst=definition,
                    full=full,
                    acyclic=acyclic,
                    allow_same_stmt_equal=False,
                )

    # ------------------------------------------------------------------
    def _emit_pair(
        self,
        kind: str,
        src: _Site,
        dst: _Site,
        full: SiteSets,
        acyclic: SiteSets,
        allow_same_stmt_equal: bool,
    ) -> None:
        """Emit loop-independent and loop-carried edges for a site pair."""
        common = self.structure.common_loops(src.qid, dst.qid)
        depth = len(common)
        if src.index in acyclic.at(dst.position, src.var):
            self.graph.add(
                DepEdge(
                    kind=kind,
                    src=src.qid,
                    dst=dst.qid,
                    var=src.var,
                    vector=("=",) * depth,
                    src_pos=src.pos,
                    dst_pos=dst.pos,
                )
            )
        self._emit_carried(kind, src, dst, full, common)

    def _emit_carried_only(
        self, kind: str, src: _Site, dst: _Site, full: SiteSets
    ) -> None:
        common = self.structure.common_loops(src.qid, dst.qid)
        self._emit_carried(kind, src, dst, full, common)

    def _emit_carried(
        self,
        kind: str,
        src: _Site,
        dst: _Site,
        full: SiteSets,
        common: Sequence[Loop],
    ) -> None:
        """Loop-carried edges: one per common loop whose back edge the
        value survives and into whose next iteration the sink is
        exposed."""
        depth = len(common)
        for level, loop in enumerate(common):
            enddo_position = self.program.position(loop.end_qid)
            if src.index not in full.at(enddo_position, src.var):
                continue
            if not self._upward_exposed(dst, loop):
                continue
            vector = ("=",) * level + ("<",) + ("*",) * (depth - level - 1)
            self.graph.add(
                DepEdge(
                    kind=kind,
                    src=src.qid,
                    dst=dst.qid,
                    var=src.var,
                    vector=vector,
                    src_pos=src.pos,
                    dst_pos=dst.pos,
                )
            )

    def _upward_exposed(self, site: _Site, loop: Loop) -> bool:
        """Is there a definition-free path from the loop head to the
        site?  Detected by an *outside* definition (or the synthetic
        boundary def) reaching the site in the acyclic solution."""
        head_position = self.program.position(loop.head_qid)
        end_position = self.program.position(loop.end_qid)
        reaching = self._site_flow().def_acyclic.at(site.position, site.var)
        for definition in self._defs_of_var.get(site.var, ()):
            if definition.index not in reaching:
                continue
            if definition.position == -1:
                return True
            if not head_position < definition.position < end_position:
                return True
        return False

    # ------------------------------------------------------------------
    # array dependences
    # ------------------------------------------------------------------
    def _array_dependences(self) -> None:
        accesses: dict[str, list[_ArrayAccess]] = {}
        for position, quad in enumerate(self.program):
            written = quad.defined_array()
            if written is not None and self._wanted(written.name):
                accesses.setdefault(written.name, []).append(
                    _ArrayAccess(position, quad.qid, "result", written, True)
                )
            for pos, ref in quad.used_array_refs():
                if not self._wanted(ref.name):
                    continue
                accesses.setdefault(ref.name, []).append(
                    _ArrayAccess(position, quad.qid, pos, ref, False)
                )
        for name, access_list in accesses.items():
            for src in access_list:
                for dst in access_list:
                    if src is dst:
                        continue
                    if not (src.is_write or dst.is_write):
                        continue
                    self._array_pair(name, src, dst)

    def _array_pair(
        self, name: str, src: _ArrayAccess, dst: _ArrayAccess
    ) -> None:
        common = self.structure.common_loops(src.qid, dst.qid)
        contexts = []
        common_lcvs = set()
        for loop in common:
            context = self._context_cache.get(loop.head_qid)
            if context is None:
                head = self.program.quad(loop.head_qid)
                context = LoopContext(
                    var=_lcv_name(head), trip_count=trip_count(head)
                )
                self._context_cache[loop.head_qid] = context
            common_lcvs.add(context.var)
            contexts.append(context)
        src_subs = self._disambiguate(src, common_lcvs, "src")
        dst_subs = self._disambiguate(dst, common_lcvs, "dst")
        key = (src_subs, dst_subs, tuple(contexts))
        try:
            per_level = self._pair_test_cache[key]
        except KeyError:
            verdict = test_access_pair(src_subs, dst_subs, contexts)
            per_level = None if verdict is None else tuple(verdict)
            self._pair_test_cache[key] = per_level
        if per_level is None:
            return
        vectors = self._vector_cache.get(per_level)
        if vectors is None:
            vectors = expand_direction_vectors(per_level)
            self._vector_cache[per_level] = vectors
        if len(vectors) > MAX_VECTORS_PER_PAIR:
            clipped = len(vectors) - MAX_VECTORS_PER_PAIR
            note = (
                f"direction-vector expansion clipped for {name} "
                f"(S{src.qid} -> S{dst.qid}): dropped {clipped} of "
                f"{len(vectors)} vectors (MAX_VECTORS_PER_PAIR="
                f"{MAX_VECTORS_PER_PAIR}); dependence info may be "
                "incomplete"
            )
            self.graph.add_note(note)
            warnings.warn(note, RuntimeWarning, stacklevel=2)
            vectors = vectors[:MAX_VECTORS_PER_PAIR]
        if src.is_write and dst.is_write:
            kind = "out"
        elif src.is_write:
            kind = "flow"
        else:
            kind = "anti"
        for vector in vectors:
            klass = lexicographic_class(vector)
            if klass == "backward":
                continue  # the reversed pair generates this dependence
            if klass == "equal":
                if src.qid == dst.qid:
                    continue
                if src.position > dst.position:
                    continue
                if not self._may_execute_in_order(src, dst):
                    continue
            self.graph.add(
                DepEdge(
                    kind=kind,
                    src=src.qid,
                    dst=dst.qid,
                    var=name,
                    vector=vector,
                    src_pos=src.pos,
                    dst_pos=dst.pos,
                )
            )

    def _disambiguate(
        self, access: _ArrayAccess, common_lcvs: set[str], tag: str
    ):
        """Rename non-common loop control variables in subscripts.

        Two accesses in *different* loops frequently reuse the same
        control-variable name (``do i`` everywhere); their ``i`` values
        are unrelated, so the subscript tests must not unify them.
        Renaming each side's private loop variables (``i`` becomes
        ``i@src`` / ``i@dst``) makes unrelated symbols compare unequal,
        which the tests then treat conservatively.  Non-lcv symbolic
        terms (array bounds like ``n``) keep their names — the standard
        assumption that symbolic subscript terms are invariant across
        the region under test.
        """
        own_lcvs = self._chain_lcvs(access.qid) - common_lcvs
        if not own_lcvs:
            return access.ref.subscripts
        key = (access.ref.subscripts, frozenset(own_lcvs), tag)
        cached = self._rename_cache.get(key)
        if cached is not None:
            return cached
        renamed = []
        for sub in access.ref.subscripts:
            if isinstance(sub, Affine):
                for var in sub.variables:
                    if var in own_lcvs:
                        sub = sub.substitute(
                            var, Affine.var(f"{var}@{tag}")
                        )
                renamed.append(sub)
            else:
                renamed.append(sub)
        result = tuple(renamed)
        self._rename_cache[key] = result
        return result

    def _chain_lcvs(self, qid: int) -> frozenset[str]:
        """Control-variable names of every loop enclosing ``qid``."""
        cached = self._lcvs_cache.get(qid)
        if cached is None:
            names: set[str] = set()
            current = self.structure.enclosing_loop.get(qid)
            while current is not None:
                names.add(_lcv_name(self.program.quad(current)))
                current = self.structure.loops[current].parent
            cached = frozenset(names)
            self._lcvs_cache[qid] = cached
        return cached

    def _may_execute_in_order(
        self, src: _ArrayAccess, dst: _ArrayAccess
    ) -> bool:
        """Loop-independent feasibility: both on one control path.

        Statements in mutually exclusive branches of the same IF cannot
        run in the same iteration, so no loop-independent dependence
        links them.
        """
        src_guards = self.structure.controllers.get(src.qid, ())
        for guard in src_guards:
            conditional = self.structure.conditionals.get(guard)
            if conditional is None:
                continue
            dst_in_then = dst.qid in conditional.then_qids
            dst_in_else = dst.qid in conditional.else_qids
            if not (dst_in_then or dst_in_else):
                continue
            src_in_then = src.qid in conditional.then_qids
            if src_in_then != dst_in_then:
                return False  # opposite branches of the same IF
        return True

    # ------------------------------------------------------------------
    # control dependences
    # ------------------------------------------------------------------
    def _control_dependences(self) -> None:
        if self._restrict_ctrl_qids is not None:
            # partial mode: only the touched sinks need edges, and the
            # structure table answers them directly
            for qid in self._restrict_ctrl_qids:
                for guard in self.structure.controllers.get(qid, ()):
                    self.graph.add(
                        DepEdge(kind="ctrl", src=guard, dst=qid, var="")
                    )
            return
        control = compute_control_deps(self.program, self.structure)
        for qid, guards in control.controlled_by.items():
            for guard in guards:
                self.graph.add(
                    DepEdge(kind="ctrl", src=guard, dst=qid, var="")
                )


def _scalar_uses_at(operand: object) -> frozenset[str]:
    from repro.ir.types import used_scalars

    return used_scalars(operand)


def _lcv_name(head_quad) -> str:
    from repro.ir.types import Var

    lcv = head_quad.result
    assert isinstance(lcv, Var)
    return lcv.name


def compute_dependences(program: Program) -> DependenceGraph:
    """Compute the full dependence graph for a program.

    This is the public entry point used by the generated optimizers'
    interface (paper Figure 4, step 3.b.iv).
    """
    return DependenceAnalyzer(program).analyze()
