"""Dominators and postdominators over the statement-level CFG.

The structured IR makes control dependence computable directly from the
region markers (see :mod:`repro.analysis.control_dep`), but the
classical Ferrante–Ottenstein–Warren construction via postdominance
frontiers is implemented too: tests cross-check the structural answer
against it, and it keeps the analysis package usable for any future
unstructured extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.cfg import CFG


@dataclass
class DominatorTree:
    """Immediate-dominator mapping for every reachable node."""

    root: int
    idom: dict[int, Optional[int]]

    def dominates(self, node_a: int, node_b: int) -> bool:
        """True when ``node_a`` dominates ``node_b`` (reflexive)."""
        current: Optional[int] = node_b
        while current is not None:
            if current == node_a:
                return True
            current = self.idom.get(current)
        return False

    def strictly_dominates(self, node_a: int, node_b: int) -> bool:
        return node_a != node_b and self.dominates(node_a, node_b)

    def dominators_of(self, node: int) -> list[int]:
        """All dominators of ``node``, from the node up to the root."""
        chain = []
        current: Optional[int] = node
        while current is not None:
            chain.append(current)
            current = self.idom.get(current)
        return chain


def _compute_idoms(
    nodes: list[int],
    preds: dict[int, list[int]],
    root: int,
) -> dict[int, Optional[int]]:
    """Cooper–Harvey–Kennedy iterative immediate dominators."""
    order = _reverse_postorder(nodes, preds, root)
    position = {node: i for i, node in enumerate(order)}
    idom: dict[int, Optional[int]] = {root: root}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while position[a] > position[b]:
                a = idom[a]  # type: ignore[assignment]
            while position[b] > position[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node == root:
                continue
            candidates = [p for p in preds.get(node, []) if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True

    result: dict[int, Optional[int]] = {}
    for node, parent in idom.items():
        result[node] = None if node == root else parent
    return result


def _reverse_postorder(
    nodes: list[int], preds: dict[int, list[int]], root: int
) -> list[int]:
    succs: dict[int, list[int]] = {node: [] for node in nodes}
    for node, plist in preds.items():
        for pred in plist:
            succs.setdefault(pred, []).append(node)
    visited: set[int] = set()
    postorder: list[int] = []

    stack: list[tuple[int, int]] = [(root, 0)]
    visited.add(root)
    while stack:
        node, child_index = stack[-1]
        children = succs.get(node, [])
        if child_index < len(children):
            stack[-1] = (node, child_index + 1)
            child = children[child_index]
            if child not in visited:
                visited.add(child)
                stack.append((child, 0))
        else:
            stack.pop()
            postorder.append(node)
    return list(reversed(postorder))


def compute_dominators(cfg: CFG) -> DominatorTree:
    """Dominator tree rooted at the CFG entry."""
    nodes = list(range(cfg.node_count()))
    preds = {node: list(cfg.predecessors(node)) for node in nodes}
    return DominatorTree(
        root=cfg.entry, idom=_compute_idoms(nodes, preds, cfg.entry)
    )


def compute_postdominators(cfg: CFG) -> DominatorTree:
    """Postdominator tree rooted at the virtual exit node."""
    nodes = list(range(cfg.node_count()))
    # reverse the graph: preds of the reverse graph are the successors
    preds = {node: list(cfg.successors(node)) if node < len(cfg.succs) else []
             for node in nodes}
    return DominatorTree(
        root=cfg.exit, idom=_compute_idoms(nodes, preds, cfg.exit)
    )


def control_dependence_fow(cfg: CFG) -> dict[int, set[int]]:
    """Control dependences via the postdominance criterion.

    Returns ``controller -> {controlled positions}``: node Y is control
    dependent on X when X has a successor from which Y is reachable
    only through paths X "commits" to — i.e. Y postdominates some
    successor of X but does not postdominate X itself.
    """
    pdom = compute_postdominators(cfg)
    deps: dict[int, set[int]] = {}
    for node in range(len(cfg.succs)):
        successors = cfg.successors(node)
        if len(successors) < 2:
            continue
        for succ in successors:
            # walk the postdominator chain from succ up to (not
            # including) node's immediate postdominator
            stop = pdom.idom.get(node)
            current: Optional[int] = succ
            while current is not None and current != stop and current != node:
                deps.setdefault(node, set()).add(current)
                current = pdom.idom.get(current)
    return deps
