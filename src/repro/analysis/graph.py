"""The dependence graph: edges plus the query API GOSpeL code uses.

An edge records one dependence between two statements (named by qid),
its kind (flow / anti / out / ctrl), the variable or array involved,
the operand positions at both ends, and a concrete direction vector
over the statements' common loop nest (empty for statements sharing no
loop).  Generated optimizer code queries the graph through
:meth:`DependenceGraph.query`, which implements GOSpeL's
``type_of_dependence(Si, Sj, direction)`` conditions including ``*`` /
``any`` wildcard matching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

from repro.analysis.subscript import matches_direction_pattern

#: The four dependence kinds of the paper.
KINDS = ("flow", "anti", "out", "ctrl")


@dataclass(frozen=True)
class DepEdge:
    """One dependence edge ``src --kind--> dst``."""

    kind: str
    src: int  # qid of the source statement
    dst: int  # qid of the sink statement
    var: str  # scalar/array name involved ("" for control deps)
    vector: tuple[str, ...] = ()  # over the common loop nest
    src_pos: Optional[str] = None  # operand position at the source
    dst_pos: Optional[str] = None  # operand position at the sink

    def __hash__(self) -> int:
        # edges survive across incremental graph splices and are
        # re-inserted into each new graph's dedup set; caching the
        # field-tuple hash makes re-insertion O(1) per edge
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((
                self.kind, self.src, self.dst, self.var, self.vector,
                self.src_pos, self.dst_pos,
            ))
            object.__setattr__(self, "_hash", cached)
        return cached

    @property
    def carried(self) -> bool:
        """True for loop-carried dependences (any non-'=' entry)."""
        return any(direction != "=" for direction in self.vector)

    def __str__(self) -> str:
        vector = f" ({','.join(self.vector)})" if self.vector else ""
        where = f" [{self.var}@{self.dst_pos}]" if self.var else ""
        return f"S{self.src} -{self.kind}-> S{self.dst}{vector}{where}"


class DependenceGraph:
    """All dependences of one program version, indexed for queries."""

    def __init__(self, edges: Sequence[DepEdge] = ()):
        self.edges: list[DepEdge] = []
        #: structured analysis diagnostics (e.g. direction-vector
        #: expansion hitting the MAX_VECTORS_PER_PAIR safety valve)
        self.notes: list[str] = []
        self._by_src: dict[tuple[str, int], list[DepEdge]] = {}
        self._by_dst: dict[tuple[str, int], list[DepEdge]] = {}
        self._seen: set[DepEdge] = set()
        for edge in edges:
            self.add(edge)

    def add(self, edge: DepEdge) -> None:
        """Insert an edge (duplicates are ignored)."""
        if edge in self._seen:
            return
        self._seen.add(edge)
        self.edges.append(edge)
        self._by_src.setdefault((edge.kind, edge.src), []).append(edge)
        self._by_dst.setdefault((edge.kind, edge.dst), []).append(edge)

    @classmethod
    def spliced(
        cls,
        old: "DependenceGraph",
        keep: Callable[[DepEdge], bool],
        fresh: Sequence[DepEdge],
    ) -> "DependenceGraph":
        """A new graph holding ``old``'s edges passing ``keep`` plus
        the ``fresh`` edges — the analysis manager's incremental splice.

        Bulk path: retained edges were already unique inside ``old``,
        so they skip :meth:`add`'s per-edge dedup, and the src/dst
        indexes are copied at the *key* level — only buckets that lost
        an edge are filtered, every other bucket list is shared with
        ``old`` (graphs are immutable once published; the only writer
        is this constructor, which copies a shared bucket before
        appending to it).  ``fresh`` edges still go through the dedup
        set, so a ``keep`` predicate that fails to drop a recomputed
        edge degrades to a duplicate-ignore, not a corrupt graph.
        """
        graph = cls()
        graph.notes = list(old.notes)
        removed: list[DepEdge] = []
        edges = graph.edges
        for edge in old.edges:
            if keep(edge):
                edges.append(edge)
            else:
                removed.append(edge)
        graph._seen = old._seen.difference(removed)
        by_src = dict(old._by_src)
        by_dst = dict(old._by_dst)
        graph._by_src = by_src
        graph._by_dst = by_dst
        # buckets this graph owns (safe to mutate in place)
        owned_src: set[tuple[str, int]] = set()
        owned_dst: set[tuple[str, int]] = set()
        if removed:
            gone = set(removed)
            for index, owned, end in (
                (by_src, owned_src, "src"),
                (by_dst, owned_dst, "dst"),
            ):
                dirty = {(e.kind, getattr(e, end)) for e in removed}
                for key in dirty:
                    bucket = [e for e in index[key] if e not in gone]
                    if bucket:
                        index[key] = bucket
                        owned.add(key)
                    else:
                        del index[key]
        for edge in fresh:
            if edge in graph._seen:
                continue
            graph._seen.add(edge)
            edges.append(edge)
            for index, owned, key in (
                (by_src, owned_src, (edge.kind, edge.src)),
                (by_dst, owned_dst, (edge.kind, edge.dst)),
            ):
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [edge]
                    owned.add(key)
                elif key in owned:
                    bucket.append(edge)
                else:  # shared with ``old``: copy before writing
                    index[key] = bucket + [edge]
                    owned.add(key)
        return graph

    def add_note(self, note: str) -> None:
        """Attach a diagnostic note (duplicates are ignored)."""
        if note not in self.notes:
            self.notes.append(note)

    def edge_set(self) -> frozenset[DepEdge]:
        """The edges as a set — the graph's comparable identity."""
        return frozenset(self._seen)

    def __len__(self) -> int:
        return len(self.edges)

    def __iter__(self) -> Iterator[DepEdge]:
        return iter(self.edges)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(
        self,
        kind: str,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        pattern: Optional[Sequence[str]] = None,
        var: Optional[str] = None,
    ) -> list[DepEdge]:
        """All edges matching the given constraints.

        ``kind`` is required ("flow"/"anti"/"out"/"ctrl"); ``src`` and
        ``dst`` fix endpoints when given; ``pattern`` is a GOSpeL
        direction vector (None matches anything); ``var`` restricts to
        one variable/array.  This is the workhorse behind the library's
        ``dep`` routine (paper Figure 7).
        """
        if kind not in KINDS:
            raise ValueError(f"unknown dependence kind {kind!r}")
        if src is not None:
            candidates = self._by_src.get((kind, src), [])
            if dst is not None:
                candidates = [e for e in candidates if e.dst == dst]
        elif dst is not None:
            candidates = self._by_dst.get((kind, dst), [])
        else:
            candidates = [e for e in self.edges if e.kind == kind]
        return [
            edge
            for edge in candidates
            if (var is None or edge.var == var)
            and matches_direction_pattern(edge.vector, pattern)
        ]

    def exists(
        self,
        kind: str,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        pattern: Optional[Sequence[str]] = None,
        var: Optional[str] = None,
    ) -> bool:
        """True when at least one matching edge exists."""
        return bool(self.query(kind, src, dst, pattern, var))

    def deps_from(self, qid: int, kind: Optional[str] = None) -> list[DepEdge]:
        """All edges whose source is ``qid`` (optionally one kind)."""
        kinds = (kind,) if kind else KINDS
        edges: list[DepEdge] = []
        for k in kinds:
            edges.extend(self._by_src.get((k, qid), []))
        return edges

    def deps_to(self, qid: int, kind: Optional[str] = None) -> list[DepEdge]:
        """All edges whose sink is ``qid`` (optionally one kind)."""
        kinds = (kind,) if kind else KINDS
        edges: list[DepEdge] = []
        for k in kinds:
            edges.extend(self._by_dst.get((k, qid), []))
        return edges

    def count(self, kind: Optional[str] = None) -> int:
        """Total number of edges, optionally of one kind."""
        if kind is None:
            return len(self.edges)
        return sum(1 for edge in self.edges if edge.kind == kind)

    def summary(self) -> dict[str, int]:
        """Edge counts per kind, for reports."""
        return {kind: self.count(kind) for kind in KINDS}
