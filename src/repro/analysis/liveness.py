"""Live-variable analysis for scalars.

Used by the hand-coded dead-code-elimination baseline and by tests that
cross-check the GOSpeL flow-dependence formulation of deadness against
classical liveness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import DataflowResult, bits_to_indices, solve_backward
from repro.ir.program import Program


@dataclass
class Liveness:
    """Live-variable solution with the variable numbering used."""

    cfg: CFG
    variables: list[str]
    var_index: dict[str, int]
    result: DataflowResult

    def live_in(self, position: int) -> frozenset[str]:
        """Variables live on entry to the quad at ``position``."""
        bits = self.result.in_bits(position)
        return frozenset(self.variables[i] for i in bits_to_indices(bits))

    def live_out(self, position: int) -> frozenset[str]:
        """Variables live on exit from the quad at ``position``."""
        bits = self.result.out_bits(position)
        return frozenset(self.variables[i] for i in bits_to_indices(bits))

    def is_live_out(self, position: int, var: str) -> bool:
        index = self.var_index.get(var)
        if index is None:
            return False
        return bool(self.result.out_bits(position) & (1 << index))


def compute_liveness(
    program: Program, cfg: Optional[CFG] = None
) -> Liveness:
    """Run backward may liveness over the scalar variables."""
    if cfg is None:
        cfg = build_cfg(program)

    variables = sorted(program.scalar_names())
    var_index = {name: i for i, name in enumerate(variables)}

    size = len(program)
    gen = [0] * size  # uses
    kill = [0] * size  # defs
    for position, quad in enumerate(program):
        use_bits = 0
        for name in quad.used_scalar_names():
            use_bits |= 1 << var_index[name]
        gen[position] = use_bits
        defined = quad.defined_scalar()
        if defined is not None:
            kill[position] = 1 << var_index[defined]

    result = solve_backward(cfg, gen, kill, may=True)
    return Liveness(cfg=cfg, variables=variables, var_index=var_index,
                    result=result)
