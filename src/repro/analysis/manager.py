"""Version-keyed analysis caching with incremental dependence updates.

The paper's driver (Figure 5) recomputes data dependences between
every pair of optimization applications; naively that makes dependence
analysis the dominant cost of multi-pass pipelines.  The
:class:`AnalysisManager` removes both kinds of waste:

* **Version-keyed caching** — every analysis product (CFG, structure
  table, dominators, reaching definitions, liveness, control
  dependences, the :class:`DependenceGraph`) is cached against
  :attr:`repro.ir.program.Program.version` and reused until the
  program actually mutates.

* **Incremental dependence recomputation** — the primitive
  transformations (delete / copy / move / add / modify, the paper's
  five action primitives) report what they touched through the
  program's change log; the manager maps each touched quad to the set
  of variable and array names it reads or writes, drops only the edges
  involving those names (plus control edges into touched statements),
  re-runs a *name-restricted* :class:`DependenceAnalyzer`, and splices
  the fresh edges into the retained graph.

Why the splice is exact, not approximate: scalar dependences are
solved with per-variable gen/kill bit masks, so the dataflow solution
of one variable never reads another variable's bits; array dependence
tests consume only the two accesses' subscript expressions and the
(marker-determined) loop structure; and with structured control flow,
inserting, deleting or moving a *non-marker* quad cannot change the
path relations between any other pair of statements.  Hence every
edge whose variable is untouched — and whose endpoints did not move —
is byte-for-byte the edge a full recomputation would produce.  Any
touch of a structural marker (``DO``/``DOALL``/``ENDDO``/``IF``/
``ELSE``/``ENDIF``), or an untagged :meth:`Program.touch`, falls back
to a full rebuild.

Set ``REPRO_ANALYSIS_CHECK=1`` (or construct with ``full_check=True``)
to shadow every incremental update with a from-scratch rebuild and
assert edge-set equality — the debug mode the property tests and CI
use to prove the two paths agree.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional, TypeVar

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.control_dep import ControlDependence, compute_control_deps
from repro.analysis.dependence import DependenceAnalyzer
from repro.analysis.dominators import DominatorTree, compute_dominators
from repro.analysis.graph import DepEdge, DependenceGraph
from repro.analysis.liveness import Liveness, compute_liveness
from repro.analysis.reaching import ReachingDefinitions, compute_reaching
from repro.ir.loops import StructureTable
from repro.ir.program import Program, ProgramChange
from repro.ir.quad import STRUCTURAL_OPS, Quad

#: Environment variable enabling the shadow full-rebuild check.
ENV_FULL_CHECK = "REPRO_ANALYSIS_CHECK"

#: Above this many affected names a full rebuild is assumed cheaper
#: than a restricted one (the restricted analyzer still pays the O(n)
#: site scan and CFG build; its win is the per-name pair work).
_INCREMENTAL_NAME_CAP = 48

#: Above this many pending changes, batching has lost its locality and
#: a full rebuild is performed instead.
_INCREMENTAL_CHANGE_CAP = 128

#: How many per-refresh dependence deltas are retained for consumers
#: (the matching engine); older deltas are discarded, which downstream
#: reads as "full resync required".
_DELTA_CAP = 1024

T = TypeVar("T")


class IncrementalMismatchError(AssertionError):
    """The shadow check found an incremental/full graph divergence."""


@dataclass
class AnalysisStats:
    """Hit/miss/recompute counters, exposed via ``stats()``.

    ``hits``/``misses`` count per-product cache lookups keyed by the
    product name ("cfg", "dependences", ...).  The dependence-specific
    counters break recomputations down by strategy.
    """

    hits: dict[str, int] = field(default_factory=dict)
    misses: dict[str, int] = field(default_factory=dict)
    full_rebuilds: int = 0
    incremental_updates: int = 0
    edges_retained: int = 0
    edges_recomputed: int = 0
    shadow_checks: int = 0

    def record_hit(self, product: str) -> None:
        self.hits[product] = self.hits.get(product, 0) + 1

    def record_miss(self, product: str) -> None:
        self.misses[product] = self.misses.get(product, 0) + 1

    def as_dict(self) -> dict[str, object]:
        return {
            "hits": dict(self.hits),
            "misses": dict(self.misses),
            "full_rebuilds": self.full_rebuilds,
            "incremental_updates": self.incremental_updates,
            "edges_retained": self.edges_retained,
            "edges_recomputed": self.edges_recomputed,
            "shadow_checks": self.shadow_checks,
        }

    def summary(self) -> str:
        total_hits = sum(self.hits.values())
        total_misses = sum(self.misses.values())
        return (
            f"analysis: {total_hits} hit(s), {total_misses} miss(es), "
            f"{self.full_rebuilds} full dependence rebuild(s), "
            f"{self.incremental_updates} incremental update(s) "
            f"({self.edges_retained} edge(s) retained, "
            f"{self.edges_recomputed} recomputed)"
        )


@dataclass(frozen=True)
class _QuadInfo:
    """Snapshot of a quad's analysis-relevant identity."""

    is_marker: bool
    names: frozenset[str]


def _quad_names(quad: Quad) -> frozenset[str]:
    """Every scalar/array name whose dependences can touch this quad."""
    names: set[str] = set(quad.used_scalar_names())
    defined = quad.defined_scalar()
    if defined is not None:
        names.add(defined)
    written = quad.defined_array()
    if written is not None:
        names.add(written.name)
    for _pos, ref in quad.used_array_refs():
        names.add(ref.name)
    return frozenset(names)


def _quad_info(quad: Quad) -> _QuadInfo:
    return _QuadInfo(
        is_marker=quad.opcode in STRUCTURAL_OPS, names=_quad_names(quad)
    )


class AnalysisManager:
    """Caches every analysis product for one :class:`Program`.

    One manager serves one program object for its whole lifetime; all
    products are invalidated automatically by the program's version
    counter, and the dependence graph is additionally maintained
    *incrementally* from the program's change log.
    """

    def __init__(
        self,
        program: Program,
        full_check: Optional[bool] = None,
        incremental: bool = True,
    ):
        self.program = program
        if full_check is None:
            full_check = os.environ.get(ENV_FULL_CHECK, "") not in ("", "0")
        #: shadow every incremental update with a full rebuild + compare
        self.full_check = full_check
        #: with ``incremental=False`` every dependence miss is a full
        #: rebuild (the benchmark baseline; caching still applies)
        self.incremental = incremental
        self.stats = AnalysisStats()
        self._products: dict[str, tuple[int, object]] = {}
        self._graph: Optional[DependenceGraph] = None
        self._graph_version = -1
        self._quad_infos: dict[int, _QuadInfo] = {}
        #: per-refresh dependence deltas: (from_version, to_version,
        #: the changed edges as (kind, src, dst) triples, or None when
        #: the refresh could not produce an exact diff).  Consumed by
        #: the matching engine to bound its dirty region.
        self._deltas: list[
            tuple[int, int, Optional[frozenset[tuple[str, int, int]]]]
        ] = []

    # ------------------------------------------------------------------
    # generic version-keyed products
    # ------------------------------------------------------------------
    def _cached(self, product: str, build: Callable[[], T]) -> T:
        version = self.program.version
        entry = self._products.get(product)
        if entry is not None and entry[0] == version:
            self.stats.record_hit(product)
            return entry[1]  # type: ignore[return-value]
        self.stats.record_miss(product)
        value = build()
        self._products[product] = (version, value)
        return value

    def cfg(self) -> CFG:
        """The statement CFG of the current program version."""
        return self._cached("cfg", lambda: build_cfg(self.program))

    def structure(self) -> StructureTable:
        """The loop/conditional structure table."""
        return self._cached("structure", lambda: StructureTable(self.program))

    def dominators(self) -> DominatorTree:
        """The dominator tree over the current CFG."""
        return self._cached("dominators", lambda: compute_dominators(self.cfg()))

    def reaching(self) -> ReachingDefinitions:
        """Reaching definitions (full and acyclic)."""
        return self._cached(
            "reaching", lambda: compute_reaching(self.program, self.cfg())
        )

    def liveness(self) -> Liveness:
        """Backward may liveness over the scalar variables."""
        return self._cached(
            "liveness", lambda: compute_liveness(self.program, self.cfg())
        )

    def control_deps(self) -> ControlDependence:
        """Control dependences from the structure table."""
        return self._cached(
            "control_deps",
            lambda: compute_control_deps(self.program, self.structure()),
        )

    # ------------------------------------------------------------------
    # the dependence graph (incremental)
    # ------------------------------------------------------------------
    def graph(self) -> DependenceGraph:
        """The dependence graph of the current program version.

        Cache hit when the version is unchanged; otherwise an
        incremental splice when the change log localizes the mutations,
        or a full rebuild when it cannot.
        """
        version = self.program.version
        if self._graph is not None and self._graph_version == version:
            self.stats.record_hit("dependences")
            return self._graph
        self.stats.record_miss("dependences")

        changes = (
            self.program.changes_since(self._graph_version)
            if (self.incremental and self._graph is not None)
            else None
        )
        plan = self._plan_update(changes) if changes is not None else None
        old_version = self._graph_version
        if plan is None:
            old_graph = self._graph
            graph = self._full_rebuild()
            self._snapshot_quads()
            # a rebuild still yields an exact delta — the symmetric
            # difference of the two edge sets — so graph consumers (the
            # match engine's worklist) need not treat a rebuild as
            # "anything may have changed"
            delta: Optional[frozenset[tuple[str, int, int]]] = None
            if old_graph is not None:
                diff = old_graph.edge_set() ^ graph.edge_set()
                delta = frozenset(
                    (edge.kind, edge.src, edge.dst) for edge in diff
                )
        else:
            graph, delta = self._incremental_update(*plan)
            if self.full_check:
                self._shadow_check(graph)
            self._snapshot_quads(touched=plan[1])
        self._graph = graph
        self._graph_version = self.program.version
        self._record_delta(old_version, self._graph_version, delta)
        return graph

    #: alias matching the session's vocabulary
    dependences = graph

    def _full_rebuild(self) -> DependenceGraph:
        self.stats.full_rebuilds += 1
        return DependenceAnalyzer(
            self.program, cfg=self.cfg(), structure=self.structure()
        ).analyze()

    def _plan_update(
        self, changes: list[ProgramChange]
    ) -> Optional[tuple[frozenset[str], frozenset[int]]]:
        """Affected (names, qids) for an incremental splice, or None
        when only a full rebuild is sound/profitable."""
        if not changes or len(changes) > _INCREMENTAL_CHANGE_CAP:
            return None
        affected: set[str] = set()
        touched: set[int] = set()
        for change in changes:
            if change.kind == "opaque":
                return None  # untagged touch: unknown quad mutated
            touched.add(change.qid)
            old = self._quad_infos.get(change.qid)
            if old is not None:
                if old.is_marker:
                    return None  # structure changed: rebuild
                affected.update(old.names)
            if self.program.contains(change.qid):
                info = _quad_info(self.program.quad(change.qid))
                if info.is_marker:
                    return None
                affected.update(info.names)
        if len(affected) > _INCREMENTAL_NAME_CAP:
            return None
        return frozenset(affected), frozenset(touched)

    def _incremental_update(
        self, affected: frozenset[str], touched: frozenset[int]
    ) -> tuple[DependenceGraph, frozenset[tuple[str, int, int]]]:
        """Drop edges incident to the touched region, recompute them
        with a name-restricted analyzer, splice into the retained rest.

        Also returns the delta: every edge — as a ``(kind, src, dst)``
        triple — that genuinely differs between the old and new graphs.
        Most recomputed edges come back identical, so diffing the
        dropped set against the recomputed set keeps the delta
        proportional to the real dependence churn, not to the
        recomputation scope.
        """
        self.stats.incremental_updates += 1
        assert self._graph is not None
        program = self.program
        contains = program.contains
        removed: set[DepEdge] = set()

        def keep(edge: DepEdge) -> bool:
            if edge.kind == "ctrl":
                # control edges are recomputed for touched sinks; the
                # guards themselves are markers, so an incremental
                # update never changes an untouched sink's guard set
                if edge.dst in touched:
                    removed.add(edge)
                    return False
            elif edge.var in affected:
                removed.add(edge)
                return False
            # drop edges with a deleted endpoint
            if contains(edge.src) and contains(edge.dst):
                return True
            removed.add(edge)
            return False

        partial = DependenceAnalyzer(
            program,
            restrict_names=affected,
            restrict_ctrl_qids=frozenset(
                qid for qid in touched if contains(qid)
            ),
            cfg=self.cfg(),
            structure=self.structure(),
        ).analyze()
        # retained and recomputed edge sets are disjoint (data edges
        # partition by variable name; ctrl edges by touched sink), so
        # the splice can adopt the retained edges in bulk
        fresh = DependenceGraph.spliced(self._graph, keep, partial.edges)
        for note in partial.notes:
            fresh.add_note(note)
        self.stats.edges_retained += len(fresh.edges) - len(partial.edges)
        self.stats.edges_recomputed += len(partial.edges)
        return fresh, frozenset(
            (edge.kind, edge.src, edge.dst)
            for edge in removed.symmetric_difference(partial.edges)
        )

    def _shadow_check(self, incremental: DependenceGraph) -> None:
        """Assert the spliced graph equals a from-scratch rebuild."""
        self.stats.shadow_checks += 1
        full = DependenceAnalyzer(self.program).analyze()
        got, want = incremental.edge_set(), full.edge_set()
        if got == want:
            return
        missing = sorted(str(e) for e in want - got)
        extra = sorted(str(e) for e in got - want)
        raise IncrementalMismatchError(
            "incremental dependence update diverged from full rebuild "
            f"at program version {self.program.version}:\n"
            f"  missing ({len(missing)}): {missing[:10]}\n"
            f"  extra ({len(extra)}): {extra[:10]}"
        )

    def _snapshot_quads(
        self, touched: Optional[frozenset[int]] = None
    ) -> None:
        """Record qid -> (marker?, names) for the next plan's old-state
        lookup.  After an incremental splice only the touched quads can
        have changed (qids are never reused), so only they re-snapshot.
        """
        if touched is None:
            self._quad_infos = {
                quad.qid: _quad_info(quad) for quad in self.program
            }
            return
        for qid in touched:
            if self.program.contains(qid):
                self._quad_infos[qid] = _quad_info(self.program.quad(qid))
            else:
                self._quad_infos.pop(qid, None)

    # ------------------------------------------------------------------
    # dependence deltas (consumed by the matching engine)
    # ------------------------------------------------------------------
    def _record_delta(
        self,
        frm: int,
        to: int,
        edges: Optional[frozenset[tuple[str, int, int]]],
    ) -> None:
        if frm == to:
            return
        self._deltas.append((frm, to, edges))
        if len(self._deltas) > _DELTA_CAP:
            del self._deltas[: len(self._deltas) - _DELTA_CAP]

    def dependence_deltas_since(
        self, version: int
    ) -> Optional[frozenset[tuple[str, int, int]]]:
        """Union of changed ``(kind, src, dst)`` edges across every
        graph refresh since ``version``, or ``None`` when no bounded
        answer exists.

        ``version`` must be a program version at which the caller
        observed a *current* graph.  ``None`` means a refresh in the
        interval produced no exact diff, the delta history was trimmed,
        or the interval does not line up with the recorded refreshes —
        in all cases the caller must do a full resync.  The graph must
        be current (``graph()`` called) before asking.
        """
        if version == self._graph_version:
            return frozenset()
        changed: set[tuple[str, int, int]] = set()
        cursor = version
        for frm, to, edges in self._deltas:
            if to <= version:
                continue
            if frm != cursor or edges is None:
                return None
            changed.update(edges)
            cursor = to
        if cursor != self._graph_version:
            return None
        return frozenset(changed)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Forget every cached product (next access recomputes fully)."""
        self._products.clear()
        self._graph = None
        self._graph_version = -1
        self._quad_infos.clear()
        self._deltas.clear()


def manager_for(
    program: Program, manager: Optional[AnalysisManager] = None
) -> AnalysisManager:
    """Reuse ``manager`` when it serves ``program``, else make a new one.

    The guard matters because callers pass managers across program
    clones; a manager silently serving the wrong program would return
    another program's dependences.
    """
    if manager is not None and manager.program is program:
        return manager
    return AnalysisManager(program)
