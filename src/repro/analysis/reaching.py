"""Reaching definitions for scalar variables.

Each quad that writes a scalar (computation result, loop control
variable at a ``DO`` head, ``READ``) is a *definition site*.  The
standard may-forward problem computes which definitions reach each
program point; the acyclic variant (back edges dropped) distinguishes
same-iteration reaches from loop-carried ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import DataflowResult, bits_to_indices, solve_forward
from repro.ir.program import Program


@dataclass(frozen=True)
class DefSite:
    """One scalar definition: which quad defines which variable."""

    index: int  # dense definition number (bit position)
    position: int  # quad position at analysis time
    qid: int
    var: str


@dataclass
class ReachingDefinitions:
    """Reaching-definitions solution plus its definition-site table."""

    cfg: CFG
    defs: list[DefSite]
    full: DataflowResult
    acyclic: DataflowResult
    defs_of_var: dict[str, list[DefSite]] = field(default_factory=dict)
    def_at_position: dict[int, DefSite] = field(default_factory=dict)

    def reaching_in(self, position: int, acyclic: bool = False) -> list[DefSite]:
        """Definition sites reaching the entry of a quad."""
        result = self.acyclic if acyclic else self.full
        return [self.defs[i] for i in bits_to_indices(result.in_bits(position))]

    def reaching_defs_of(
        self, position: int, var: str, acyclic: bool = False
    ) -> list[DefSite]:
        """Definitions of ``var`` reaching the entry of a quad."""
        return [d for d in self.reaching_in(position, acyclic) if d.var == var]

    def definition_at(self, position: int) -> Optional[DefSite]:
        """The definition site at a quad position, if it defines a scalar."""
        return self.def_at_position.get(position)


def compute_reaching(
    program: Program, cfg: Optional[CFG] = None
) -> ReachingDefinitions:
    """Run reaching definitions (full and acyclic) for a program."""
    if cfg is None:
        cfg = build_cfg(program)

    defs: list[DefSite] = []
    defs_of_var: dict[str, list[DefSite]] = {}
    def_at_position: dict[int, DefSite] = {}
    for position, quad in enumerate(program):
        var = quad.defined_scalar()
        if var is None:
            continue
        site = DefSite(index=len(defs), position=position, qid=quad.qid,
                       var=var)
        defs.append(site)
        defs_of_var.setdefault(var, []).append(site)
        def_at_position[position] = site

    size = len(program)
    gen = [0] * size
    kill = [0] * size
    kill_mask: dict[str, int] = {}
    for var, sites in defs_of_var.items():
        mask = 0
        for site in sites:
            mask |= 1 << site.index
        kill_mask[var] = mask
    for position in range(size):
        site = def_at_position.get(position)
        if site is not None:
            gen[position] = 1 << site.index
            kill[position] = kill_mask[site.var] & ~(1 << site.index)

    full = solve_forward(cfg, gen, kill, may=True)
    acyclic = solve_forward(cfg, gen, kill, may=True, acyclic=True)
    return ReachingDefinitions(
        cfg=cfg,
        defs=defs,
        full=full,
        acyclic=acyclic,
        defs_of_var=defs_of_var,
        def_at_position=def_at_position,
    )
