"""Structured reaching-sites dataflow for the scalar dependence pass.

:class:`~repro.analysis.dependence.DependenceAnalyzer` needs, for each
scalar definition/use site, the *sites of the same variable* that reach
selected program points — in the full (cyclic) solution and in the
acyclic (back-edge-free) one.  The generic bit-vector solver in
:mod:`repro.analysis.dataflow` answers this by materializing an IN set
over **all** sites at **every** CFG node: O(sites · positions / 64)
time and memory, which is both the dominant analysis cost and an
outright memory wall (hundreds of gigabytes) at 10^6 quads.

This module computes the same fixpoint by walking the structured
region tree directly, keeping one small per-variable set in an
environment dict and recording the environment only at the positions
the analyzer will actually query.  The transfer functions are all of
the gen/kill form ``f(S) = G ∪ (S ∖ K)``, which is closed under
composition and idempotent on cycles: for a single structured back
edge the fixpoint is reached after *one* extra application of the loop
body's effect (``IN_fix = IN_pre ∪ f_body(IN_pre)``), so a loop costs
two body walks in the cyclic flavour and one in the acyclic flavour —
O(n · 2^depth) worst case over the whole program, effectively linear
for real nesting depths, with memory proportional to the variables
and recorded query points rather than sites × positions.

Both site flavours are solved in one pass over the program:

* **definition sites** — a definition of ``v`` kills all other defs of
  ``v`` and generates itself (classical reaching definitions, with the
  synthetic position ``-1`` boundary defs seeding the entry); and
* **use sites** — a use of ``v`` generates itself, a definition of
  ``v`` kills all pending uses of ``v`` (the reads of the defining
  statement itself survive, since reads precede the write).

The equivalence with the bit-vector solver is asserted directly by
``tests/analysis/test_siteflow.py`` on randomized structured programs.
"""

from __future__ import annotations

from typing import Iterable, Optional, Protocol

from repro.ir.program import IRError, Program
from repro.ir.quad import LOOP_HEADS, Opcode

_EMPTY: frozenset[int] = frozenset()

#: Undo-log / environment tags for the two flavours solved together.
_DEF = 0
_USE = 1


class SiteLike(Protocol):
    """What the solver needs to know about one scalar site."""

    index: int
    position: int
    var: str


class SiteSets:
    """One flavour/one solution: ``which sites of var reach position``.

    Populated by :class:`SiteFlow`; ``at`` raises ``KeyError`` for
    positions that were not requested up front (the ``needed`` map),
    which turns a forgotten query registration into a loud failure
    instead of a silently wrong empty answer.
    """

    __slots__ = ("_at",)

    def __init__(self) -> None:
        self._at: dict[tuple[int, str], frozenset[int]] = {}

    def at(self, position: int, var: str) -> frozenset[int]:
        return self._at[(position, var)]


class SiteFlow:
    """Reaching def-sites and use-sites at the analyzer's query points.

    ``needed`` maps positions to the variable names whose reaching sets
    will be queried there.  Every position must lie inside the program;
    the walk records the IN environment (the state *before* the quad's
    own effect) for those (position, variable) pairs in all four
    solutions: ``def_full``, ``def_acyclic``, ``use_full``,
    ``use_acyclic``.
    """

    def __init__(
        self,
        program: Program,
        def_sites: Iterable[SiteLike],
        use_sites: Iterable[SiteLike],
        needed: dict[int, Iterable[str]],
    ) -> None:
        self.def_full = SiteSets()
        self.def_acyclic = SiteSets()
        self.use_full = SiteSets()
        self.use_acyclic = SiteSets()

        self._ops: list[Opcode] = []
        self._enddo_of: dict[int, int] = {}
        self._else_of: dict[int, Optional[int]] = {}
        self._endif_of: dict[int, int] = {}
        self._scan_structure(program)

        # per-position transfers, derived from the site lists so that a
        # restricted (partial) analysis only ever sees restricted sites
        self._def_at: dict[int, tuple[str, int]] = {}
        self._entry_def: dict[str, frozenset[int]] = {}
        variables: set[str] = set()
        for site in def_sites:
            variables.add(site.var)
            if site.position < 0:
                self._entry_def[site.var] = self._entry_def.get(
                    site.var, _EMPTY
                ) | {site.index}
            else:
                self._def_at[site.position] = (site.var, site.index)
        self._uses_at: dict[int, dict[str, frozenset[int]]] = {}
        for site in use_sites:
            variables.add(site.var)
            per_var = self._uses_at.setdefault(site.position, {})
            per_var[site.var] = per_var.get(site.var, _EMPTY) | {site.index}

        self._needed: dict[int, tuple[str, ...]] = {
            position: tuple(names) for position, names in needed.items()
        }

        self._variables = variables
        size = len(self._ops)
        for cyclic, def_out, use_out in (
            (True, self.def_full, self.use_full),
            (False, self.def_acyclic, self.use_acyclic),
        ):
            self._env: list[dict[str, frozenset[int]]] = [
                {var: self._entry_def.get(var, _EMPTY) for var in variables},
                {var: _EMPTY for var in variables},
            ]
            self._log: list[tuple[int, str, frozenset[int]]] = []
            self._cyclic = cyclic
            self._record_to = (def_out._at, use_out._at)
            self._walk_top(size)

    # ------------------------------------------------------------------
    def _scan_structure(self, program: Program) -> None:
        stack: list[tuple[str, int]] = []
        for position, quad in enumerate(program):
            op = quad.opcode
            self._ops.append(op)
            if op in LOOP_HEADS:
                stack.append(("do", position))
            elif op is Opcode.ENDDO:
                if not stack or stack[-1][0] != "do":
                    raise IRError(f"unmatched ENDDO at position {position}")
                self._enddo_of[stack.pop()[1]] = position
            elif op is Opcode.IF:
                stack.append(("if", position))
                self._else_of[position] = None
            elif op is Opcode.ELSE:
                if not stack or stack[-1][0] != "if":
                    raise IRError(f"ELSE outside IF at position {position}")
                self._else_of[stack[-1][1]] = position
            elif op is Opcode.ENDIF:
                if not stack or stack[-1][0] != "if":
                    raise IRError(f"unmatched ENDIF at position {position}")
                self._endif_of[stack.pop()[1]] = position
        if stack:
            raise IRError("unterminated structured region")

    # ------------------------------------------------------------------
    # environment primitives
    # ------------------------------------------------------------------
    def _set(self, which: int, var: str, value: frozenset[int]) -> None:
        env = self._env[which]
        self._log.append((which, var, env[var]))
        env[var] = value

    def _firsts(self, mark: int) -> dict[tuple[int, str], frozenset[int]]:
        """Oldest logged value per (flavour, var) since ``mark`` — the
        environment as it stood when the mark was taken, restricted to
        the entries modified afterwards."""
        olds: dict[tuple[int, str], frozenset[int]] = {}
        for which, var, old in self._log[mark:]:
            olds.setdefault((which, var), old)
        return olds

    def _rollback(self, mark: int) -> None:
        while len(self._log) > mark:
            which, var, old = self._log.pop()
            self._env[which][var] = old

    def _merge_since(self, mark: int) -> None:
        """Union the current environment with its state at ``mark``."""
        for (which, var), old in self._firsts(mark).items():
            current = self._env[which][var]
            if not (old <= current):
                self._set(which, var, old | current)

    # ------------------------------------------------------------------
    # node semantics
    # ------------------------------------------------------------------
    def _record(self, position: int) -> None:
        names = self._needed.get(position)
        if not names:
            return
        def_out, use_out = self._record_to
        env_def, env_use = self._env
        for var in names:
            key = (position, var)
            def_out[key] = env_def.get(var, _EMPTY)
            use_out[key] = env_use.get(var, _EMPTY)

    def _apply(self, position: int) -> None:
        uses = self._uses_at.get(position)
        definition = self._def_at.get(position)
        defined_var = definition[0] if definition else None
        if uses:
            env_use = self._env[_USE]
            for var, indices in uses.items():
                if var == defined_var:
                    continue  # killed and regenerated below
                current = env_use[var]
                if not (indices <= current):
                    self._set(_USE, var, current | indices)
        if definition:
            var, index = definition
            self._set(_DEF, var, frozenset((index,)))
            own_uses = uses.get(var, _EMPTY) if uses else _EMPTY
            self._set(_USE, var, own_uses)

    # ------------------------------------------------------------------
    # the structured walk
    # ------------------------------------------------------------------
    def _walk_top(self, size: int) -> None:
        """The outermost sequence, with the undo log truncated after
        every top-level statement: no enclosing region exists to look
        back past them, and dropping the entries keeps the log bounded
        by the largest single region instead of the whole program."""
        position = 0
        ops = self._ops
        while position < size:
            op = ops[position]
            if op in LOOP_HEADS:
                position = self._walk_loop(position)
            elif op is Opcode.IF:
                position = self._walk_if(position)
            else:
                self._record(position)
                self._apply(position)
                position += 1
            del self._log[:]

    def _walk(self, start: int, stop: int) -> None:
        position = start
        ops = self._ops
        while position < stop:
            op = ops[position]
            if op in LOOP_HEADS:
                position = self._walk_loop(position)
            elif op is Opcode.IF:
                position = self._walk_if(position)
            else:
                self._record(position)
                self._apply(position)
                position += 1

    def _walk_loop(self, head: int) -> int:
        enddo = self._enddo_of[head]
        if self._cyclic:
            # phase 1: one pass through DO + body gives f_cycle(IN_pre);
            # IN_fix = IN_pre ∪ f_cycle(IN_pre) closes the back edge
            # (gen/kill transfers make a second application a no-op)
            mark = len(self._log)
            self._apply(head)
            self._walk(head + 1, enddo)
            self._merge_since(mark)
        # exact pass from the (fixed) loop-entry environment; interior
        # recordings from phase 1 are overwritten here
        self._record(head)
        self._apply(head)
        mark = len(self._log)
        self._walk(head + 1, enddo)
        self._record(enddo)
        # zero-trip path: the DO's skip edge joins the loop's exit
        self._merge_since(mark)
        return enddo + 1

    def _walk_if(self, guard: int) -> int:
        endif = self._endif_of[guard]
        orelse = self._else_of[guard]
        self._record(guard)
        self._apply(guard)
        if orelse is None:
            mark = len(self._log)
            self._walk(guard + 1, endif)
            # guard-false path falls straight through to ENDIF
            self._merge_since(mark)
            self._record(endif)
            return endif + 1
        mark = len(self._log)
        self._walk(guard + 1, orelse)
        self._record(orelse)  # the ELSE marker sees the THEN branch's out
        then_out = {
            key: self._env[key[0]][key[1]] for key in self._firsts(mark)
        }
        self._rollback(mark)
        mark = len(self._log)
        self._walk(orelse + 1, endif)
        else_olds = self._firsts(mark)
        for key in then_out.keys() | else_olds.keys():
            # a branch that did not touch the variable contributes the
            # guard-exit value, which is exactly what the other
            # branch's undo log preserved (or the current value)
            base = then_out.get(key)
            if base is None:
                base = else_olds[key]
            current = self._env[key[0]][key[1]]
            if not (base <= current):
                self._set(key[0], key[1], base | current)
        self._record(endif)  # the join point: both branch outs merged
        return endif + 1
