"""Array subscript dependence tests with direction vectors.

Implements the classical battery for affine subscripts:

* **ZIV** (zero index variable): constant-vs-constant subscripts prove
  independence when they differ;
* **strong SIV** (single index variable, equal coefficients): an exact
  integer distance, pruned against known trip counts, yielding a single
  direction per level;
* **GCD feasibility** for everything else (weak SIV, MIV): proves
  independence when the linear Diophantine difference equation has no
  solution, otherwise all directions remain possible.

Each element of a *direction vector* is ``<`` (the source instance runs
in an earlier iteration of that loop than the sink instance), ``=``
(same iteration) or ``>`` (later); ``*`` in a GOSpeL specification
matches any of the three, exactly as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.ir.types import Affine, Var

#: All three concrete directions.
ALL_DIRECTIONS = frozenset({"<", "=", ">"})

Subscript = Union[Affine, Var]


@dataclass(frozen=True)
class LoopContext:
    """What the tester needs to know about one common loop level."""

    var: str
    trip_count: Optional[int] = None  # None when bounds are symbolic


def _as_affine(subscript: Subscript) -> Optional[Affine]:
    """Affine view of a subscript; opaque Vars give None (unanalyzable)."""
    if isinstance(subscript, Affine):
        return subscript
    return None


def directions_for_dimension(
    src: Subscript,
    dst: Subscript,
    loops: Sequence[LoopContext],
) -> Optional[list[frozenset[str]]]:
    """Possible directions per loop level for one subscript dimension.

    Returns None when the dimension proves *independence* (no
    dependence can exist through this array dimension), otherwise a
    list of per-level direction sets to be intersected across
    dimensions.  Unanalyzable subscripts yield all directions at every
    level (conservative).
    """
    unconstrained = [ALL_DIRECTIONS for _ in loops]
    src_affine = _as_affine(src)
    dst_affine = _as_affine(dst)
    if src_affine is None or dst_affine is None:
        return list(unconstrained)

    loop_vars = [loop.var for loop in loops]
    involved = [
        var
        for var in loop_vars
        if src_affine.coefficient(var) != 0 or dst_affine.coefficient(var) != 0
    ]

    # Any non-loop symbolic variables make the test conservative unless
    # both sides agree exactly on them.
    src_other = {
        (v, c) for v, c in src_affine.terms if v not in loop_vars
    }
    dst_other = {
        (v, c) for v, c in dst_affine.terms if v not in loop_vars
    }
    symbolic_mismatch = src_other != dst_other

    if not involved:
        # ZIV: subscripts do not vary with any common loop.
        if symbolic_mismatch:
            return list(unconstrained)  # can't tell; assume may-equal
        if src_affine.const != dst_affine.const:
            return None  # provably different elements
        return list(unconstrained)  # same element in every iteration

    if symbolic_mismatch:
        return list(unconstrained)

    if len(involved) == 1:
        var = involved[0]
        level = loop_vars.index(var)
        loop = loops[level]
        coeff_src = src_affine.coefficient(var)
        coeff_dst = dst_affine.coefficient(var)
        if coeff_src == coeff_dst:
            # strong SIV: a*i_src + c1 == a*i_dst + c2
            # => i_dst = i_src + (c1 - c2)/a
            delta = src_affine.const - dst_affine.const
            if delta % coeff_src != 0:
                return None
            distance = delta // coeff_src
            if (
                loop.trip_count is not None
                and abs(distance) >= loop.trip_count
            ):
                return None  # farther apart than the loop ever iterates
            if distance > 0:
                direction = frozenset({"<"})
            elif distance < 0:
                direction = frozenset({">"})
            else:
                direction = frozenset({"="})
            result = list(unconstrained)
            result[level] = direction
            return result
        # weak SIV: coeff_src*i1 - coeff_dst*i2 = c2 - c1
        if not _gcd_feasible(
            [coeff_src, -coeff_dst], dst_affine.const - src_affine.const
        ):
            return None
        return list(unconstrained)

    # MIV: several loop variables involved; GCD feasibility only.
    coeffs: list[int] = []
    for var in involved:
        coeffs.append(src_affine.coefficient(var))
        coeffs.append(-dst_affine.coefficient(var))
    if not _gcd_feasible(coeffs, dst_affine.const - src_affine.const):
        return None
    return list(unconstrained)


def _gcd_feasible(coeffs: Sequence[int], constant: int) -> bool:
    """Does ``sum(coeffs[i] * x_i) == constant`` have an integer solution?"""
    nonzero = [abs(c) for c in coeffs if c != 0]
    if not nonzero:
        return constant == 0
    divisor = nonzero[0]
    for c in nonzero[1:]:
        divisor = math.gcd(divisor, c)
    return constant % divisor == 0


def test_access_pair(
    src_subscripts: Sequence[Subscript],
    dst_subscripts: Sequence[Subscript],
    loops: Sequence[LoopContext],
) -> Optional[list[frozenset[str]]]:
    """Combine per-dimension tests for a whole access pair.

    Returns the per-level direction sets (to be expanded into direction
    vectors) or None when any dimension proves independence.  Accesses
    with different dimensionality (possible with opaque subscripts) are
    treated conservatively dimension-by-dimension over the shared
    prefix.
    """
    per_level = [set(ALL_DIRECTIONS) for _ in loops]
    for src_sub, dst_sub in zip(src_subscripts, dst_subscripts):
        verdict = directions_for_dimension(src_sub, dst_sub, loops)
        if verdict is None:
            return None
        for level, allowed in enumerate(verdict):
            per_level[level] &= allowed
            if not per_level[level]:
                return None
    return [frozenset(allowed) for allowed in per_level]


def expand_direction_vectors(
    per_level: Sequence[frozenset[str]],
) -> list[tuple[str, ...]]:
    """All concrete direction vectors from per-level direction sets."""
    vectors: list[tuple[str, ...]] = [()]
    for allowed in per_level:
        vectors = [
            vector + (direction,)
            for vector in vectors
            for direction in sorted(allowed)
        ]
    return vectors


def lexicographic_class(vector: Sequence[str]) -> str:
    """Classify a direction vector.

    ``forward``  — lexicographically positive (first non-'=' is '<'):
    the dependence flows from the earlier iteration to the later one as
    written.  ``equal`` — all '='; execution order within the iteration
    decides.  ``backward`` — first non-'=' is '>': the true dependence
    runs the other way with the reversed vector.
    """
    for direction in vector:
        if direction == "<":
            return "forward"
        if direction == ">":
            return "backward"
    return "equal"


def reverse_vector(vector: Sequence[str]) -> tuple[str, ...]:
    """Reverse a direction vector (swap '<' and '>')."""
    flip = {"<": ">", ">": "<", "=": "="}
    return tuple(flip[d] for d in vector)


def _element_matches(vector_dir: str, pattern_dir: str) -> bool:
    """One direction position: ``*`` on either side matches anything.

    A ``*`` in an *edge's* vector means the analysis could not narrow
    the relation (may-dependence), so it may match any requested
    direction — the conservative reading for safety conditions.
    """
    if pattern_dir in ("*", "any") or vector_dir == "*":
        return True
    return pattern_dir == vector_dir


def matches_direction_pattern(
    vector: Sequence[str], pattern: Optional[Sequence[str]]
) -> bool:
    """GOSpeL direction-vector matching (unanchored).

    ``pattern`` is the vector written in a specification, whose
    elements come from ``< > = * any``; None (omitted) matches any
    dependence.  A pattern shorter than the edge's vector constrains a
    prefix and implicitly requires ``=`` at deeper levels (the paper's
    ``(=)`` names a loop-independent dependence at whatever depth);
    pattern positions beyond the edge's nesting must be ``=`` or a
    wildcard to match.
    """
    if pattern is None:
        return True
    for level in range(max(len(vector), len(pattern))):
        pattern_dir = pattern[level] if level < len(pattern) else "="
        vector_dir = vector[level] if level < len(vector) else "="
        if not _element_matches(vector_dir, pattern_dir):
            return False
    return True


def matches_anchored_pattern(
    vector: Sequence[str],
    pattern: Optional[Sequence[str]],
    anchor_level: int,
) -> bool:
    """Direction matching anchored at a loop's nest level.

    When a Depend clause restricts its statements to a loop L's body
    (``mem(Sm, L)``), the written direction vector is relative to L:
    pattern position 0 names L's level, ``anchor_level`` (0-based).
    Loops *outer* to L must carry the dependence in the same iteration
    (``=``) for it to be visible inside one execution of L; levels
    deeper than the pattern are unconstrained.
    """
    if pattern is None:
        return True
    for level in range(anchor_level):
        vector_dir = vector[level] if level < len(vector) else "="
        if not _element_matches(vector_dir, "="):
            return False
    for offset, pattern_dir in enumerate(pattern):
        level = anchor_level + offset
        vector_dir = vector[level] if level < len(vector) else "="
        if not _element_matches(vector_dir, pattern_dir):
            return False
    return True
