"""The ``genesis`` command-line tool.

Subcommands::

    genesis generate <spec.gospel> [--name OPT] [--policy P]
        Parse a GOSpeL specification and print the generated code.

    genesis optimize <program.f> --opts CTP,DCE [--all] [--show]
        Optimize a mini-Fortran program with catalog optimizations.
        ``--verify`` differential-tests every single application
        against the equivalence oracle.

    genesis fuzz [--seed N] [--iterations N] [--opts ...]
        Differential-fuzz the catalog: random programs through every
        optimization and the multi-pass pipeline, checking semantic
        equivalence, shrinking and saving counterexamples on failure.
        ``genesis fuzz --replay FILE`` re-runs a saved counterexample.

    genesis chaos [--seed N] [--fault-rate R] [--programs ...]
        Fault-injection campaign: run pipelines whose optimizers
        raise mid-act, corrupt the IR, or stall at seeded rates, and
        check that the transactional driver contains every fault.

Exit status: 0 success; 1 a campaign/verification found failures;
2 usage error; 3 operational error (bad input, unknown optimization,
rejected session command) — reported as a one-line diagnostic.

    genesis interact <program.f> [--opts ...]
        Drive the interactive interface (paper Figure 4 step 3.b):
        list / points OPT / apply OPT [all|N] / override OPT N /
        recompute on|off / deps / show / history / reset / quit.

    genesis experiments [--only E1,E2,...] [--out FILE] [--parallel]
        Run the Section 4 reproduction and print the report.
        ``--parallel`` fans the experiment components out across
        service workers.

    genesis construct <dir> --opts CTP,DCE
        Write a self-contained optimizer package (the constructor).

    genesis suite
        List the workload programs.

    genesis search [programs...] --strategy beam --depth 4 --budget 200
        Phase-ordering search: find the best pass ordering per
        workload (seeded, deterministic), oracle-certify every
        winning pipeline, and report benefit under all three machine
        models.  ``--workers N`` evaluates candidates through the
        process-pool service so convergent orderings are cache hits.

    genesis infer [--seed N] [--pairs N] [--out DIR] [--workers N]
        Spec inference: mine candidate rewrites from before/after
        pairs, generalize them through the abstraction ladder, and
        admission-certify each rung (sema, legality, the differential
        oracle, the shared-network shadow check).  Admitted specs
        print as GOSpeL source; rejections leave shrunk
        counterexamples.  ``--emit-module`` renders the admitted set
        as a catalog module (how ``repro.opts.inferred`` is made).

    genesis submit <program.f> --opts CTP,DCE [--backend process]
        One-shot optimization through the optimization service.

    genesis batch <p1.f> <p2.f> ... --opts CTP,DCE [--workers N]
        Optimize many programs concurrently through the service;
        identical submissions are cache-served/coalesced.

    genesis serve --listen [HOST:]PORT [--cache-dir DIR]
        Network optimization service: concurrent TCP JSON-lines
        sessions, a crash-safe persistent cache tier, graceful
        SIGTERM drain (exit 0).  Without --listen, the same dialect
        runs over stdin/stdout as a single-session debug loop.

    genesis submit|batch|search ... --connect HOST:PORT
        Send jobs to a running server instead of building a local
        service; retried with capped jittered backoff (idempotent
        under cache keys).

    genesis chaos --network
        Network chaos campaign: kill -9 servers mid-job, sever
        connections mid-response, crash cache writes — asserting
        byte-identical results and zero corrupt cache entries.

``genesis fuzz --workers N`` and ``genesis chaos --workers N`` run
their campaigns' transformation/baseline jobs through a process-pool
service instead of serially in-process.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments import (
    run_all_experiments,
    run_applicability,
    run_costbenefit,
    run_enabling_matrix,
    run_lur_variants,
    run_membership_strategies,
    run_ordering,
    run_quality,
)
from repro.frontend.errors import FrontendError
from repro.frontend.lower import parse_program
from repro.genesis.codegen import CodegenError
from repro.genesis.constructor import ConstructorError
from repro.genesis.driver import DriverOptions, run_optimizer
from repro.genesis.generator import generate_optimizer
from repro.genesis.library import GenesisRuntimeError
from repro.genesis.session import OptimizerSession, SessionError
from repro.genesis.strategy import StrategyPolicy
from repro.gospel.errors import GospelError
from repro.ir.printer import format_program
from repro.ir.program import IRError
from repro.ir.validate import ValidationError
from repro.opts.catalog import standard_optimizers
from repro.opts.extended import EXTENDED_SPECS
from repro.opts.inferred import INFERRED_SPECS
from repro.opts.specs import STANDARD_SPECS, VARIANT_SPECS
from repro.search.space import SearchError
from repro.service.scheduler import ServiceError
from repro.workloads.programs import SOURCES

#: exit code for operational failures caught at the CLI boundary
#: (0 = success, 1 = campaign failures, 2 = usage error)
EXIT_ERROR = 3

#: what the boundary turns into one-line diagnostics — everything a
#: bad input file, bad specification, or rejected session command can
#: legitimately raise; real bugs still traceback
_BOUNDARY_ERRORS = (
    OSError,
    FrontendError,
    GospelError,
    CodegenError,
    ConstructorError,
    GenesisRuntimeError,
    SessionError,
    SearchError,
    IRError,
    ValidationError,
    ServiceError,
    ValueError,
    KeyError,
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``genesis`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handler = {
        "generate": _cmd_generate,
        "optimize": _cmd_optimize,
        "interact": _cmd_interact,
        "experiments": _cmd_experiments,
        "construct": _cmd_construct,
        "suite": _cmd_suite,
        "fuzz": _cmd_fuzz,
        "chaos": _cmd_chaos,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "batch": _cmd_batch,
        "search": _cmd_search,
        "infer": _cmd_infer,
    }.get(args.command)
    if handler is None:
        parser.print_help()
        return 2
    try:
        return handler(args)
    except _BOUNDARY_ERRORS as error:
        message = str(error) or error.__class__.__name__
        print(
            f"genesis {args.command}: error: {message}", file=sys.stderr
        )
        return EXIT_ERROR


def _build_parser() -> argparse.ArgumentParser:
    from repro._version import __version__

    parser = argparse.ArgumentParser(
        prog="genesis",
        description="GENesis: generate global optimizers from GOSpeL "
        "specifications (Whitfield & Soffa, PLDI 1991)",
        epilog="exit status: 0 success; 1 campaign/verification "
        "failures; 2 usage error; 3 operational error (bad input, "
        "unknown optimization, rejected command), reported as a "
        "one-line diagnostic",
    )
    parser.add_argument(
        "--version", action="version", version=f"genesis {__version__}"
    )
    sub = parser.add_subparsers(dest="command")

    generate = sub.add_parser(
        "generate", help="generate optimizer code from a specification"
    )
    generate.add_argument("spec", help="GOSpeL file, or a catalog name "
                          "like CTP")
    generate.add_argument("--name", default=None, help="optimization name")
    generate.add_argument(
        "--policy",
        choices=[p.value for p in StrategyPolicy],
        default=StrategyPolicy.HEURISTIC.value,
        help="Depend-clause implementation policy",
    )

    optimize = sub.add_parser("optimize", help="optimize a program")
    optimize.add_argument("program", help="mini-Fortran source file, or a "
                          "workload name like 'fft'")
    optimize.add_argument(
        "--opts", default="CTP,CFO,DCE",
        help="comma-separated optimization sequence",
    )
    optimize.add_argument(
        "--once", action="store_true",
        help="apply each optimization at its first point only",
    )
    optimize.add_argument(
        "--show", action="store_true", help="print the optimized code"
    )
    optimize.add_argument(
        "--save", default=None, metavar="FILE",
        help="write the optimized program as mini-Fortran source",
    )
    optimize.add_argument(
        "--verify", action="store_true",
        help="oracle-check every application (differential testing)",
    )
    optimize.add_argument(
        "--analysis-stats", action="store_true",
        help="print the analysis manager's cache/incremental counters "
        "and the match engine's candidate/index/sweep counters",
    )
    optimize.add_argument(
        "--match-mode", choices=["network", "worklist", "rescan"],
        default="network",
        help="application-point discovery: the catalog-wide shared "
        "discrimination network (default), per-spec incremental "
        "worklist matching, or the paper's restart-from-top re-scan",
    )
    optimize.add_argument(
        "--max-rollbacks", type=int, default=8, metavar="N",
        help="rolled-back failures per optimization before its run "
        "stops (default: 8)",
    )
    optimize.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per optimization run",
    )
    optimize.add_argument(
        "--on-failure", choices=["rollback", "raise", "abort"],
        default="rollback",
        help="contain a failing application by rolling it back "
        "(default), or re-raise after rollback, or abort unrepaired",
    )

    interact = sub.add_parser("interact", help="interactive session")
    interact.add_argument("program")
    interact.add_argument("--opts", default=",".join(sorted(STANDARD_SPECS)))

    service_flags = argparse.ArgumentParser(add_help=False)
    service_flags.add_argument(
        "--backend", choices=["inprocess", "process"], default="process",
        help="worker backend: forked worker processes (default) or "
        "synchronous in-process execution (deterministic; for tests "
        "and debugging)",
    )
    service_flags.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="concurrent workers (default: 4)",
    )
    service_flags.add_argument(
        "--queue-limit", type=int, default=256, metavar="N",
        help="admission-control queue bound (default: 256)",
    )
    service_flags.add_argument(
        "--job-deadline", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock deadline; overrunning workers are "
        "reaped and the job fails structurally",
    )
    service_flags.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent disk tier under the in-memory result cache "
        "(crash-safe, shareable across restarts and processes)",
    )
    service_flags.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="send jobs to a running 'genesis serve --listen' server "
        "instead of a local service (retried with capped jittered "
        "backoff; safe because submission is idempotent under cache "
        "keys); local backend/worker flags are ignored",
    )
    service_flags.add_argument(
        "--retry-attempts", type=int, default=5, metavar="N",
        help="retry budget per request for --connect (default: 5)",
    )
    service_flags.add_argument(
        "--connect-timeout", type=float, default=2.0, metavar="SECONDS",
        help="TCP connect timeout for --connect (default: 2)",
    )
    service_flags.add_argument(
        "--request-timeout", type=float, default=120.0, metavar="SECONDS",
        help="per-request read timeout for --connect (default: 120; "
        "heartbeats keep long jobs alive)",
    )

    experiments = sub.add_parser(
        "experiments", help="reproduce the paper's Section 4"
    )
    experiments.add_argument(
        "--only", default=None,
        help="comma-separated subset of E1,E2,E3,E4,E5,E6",
    )
    experiments.add_argument("--out", default=None, help="write report here")
    experiments.add_argument(
        "--parallel", action="store_true",
        help="fan the experiment components out across service "
        "workers (full report only; ignored with --only)",
    )
    experiments.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="service workers for --parallel (default: 4)",
    )

    construct = sub.add_parser(
        "construct", help="package generated optimizers on disk"
    )
    construct.add_argument("directory")
    construct.add_argument("--opts", default="CTP,CFO,DCE")

    sub.add_parser("suite", help="list the workload programs")

    fuzz = sub.add_parser(
        "fuzz", help="differential-fuzz the catalog optimizations"
    )
    fuzz.add_argument("--seed", type=int, default=0, help="campaign seed")
    fuzz.add_argument(
        "--iterations", type=int, default=50,
        help="number of random programs to generate",
    )
    fuzz.add_argument(
        "--opts", default=None,
        help="comma-separated optimization subset (default: the paper's "
        "ten)",
    )
    fuzz.add_argument(
        "--size", type=int, default=12, help="statement budget per program"
    )
    fuzz.add_argument(
        "--trials", type=int, default=3,
        help="random oracle environments per check",
    )
    fuzz.add_argument(
        "--out", default=None, metavar="DIR",
        help="write shrunk counterexample files here",
    )
    fuzz.add_argument(
        "--no-pipeline", action="store_true",
        help="skip the all-optimizations multi-pass check",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="report failures without minimizing them",
    )
    fuzz.add_argument(
        "--replay", default=None, metavar="FILE",
        help="replay a saved counterexample file instead of fuzzing",
    )
    fuzz.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="run transformations through a process-pool optimization "
        "service with N workers (default: 0, serial in-process)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection campaign against the transactional driver",
    )
    chaos.add_argument("--seed", type=int, default=0, help="campaign seed")
    chaos.add_argument(
        "--opts", default=None,
        help="comma-separated optimization subset (default: the paper's "
        "ten)",
    )
    chaos.add_argument(
        "--programs", default=None,
        help="comma-separated workload subset (default: all)",
    )
    chaos.add_argument(
        "--fault-rate", type=float, default=0.25, metavar="R",
        help="probability an act raises after a partial mutation "
        "(default: 0.25)",
    )
    chaos.add_argument(
        "--corrupt-rate", type=float, default=0.05, metavar="R",
        help="probability an act corrupts the IR after acting "
        "(default: 0.05)",
    )
    chaos.add_argument(
        "--stall-rate", type=float, default=0.0, metavar="R",
        help="probability an act stalls before acting (default: 0)",
    )
    chaos.add_argument(
        "--quarantine-after", type=int, default=10, metavar="N",
        help="consecutive rollbacks before quarantine (default: 10)",
    )
    chaos.add_argument(
        "--max-rollbacks", type=int, default=40, metavar="N",
        help="rollback budget per optimization run (default: 40)",
    )
    chaos.add_argument(
        "--deadline", type=float, default=30.0, metavar="SECONDS",
        help="wall-clock budget per optimization run (default: 30)",
    )
    chaos.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="compute fault-free baselines through a process-pool "
        "optimization service with N workers (default: 0, serial)",
    )
    chaos.add_argument(
        "--network", action="store_true",
        help="run the network chaos campaign instead: kill -9 servers "
        "mid-job, sever connections mid-response, crash cache writes "
        "mid-rename; asserts byte-identical results vs a serial "
        "baseline and zero corrupt disk entries",
    )
    chaos.add_argument(
        "--rounds", type=int, default=3, metavar="N",
        help="server lifetimes for --network (default: 3)",
    )
    chaos.add_argument(
        "--jobs", type=int, default=12, metavar="N",
        help="jobs per campaign for --network (default: 12)",
    )

    submit = sub.add_parser(
        "submit", parents=[service_flags],
        help="optimize one program through the optimization service",
    )
    submit.add_argument("program", help="mini-Fortran source file, or a "
                        "workload name like 'fft'")
    submit.add_argument(
        "--opts", default="CTP,CFO,DCE",
        help="comma-separated optimization sequence",
    )
    submit.add_argument(
        "--show", action="store_true", help="print the optimized source"
    )

    batch = sub.add_parser(
        "batch", parents=[service_flags],
        help="optimize many programs concurrently through the service",
    )
    batch.add_argument(
        "programs", nargs="+",
        help="mini-Fortran source files and/or workload names",
    )
    batch.add_argument(
        "--opts", default="CTP,CFO,DCE",
        help="comma-separated optimization sequence",
    )
    batch.add_argument(
        "--json", default=None, metavar="FILE",
        help="also write every JobResult (and service stats) as JSON",
    )

    from repro.search import MODELS_BY_NAME, STRATEGIES

    search = sub.add_parser(
        "search",
        help="search pass orderings and report certified best pipelines",
    )
    search.add_argument(
        "programs", nargs="*",
        help="mini-Fortran source files and/or workload names "
        "(default: the whole workload suite)",
    )
    search.add_argument(
        "--opts", default=None,
        help="comma-separated candidate passes (default: the paper's "
        "ten)",
    )
    search.add_argument(
        "--strategy", choices=sorted(STRATEGIES), default="beam",
        help="search strategy (default: beam)",
    )
    search.add_argument(
        "--beam-width", type=int, default=4, metavar="W",
        help="frontier width for beam search (default: 4)",
    )
    search.add_argument(
        "--depth", type=int, default=4, metavar="D",
        help="maximum pipeline length (default: 4)",
    )
    search.add_argument(
        "--budget", type=int, default=200, metavar="N",
        help="candidate evaluations allowed per program (default: 200)",
    )
    search.add_argument(
        "--seed", type=int, default=0,
        help="strategy seed; same seed, same best pipeline and visit "
        "order (default: 0)",
    )
    search.add_argument(
        "--iterations", type=int, default=4, metavar="N",
        help="rounds for iterated greedy (default: 4)",
    )
    search.add_argument(
        "--model", choices=sorted(MODELS_BY_NAME),
        default="multiprocessor",
        help="objective machine model (default: multiprocessor)",
    )
    search.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="evaluate candidates through an optimization service "
        "with N workers (default: 0, serial in-process)",
    )
    search.add_argument(
        "--backend", choices=["inprocess", "process"], default="process",
        help="service backend for --workers (default: process)",
    )
    search.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="evaluate candidates through a running 'genesis serve "
        "--listen' server (implies service evaluation; --workers/"
        "--backend are ignored)",
    )
    search.add_argument(
        "--once", action="store_true",
        help="apply each pass at its first point only (user-directed "
        "mode)",
    )
    search.add_argument(
        "--no-prune", action="store_true",
        help="do not prune branches converging to a visited "
        "fingerprint",
    )
    search.add_argument(
        "--no-certify", action="store_true",
        help="skip the oracle-certification of winning pipelines",
    )
    search.add_argument(
        "--oracle-trials", type=int, default=3, metavar="N",
        help="seeded oracle environments per certification (default: 3)",
    )
    search.add_argument(
        "--json", default=None, metavar="FILE",
        help="also write every SearchResult as JSON",
    )

    infer = sub.add_parser(
        "infer",
        help="mine, generalize, and admission-certify new GOSpeL specs",
    )
    infer.add_argument(
        "--seed", type=int, default=0,
        help="mining and admission seed; same seed, same admitted "
        "catalog (default: 0)",
    )
    infer.add_argument(
        "--pairs", type=int, default=18, metavar="N",
        help="seeded pair-generator stream length (default: 18, two "
        "passes over the plant templates)",
    )
    infer.add_argument(
        "--trace-programs", type=int, default=24, metavar="N",
        help="fuzz-corpus programs to trace-mine with statement-local "
        "catalog optimizers (default: 24; 0 disables the trace arm)",
    )
    infer.add_argument(
        "--trials", type=int, default=3, metavar="N",
        help="random oracle environments per admission check, on top "
        "of the zeros/ones/halves edge environments (default: 3)",
    )
    infer.add_argument(
        "--corpus-programs", type=int, default=5, metavar="N",
        help="random admission-corpus programs (default: 5)",
    )
    infer.add_argument(
        "--corpus-size", type=int, default=12, metavar="N",
        help="statement budget per corpus program (default: 12)",
    )
    infer.add_argument(
        "--max-windows", type=int, default=None, metavar="N",
        help="cap on mined windows entering the ladder (default: all; "
        "dropped windows are reported, not silent)",
    )
    infer.add_argument(
        "--out", default=None, metavar="DIR",
        help="write admitted .gospel files and shrunk rejection "
        "counterexamples here",
    )
    infer.add_argument(
        "--emit-module", default=None, metavar="FILE",
        help="also render the admitted set as a repro.opts catalog "
        "module (what src/repro/opts/inferred.py is)",
    )
    infer.add_argument(
        "--no-network", action="store_true",
        help="skip the shared-network shadow gate",
    )
    infer.add_argument(
        "--json", default=None, metavar="FILE",
        help="also write the full inference result as JSON",
    )
    infer.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="screen candidates through an optimization service with "
        "N workers (default: 0, serial in-process)",
    )
    infer.add_argument(
        "--backend", choices=["inprocess", "process"], default="process",
        help="service backend for --workers (default: process)",
    )
    infer.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="screen candidates through a running 'genesis serve "
        "--listen' server (--workers/--backend are ignored)",
    )

    serve = sub.add_parser(
        "serve", parents=[service_flags],
        help="run the optimization service over a TCP socket "
        "(--listen) or stdin/stdout (JSON-lines debug fallback)",
    )
    serve.add_argument(
        "--cache-capacity", type=int, default=256, metavar="N",
        help="result-cache entries before LRU eviction (default: 256)",
    )
    serve.add_argument(
        "--listen", default=None, metavar="[HOST:]PORT",
        help="serve the JSON-lines protocol over TCP (port 0 picks a "
        "free port; see --port-file); SIGTERM drains gracefully",
    )
    serve.add_argument(
        "--port-file", default=None, metavar="FILE",
        help="write the bound port here atomically once listening "
        "(the handshake for scripts using --listen :0)",
    )
    serve.add_argument(
        "--cache-disk-mb", type=int, default=64, metavar="MB",
        help="size cap for the --cache-dir tier before oldest-first "
        "GC (default: 64)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=64, metavar="N",
        help="unresolved waits per connection before a retryable "
        "Backpressure rejection (default: 64)",
    )
    serve.add_argument(
        "--drain-grace", type=float, default=10.0, metavar="SECONDS",
        help="seconds in-flight jobs get to land during a drain "
        "(default: 10)",
    )
    serve.add_argument(
        "--chaos-disconnect", type=float, default=0.0, metavar="R",
        help="test-only: sever connections after half a response at "
        "this seeded rate",
    )
    serve.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for --chaos-disconnect (default: 0)",
    )
    return parser


def _load_program_arg(text: str):
    if text in SOURCES:
        return parse_program(SOURCES[text])
    return parse_program(Path(text).read_text())


_ALL_SPECS = {
    **STANDARD_SPECS, **EXTENDED_SPECS, **INFERRED_SPECS, **VARIANT_SPECS
}


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.spec in _ALL_SPECS:
        source = _ALL_SPECS[args.spec]
        name = args.name or args.spec
    else:
        source = Path(args.spec).read_text()
        name = args.name or Path(args.spec).stem.upper()
    optimizer = generate_optimizer(
        source, name=name, policy=StrategyPolicy(args.policy)
    )
    print(optimizer.source)
    print(f"# {optimizer.describe()}", file=sys.stderr)
    for warning in optimizer.warnings:
        print(f"# warning: {warning}", file=sys.stderr)
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    program = _load_program_arg(args.program)
    names = tuple(name.strip().upper() for name in args.opts.split(","))
    from repro.opts.catalog import build_optimizer

    optimizers = {
        name: (
            standard_optimizers((name,))[name]
            if name in STANDARD_SPECS
            else build_optimizer(name)
        )
        for name in names
    }
    options = DriverOptions(
        apply_all=not args.once,
        verify=args.verify,
        on_failure=args.on_failure,
        max_rollbacks=args.max_rollbacks,
        deadline_seconds=args.deadline,
        match_mode=args.match_mode,
    )
    from repro.analysis.manager import AnalysisManager
    from repro.genesis.transaction import HealthLedger

    manager = AnalysisManager(program)
    health = HealthLedger()
    rollbacks = 0
    for name in names:
        result = run_optimizer(
            optimizers[name], program, options, manager=manager,
            health=health,
        )
        rollbacks += result.rollbacks
        print(result)
    if health.quarantined():
        print(f"quarantined: {', '.join(health.quarantined())}")
    if args.verify:
        if rollbacks:
            print(
                f"{rollbacks} application(s) failed and were rolled "
                "back; the surviving program is verified "
                "semantics-preserving"
            )
        else:
            print("all applications verified semantics-preserving")
    if args.analysis_stats:
        print(manager.stats.summary())
        from repro.genesis.matching import engine_for

        print(engine_for(manager).stats.summary())
    if args.show:
        print(format_program(program))
    if args.save:
        from repro.frontend.unparse import unparse_program

        Path(args.save).write_text(unparse_program(program))
        print(f"saved optimized source to {args.save}")
    return 0


def _cmd_interact(args: argparse.Namespace) -> int:
    program = _load_program_arg(args.program)
    names = tuple(name.strip().upper() for name in args.opts.split(","))
    session = OptimizerSession(program=program)
    for optimizer in standard_optimizers(names).values():
        session.register(optimizer)
    print("GENesis interactive optimizer. Type 'help' or 'quit'.")
    while True:
        try:
            command = input("genesis> ").strip()
        except EOFError:
            break
        if command in ("quit", "exit", "q"):
            break
        if command == "help":
            print(OptimizerSession.execute_command.__doc__)
            continue
        try:
            output = session.execute_command(command)
        except SessionError as error:
            output = f"error: {error}"
        if output:
            print(output)
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    if args.only is None:
        if args.parallel:
            with _service_client(
                args, backend="process", max_workers=args.workers
            ) as client:
                report = run_all_experiments(client=client)
        else:
            report = run_all_experiments()
        text = report.render()
        status = "ALL CLAIMS REPRODUCED" if report.all_claims_hold() else (
            "SOME CLAIMS FAILED"
        )
        text += f"\n\n{status}\n"
    else:
        chunks = []
        wanted = {part.strip().upper() for part in args.only.split(",")}
        if "E1" in wanted:
            chunks.append(run_quality().table())
        if "E2" in wanted:
            chunks.append(run_applicability().table())
        if "E3" in wanted:
            chunks.append(run_enabling_matrix().table())
        if "E4" in wanted:
            ordering = run_ordering()
            chunks.append(ordering.table())
            chunks.append(ordering.claims_table())
        if "E5" in wanted:
            chunks.append(run_costbenefit().table())
        if "E6" in wanted:
            chunks.append(run_lur_variants().table())
            chunks.append(run_membership_strategies().table())
        text = "\n\n".join(chunks) + "\n"
    if args.out:
        Path(args.out).write_text(text)
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_construct(args: argparse.Namespace) -> int:
    from repro.genesis.constructor import construct_package

    names = [name.strip().upper() for name in args.opts.split(",")]
    package = construct_package(names, args.directory)
    print(f"constructed optimizer package at {package}")
    print(f"run it with: python {package} <program.f> --show")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.verify import FuzzConfig, replay_repro, run_fuzz

    if args.replay is not None:
        report, applied = replay_repro(args.replay)
        print(f"replayed {args.replay}: {applied} application(s)")
        print(report.summary())
        return 0 if report.equivalent else 1

    from repro.opts.specs import PAPER_TEN

    if args.opts is None:
        opt_names = PAPER_TEN
    else:
        opt_names = tuple(
            name.strip().upper() for name in args.opts.split(",")
        )
    config = FuzzConfig(
        seed=args.seed,
        iterations=args.iterations,
        opt_names=opt_names,
        size=args.size,
        trials=args.trials,
        pipeline=not args.no_pipeline,
        shrink=not args.no_shrink,
        out_dir=args.out,
    )
    if args.workers > 0:
        with _service_client(
            args, backend="process", max_workers=args.workers
        ) as client:
            report = run_fuzz(config, progress=print, client=client)
    else:
        report = run_fuzz(config, progress=print)
    print(report.summary())
    if report.ok:
        if report.checks == 0:
            print("OK (vacuously): no optimization applied to any "
                  "checked program")
            return 0
        print(
            f"OK: all {len(opt_names)} optimization(s) semantics-"
            "preserving on every checked program"
        )
        return 0
    for failure in report.failures:
        if failure.shrunk_source and failure.repro_path is None:
            print(f"--- shrunk counterexample "
                  f"({'+'.join(failure.opt_names)}) ---")
            print(failure.shrunk_source, end="")
    return 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.genesis.driver import DriverOptions as _DriverOptions
    from repro.opts.specs import PAPER_TEN
    from repro.verify import ChaosConfig, run_chaos

    if args.network:
        from repro.verify.netchaos import NetChaosConfig, run_network_chaos

        report = run_network_chaos(
            NetChaosConfig(
                seed=args.seed,
                rounds=args.rounds,
                jobs=args.jobs,
            ),
            progress=print,
        )
        print(report.summary())
        return 0 if report.ok else 1

    if args.opts is None:
        opt_names = PAPER_TEN
    else:
        opt_names = tuple(
            name.strip().upper() for name in args.opts.split(",")
        )
    program_names = None
    if args.programs is not None:
        program_names = [
            name.strip() for name in args.programs.split(",")
        ]
        unknown = [name for name in program_names if name not in SOURCES]
        if unknown:
            raise SessionError(
                f"unknown workload(s): {', '.join(unknown)}; "
                f"known: {', '.join(SOURCES)}"
            )
    config = ChaosConfig(
        seed=args.seed,
        act_fault_rate=args.fault_rate,
        corrupt_rate=args.corrupt_rate,
        stall_rate=args.stall_rate,
    )
    options = _DriverOptions(
        apply_all=True,
        validate=True,
        max_rollbacks=args.max_rollbacks,
        deadline_seconds=args.deadline,
        max_match_attempts=200_000,
    )
    if args.workers > 0:
        with _service_client(
            args, backend="process", max_workers=args.workers
        ) as client:
            report = run_chaos(
                config,
                opt_names=opt_names,
                program_names=program_names,
                options=options,
                quarantine_after=args.quarantine_after,
                client=client,
            )
    else:
        report = run_chaos(
            config,
            opt_names=opt_names,
            program_names=program_names,
            options=options,
            quarantine_after=args.quarantine_after,
        )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_suite(_args: argparse.Namespace) -> int:
    for name, source in SOURCES.items():
        lines = source.strip().count("\n") + 1
        print(f"{name:<12} {lines:>4} lines")
    return 0


# ----------------------------------------------------------------------
# the optimization service verbs
# ----------------------------------------------------------------------
def _service_client(args: argparse.Namespace, **overrides):
    connect = getattr(args, "connect", None)
    if connect:
        from repro.service.net.client import (
            NetworkServiceClient,
            RetryPolicy,
        )
        from repro.service.net.server import _parse_hostport

        host, port = _parse_hostport(connect)
        return NetworkServiceClient(
            host,
            port,
            connect_timeout=getattr(args, "connect_timeout", 2.0),
            request_timeout=getattr(args, "request_timeout", 120.0),
            retry=RetryPolicy(
                attempts=getattr(args, "retry_attempts", 5)
            ),
            log=lambda message: print(
                message, file=sys.stderr, flush=True
            ),
        )
    from repro.service import ServiceClient

    settings = {
        "backend": getattr(args, "backend", "process"),
        "max_workers": getattr(args, "workers", 4),
        "queue_limit": getattr(args, "queue_limit", 256),
        "cache_dir": getattr(args, "cache_dir", None),
        "default_deadline": getattr(args, "job_deadline", None),
    }
    settings.update(overrides)
    return ServiceClient(**settings)


def _load_source_arg(text: str) -> tuple[str, str]:
    """Resolve a CLI program argument to (label, mini-Fortran text)."""
    if text in SOURCES:
        return text, SOURCES[text]
    return Path(text).stem, Path(text).read_text()


def _parse_opt_names(opts: str) -> tuple[str, ...]:
    from repro.opts.extended import EXTENDED_SPECS
    from repro.opts.inferred import INFERRED_SPECS
    from repro.opts.specs import STANDARD_SPECS, VARIANT_SPECS

    names = tuple(name.strip().upper() for name in opts.split(","))
    for name in names:
        if not (
            name in STANDARD_SPECS
            or name in EXTENDED_SPECS
            or name in INFERRED_SPECS
            or name in VARIANT_SPECS
        ):
            raise KeyError(
                f"unknown optimization {name!r}; catalog has "
                f"{sorted(STANDARD_SPECS) + sorted(EXTENDED_SPECS) + sorted(INFERRED_SPECS) + sorted(VARIANT_SPECS)}"
            )
    return names


def _cmd_submit(args: argparse.Namespace) -> int:
    _, source = _load_source_arg(args.program)
    with _service_client(args) as client:
        result = client.optimize_source(
            source, _parse_opt_names(args.opts),
            DriverOptions(apply_all=True),
        )
    print(result)
    for optimizer, reason in result.stopped.items():
        print(f"  stopped {optimizer}: {reason}")
    if result.quarantined:
        print(f"  quarantined: {', '.join(result.quarantined)}")
    if args.show and result.source is not None:
        print(result.source, end="")
    return 0 if result.ok else 1


def _cmd_batch(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service.job import Job

    labelled = [_load_source_arg(item) for item in args.programs]
    opt_names = _parse_opt_names(args.opts)
    options = DriverOptions(apply_all=True)
    with _service_client(args) as client:
        results = client.run_batch(
            [
                Job.from_source(source, opt_names, options)
                for _, source in labelled
            ]
        )
        stats = client.stats
    failed = 0
    for (label, _), result in zip(labelled, results):
        print(f"{label:<12} {result}")
        if not result.ok:
            failed += 1
    print(stats)
    if args.json:
        Path(args.json).write_text(
            _json.dumps(
                {
                    "results": [result.to_dict() for result in results],
                    "stats": str(stats),
                },
                indent=2,
            )
        )
        print(f"results written to {args.json}")
    return 0 if failed == 0 else 1


def _cmd_search(args: argparse.Namespace) -> int:
    import json as _json

    from repro.opts.specs import PAPER_TEN
    from repro.search import SearchConfig, certify, search_program

    config = SearchConfig(
        opt_names=(
            PAPER_TEN if args.opts is None
            else _parse_opt_names(args.opts)
        ),
        strategy=args.strategy,
        depth=args.depth,
        beam_width=args.beam_width,
        budget=args.budget,
        seed=args.seed,
        iterations=args.iterations,
        objective=args.model,
        prune=not args.no_prune,
        apply_all=not args.once,
    )
    if args.programs:
        targets = [_load_source_arg(item) for item in args.programs]
    else:
        targets = list(SOURCES.items())

    results = []

    def run(client=None) -> None:
        for label, source in targets:
            result = search_program(
                source, config, client=client, name=label
            )
            if not args.no_certify:
                certify(
                    result,
                    source,
                    trials=args.oracle_trials,
                    seed=args.seed,
                    options=config.driver_options(),
                )
            results.append(result)
            print(result.summary())

    if args.connect or args.workers > 0:
        with _service_client(args, max_workers=args.workers) as client:
            run(client)
    else:
        run()
    if args.json:
        Path(args.json).write_text(
            _json.dumps(
                [result.to_dict() for result in results], indent=2
            )
        )
        print(f"results written to {args.json}")
    return 0 if all(r.certified is not False for r in results) else 1


def _cmd_infer(args: argparse.Namespace) -> int:
    import json as _json

    from repro.synth.infer import (
        InferenceConfig,
        emit_module,
        run_inference,
    )

    config = InferenceConfig(
        seed=args.seed,
        pairs=args.pairs,
        trace_programs=args.trace_programs,
        corpus_programs=args.corpus_programs,
        corpus_size=args.corpus_size,
        trials=args.trials,
        out_dir=Path(args.out) if args.out else None,
        network_gate=not args.no_network,
        max_windows=args.max_windows,
    )

    def run(client=None):
        return run_inference(
            config, client=client, progress=lambda line: print(f"  {line}")
        )

    if args.connect or args.workers > 0:
        with _service_client(args, max_workers=args.workers) as client:
            result = run(client)
    else:
        result = run()
    print(result.summary())
    if args.emit_module:
        Path(args.emit_module).write_text(emit_module(result))
        print(f"catalog module written to {args.emit_module}")
    if args.json:
        Path(args.json).write_text(
            _json.dumps(
                {
                    "windows": result.windows,
                    "screened": result.screened,
                    "elapsed_seconds": result.elapsed_seconds,
                    "admitted": [
                        {
                            "name": spec.name,
                            "origin": spec.origin,
                            "rung": spec.rung,
                            "rung_label": spec.rung_label,
                            "applications": spec.applications,
                            "fingerprint": spec.fingerprint,
                            "source": spec.source,
                        }
                        for spec in result.admitted
                    ],
                    "rejections": [
                        {
                            "name": report.name,
                            "rung": report.rung,
                            "gate": report.rejected_gate,
                            "counterexample": (
                                str(report.counterexample)
                                if report.counterexample
                                else None
                            ),
                        }
                        for report in result.rejections
                    ],
                    "duplicates": dict(result.duplicates),
                    "skipped_windows": dict(result.skipped_windows),
                },
                indent=2,
            )
        )
        print(f"results written to {args.json}")
    return 0 if result.admitted else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """The JSON-lines service: over TCP with --listen (concurrent
    sessions, events, graceful drain), else over stdin/stdout as a
    single-session debug fallback (same dialect, same job spellings —
    see docs/service.md)."""
    import json as _json

    from repro.service.net.protocol import job_from_request

    if args.listen is not None:
        from repro.service.net.server import (
            ServeConfig,
            _parse_hostport,
            run_server,
        )

        host, port = _parse_hostport(args.listen)
        return run_server(ServeConfig(
            host=host,
            port=port,
            backend=args.backend,
            max_workers=args.workers,
            queue_limit=args.queue_limit,
            cache_capacity=args.cache_capacity,
            cache_dir=args.cache_dir,
            cache_disk_bytes=args.cache_disk_mb * 1024 * 1024,
            default_deadline=args.job_deadline,
            max_pending=args.max_pending,
            drain_grace=args.drain_grace,
            port_file=args.port_file,
            chaos_disconnect=args.chaos_disconnect,
            chaos_seed=args.chaos_seed,
        ))

    def emit(payload: dict) -> None:
        print(_json.dumps(payload), flush=True)

    client = _service_client(
        args,
        cache_capacity=args.cache_capacity,
        log=lambda message: print(message, file=sys.stderr, flush=True),
    )
    with client:
        for line in sys.stdin:
            line = line.strip()
            if not line:
                continue
            try:
                request = _json.loads(line)
            except _json.JSONDecodeError as error:
                emit({"error": f"bad JSON: {error}"})
                continue
            if not isinstance(request, dict):
                emit({"error": "request must be a JSON object"})
                continue
            command = request.get("cmd")
            try:
                if command == "quit":
                    break
                if command == "stats":
                    emit({"stats": str(client.stats)})
                elif command == "wait":
                    result = client.wait(
                        int(request["job_id"]),
                        timeout=request.get("timeout"),
                    )
                    emit(result.to_dict())
                else:
                    job_id = client.submit(job_from_request(request))
                    if request.get("wait", True):
                        emit(client.wait(job_id).to_dict())
                    else:
                        emit({"job_id": job_id, "status": "queued"})
            except _BOUNDARY_ERRORS as error:
                emit({"error": str(error) or type(error).__name__})
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
