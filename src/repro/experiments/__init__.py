"""The Section 4 experiment harness (E1–E6)."""

from repro.experiments.ablation import AblationResult, run_recompute_ablation
from repro.experiments.applicability import ApplicabilityResult, run_applicability
from repro.experiments.costbenefit import CostBenefitResult, run_costbenefit
from repro.experiments.enabling import (
    EnablingMatrix,
    EnablingResult,
    run_enabling,
    run_enabling_matrix,
)
from repro.experiments.ordering import OrderingResult, run_ordering
from repro.experiments.quality import QualityResult, run_quality
from repro.experiments.report import render_table
from repro.experiments.runner import (
    ExperimentReport,
    collect_claims,
    run_all_experiments,
)
from repro.experiments.strategies import (
    MembershipResult,
    VariantComparison,
    run_lur_variants,
    run_membership_strategies,
)

__all__ = [
    "AblationResult",
    "ApplicabilityResult",
    "CostBenefitResult",
    "EnablingMatrix",
    "EnablingResult",
    "ExperimentReport",
    "MembershipResult",
    "OrderingResult",
    "QualityResult",
    "VariantComparison",
    "collect_claims",
    "render_table",
    "run_all_experiments",
    "run_applicability",
    "run_recompute_ablation",
    "run_costbenefit",
    "run_enabling",
    "run_enabling_matrix",
    "run_lur_variants",
    "run_membership_strategies",
    "run_ordering",
    "run_quality",
]
