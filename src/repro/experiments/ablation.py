"""Ablation: recomputing dependences between applications, or not.

"The interface permits the user to decide if the data dependence should
be re-calculated between execution of each optimization" and warns that
stale information is the user's responsibility.  This ablation
quantifies the trade on the workload suite: running a classic
CTP → CFO → DCE sequence with recomputation on (the safe default)
versus off (one dependence graph per optimizer invocation, reused
across its applications).

Measured per workload: applications performed, wall time, and whether
the transformed program still produces the reference output.  The
expected shape: stale mode is faster (dependence analysis dominates
the driver's rescan loop) but can miss enabled applications — a freshly
created constant assignment's uses are only visible to CTP's Depend
section after recomputation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.report import render_table
from repro.genesis.driver import DriverOptions, run_optimizer
from repro.ir.interp import run_program
from repro.opts.catalog import standard_optimizers
from repro.workloads.suite import Workload, full_suite

DEFAULT_SEQUENCE = ("CTP", "CFO", "DCE")


@dataclass
class AblationRow:
    """One workload under both recomputation policies."""

    program: str
    applications_fresh: int = 0
    applications_stale: int = 0
    seconds_fresh: float = 0.0
    seconds_stale: float = 0.0
    correct_fresh: bool = True
    correct_stale: bool = True

    @property
    def speedup(self) -> float:
        if self.seconds_stale == 0:
            return 1.0
        return self.seconds_fresh / self.seconds_stale

    @property
    def missed_applications(self) -> int:
        return self.applications_fresh - self.applications_stale


@dataclass
class AblationResult:
    """The recomputation ablation over the suite."""

    sequence: tuple[str, ...]
    rows: list[AblationRow] = field(default_factory=list)

    @property
    def total_fresh(self) -> int:
        return sum(row.applications_fresh for row in self.rows)

    @property
    def total_stale(self) -> int:
        return sum(row.applications_stale for row in self.rows)

    @property
    def stale_is_faster_overall(self) -> bool:
        return sum(r.seconds_stale for r in self.rows) <= sum(
            r.seconds_fresh for r in self.rows
        )

    @property
    def all_correct(self) -> bool:
        return all(row.correct_fresh and row.correct_stale
                   for row in self.rows)

    def table(self) -> str:
        headers = [
            "program", "apps (fresh)", "apps (stale)", "missed",
            "ms (fresh)", "ms (stale)", "correct (stale)",
        ]
        rows = [
            [
                row.program,
                row.applications_fresh,
                row.applications_stale,
                row.missed_applications,
                round(row.seconds_fresh * 1e3, 2),
                round(row.seconds_stale * 1e3, 2),
                row.correct_stale,
            ]
            for row in self.rows
        ]
        title = (
            "Ablation: dependence recomputation between applications "
            f"({' -> '.join(self.sequence)}); fresh finds "
            f"{self.total_fresh}, stale finds {self.total_stale}"
        )
        return render_table(headers, rows, title=title)


def run_recompute_ablation(
    workloads: Optional[Sequence[Workload]] = None,
    sequence: Sequence[str] = DEFAULT_SEQUENCE,
) -> AblationResult:
    """Run the sequence under both policies and compare."""
    workloads = list(workloads) if workloads is not None else full_suite()
    optimizers = standard_optimizers(tuple(sorted(set(sequence))))
    result = AblationResult(sequence=tuple(sequence))

    for item in workloads:
        reference = run_program(item.load(), inputs=item.inputs).observable()
        row = AblationRow(program=item.name)

        for stale in (False, True):
            program = item.load()
            applications = 0
            start = time.perf_counter()
            for name in sequence:
                outcome = run_optimizer(
                    optimizers[name],
                    program,
                    DriverOptions(
                        apply_all=True,
                        recompute_dependences=not stale,
                    ),
                )
                applications += outcome.applied
            elapsed = time.perf_counter() - start
            output = run_program(program, inputs=item.inputs).observable()
            if stale:
                row.applications_stale = applications
                row.seconds_stale = elapsed
                row.correct_stale = output == reference
            else:
                row.applications_fresh = applications
                row.seconds_fresh = elapsed
                row.correct_fresh = output == reference
        result.rows.append(row)
    return result
