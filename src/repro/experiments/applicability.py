"""Experiment E2: where do the optimizations apply?

Paper claims reproduced: "In the test programs, CTP was the most
frequently applicable optimization ... while no application points for
ICM were found" (the IR carries no array address calculations);
"CPP occurred in only two programs"; FUS "was found to apply in only
one test case".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.report import render_table
from repro.genesis.driver import find_application_points
from repro.opts.catalog import standard_optimizers
from repro.opts.specs import STANDARD_SPECS
from repro.workloads.suite import Workload, full_suite


@dataclass
class ApplicabilityResult:
    """Application-point counts per (program, optimization)."""

    counts: dict[str, dict[str, int]] = field(default_factory=dict)
    opt_names: tuple[str, ...] = ()

    def total(self, opt_name: str) -> int:
        return sum(row.get(opt_name, 0) for row in self.counts.values())

    def programs_with_points(self, opt_name: str) -> list[str]:
        return [
            program
            for program, row in self.counts.items()
            if row.get(opt_name, 0) > 0
        ]

    def most_frequent(self) -> str:
        return max(self.opt_names, key=self.total)

    def table(self) -> str:
        headers = ["program", *self.opt_names]
        rows = [
            [program, *[row.get(name, 0) for name in self.opt_names]]
            for program, row in self.counts.items()
        ]
        rows.append(
            ["TOTAL", *[self.total(name) for name in self.opt_names]]
        )
        return render_table(
            headers, rows,
            title="E2: application points per program and optimization",
        )

    def paper_claims(self) -> dict[str, bool]:
        """The Section 4 applicability claims, checked on this run."""
        return {
            "CTP is the most frequently applicable": (
                self.most_frequent() == "CTP"
            ),
            "ICM finds no application points": self.total("ICM") == 0,
            "CPP occurs in exactly two programs": (
                len(self.programs_with_points("CPP")) == 2
            ),
            "FUS applies in exactly one test case": (
                len(self.programs_with_points("FUS")) == 1
            ),
        }


def run_applicability(
    workloads: Optional[Sequence[Workload]] = None,
    opt_names: Optional[Sequence[str]] = None,
) -> ApplicabilityResult:
    """Count application points across the suite."""
    workloads = list(workloads) if workloads is not None else full_suite()
    names = tuple(opt_names) if opt_names is not None else tuple(
        sorted(STANDARD_SPECS)
    )
    optimizers = standard_optimizers(names)
    result = ApplicabilityResult(opt_names=names)
    for item in workloads:
        program = item.load()
        row: dict[str, int] = {}
        for name in names:
            row[name] = len(
                find_application_points(optimizers[name], program.clone())
            )
        result.counts[item.name] = row
    return result
