"""Experiment E5: the cost and benefit of applying optimizations.

Paper method reproduced: "The cost of applying an optimization was
estimated using the number of checks to determine preconditions and the
number of operations to apply the code transformation ... These cost
values were validated by running the optimizers and timing their
execution.  We found that the estimated times very closely reflect the
actual times.  The expected benefit ... was computed by estimating the
impact the optimization has on execution time, taking into account code
that was parallelized and code that was eliminated.  Different
architectural characteristics were considered, including vectorization
and multi-processing."

Methodology (per the paper's per-application framing): each
optimization is applied *one point at a time* on a fresh copy of each
workload.  Cost = the instrumented counters of that run (candidate
scans + precondition checks + transformation operations); actual =
wall-clock seconds of the same run; benefit = estimated cycles saved
under each machine model.  For the parallelism-enabling restructurers
(INX, CRC, FUS, BMP) the benefit is measured after a PAR pass on both
versions — that is where interchange earns its keep — with DOALLs
restricted to the level the target machine exploits (outermost for the
multiprocessor, innermost for the vector unit).

Constant propagation runs first on the loop-transformation targets (as
a compiler would) so constant bounds are visible; CTP/CPP/DCE/CFO are
measured on the raw programs where their points live.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.report import render_table
from repro.analysis.dependence import compute_dependences
from repro.genesis.driver import (
    DriverOptions,
    apply_at_point,
    find_application_points,
    run_optimizer,
)
from repro.genesis.cost import CostCounters
from repro.ir.interp import run_program
from repro.ir.program import Program
from repro.machine.estimate import estimate_time, restrict_parallel
from repro.machine.models import ALL_MODELS, MachineModel
from repro.opts.catalog import standard_optimizers
from repro.workloads.suite import Workload, full_suite

#: loop restructurers whose benefit shows once PAR runs after them
PARALLELISM_ENABLERS = frozenset({"INX", "CRC", "FUS", "BMP"})

#: optimizations measured on CTP-prepared programs (they need the
#: constant loop bounds CTP exposes)
PREPARED_OPTS = frozenset({"LUR", "BMP", "INX", "CRC", "FUS", "PAR"})

DEFAULT_OPTS = (
    "CTP", "CPP", "DCE", "CFO", "INX", "CRC", "BMP", "PAR", "LUR", "FUS",
)


@dataclass
class CostBenefitRow:
    """One optimization's aggregate cost/benefit over the suite."""

    optimization: str
    applications: int = 0
    precondition_checks: int = 0
    action_ops: int = 0
    estimated_cost: int = 0
    measured_seconds: float = 0.0
    #: model name -> estimated cycles saved across the suite
    benefit: dict[str, float] = field(default_factory=dict)

    @property
    def cost_per_application(self) -> float:
        if self.applications == 0:
            return float(self.estimated_cost)
        return self.estimated_cost / self.applications

    def benefit_per_application(self, model: str) -> float:
        if self.applications == 0:
            return 0.0
        return self.benefit.get(model, 0.0) / self.applications


@dataclass
class CostBenefitResult:
    """The E5 sweep."""

    rows: list[CostBenefitRow] = field(default_factory=list)
    #: per-run (estimated cost, measured seconds) samples
    samples: list[tuple[int, float]] = field(default_factory=list)

    def correlation(self) -> float:
        """Pearson correlation between estimated cost and wall time.

        The paper's validation: "the estimated times very closely
        reflect the actual times".
        """
        if len(self.samples) < 2:
            return 1.0
        xs = [float(cost) for cost, _ in self.samples]
        ys = [seconds for _, seconds in self.samples]
        n = len(xs)
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        var_x = sum((x - mean_x) ** 2 for x in xs)
        var_y = sum((y - mean_y) ** 2 for y in ys)
        if var_x == 0 or var_y == 0:
            return 1.0
        return cov / math.sqrt(var_x * var_y)

    def row(self, optimization: str) -> CostBenefitRow:
        for entry in self.rows:
            if entry.optimization == optimization:
                return entry
        raise KeyError(optimization)

    def table(self) -> str:
        model_names = sorted(
            {name for row in self.rows for name in row.benefit}
        )
        headers = [
            "opt", "apps", "checks", "actions", "cost", "cost/app",
            "time (ms)", *[f"benefit[{m}]" for m in model_names],
        ]
        rows = []
        for entry in self.rows:
            rows.append(
                [
                    entry.optimization,
                    entry.applications,
                    entry.precondition_checks,
                    entry.action_ops,
                    entry.estimated_cost,
                    round(entry.cost_per_application, 1),
                    round(entry.measured_seconds * 1e3, 2),
                    *[
                        round(entry.benefit.get(m, 0.0), 1)
                        for m in model_names
                    ],
                ]
            )
        title = (
            "E5: cost and benefit per optimization "
            f"(cost/time correlation r = {self.correlation():.3f})"
        )
        return render_table(headers, rows, title=title)


def _estimate(program: Program, model: MachineModel) -> float:
    """Estimated cycles under a model's preferred parallel level."""
    if model.processors > 1:
        program = restrict_parallel(program, "outermost")
    elif model.vector_width > 1:
        program = restrict_parallel(program, "innermost")
    return estimate_time(program, model).cycles


def _executed_cycles(
    program: Program, inputs, model: MachineModel
) -> float:
    """Cycles of an actual execution (per-opcode counts x weights).

    Used for the scalar optimizations, whose benefit is "code that was
    eliminated": executed counts see exactly that, without the static
    estimator's symbolic-trip-count approximation.
    """
    counts = run_program(program, inputs=inputs).opcode_counts
    return sum(model.cost_of(op) * n for op, n in counts.items())


def run_costbenefit(
    workloads: Optional[Sequence[Workload]] = None,
    opt_names: Sequence[str] = DEFAULT_OPTS,
    models: Sequence[MachineModel] = ALL_MODELS,
) -> CostBenefitResult:
    """Measure per-application cost and estimate benefit."""
    workloads = list(workloads) if workloads is not None else full_suite()
    optimizers = standard_optimizers(tuple(sorted({*opt_names, "PAR", "CTP"})))
    result = CostBenefitResult()

    raw = [(item, item.load()) for item in workloads]
    prepared = []
    for item, program in raw:
        copy = program.clone()
        run_optimizer(
            optimizers["CTP"], copy, DriverOptions(apply_all=True)
        )
        prepared.append((item, copy))

    for name in opt_names:
        optimizer = optimizers[name]
        row = CostBenefitRow(optimization=name)
        bases = prepared if name in PREPARED_OPTS else raw
        for item, base in bases:
            # a full scan of this program counts toward the cost of
            # using the optimization, applicable or not (this is what
            # makes rarely-applicable FUS expensive per application)
            graph = compute_dependences(base)
            scan_counters = CostCounters()
            point_count = len(
                find_application_points(
                    optimizer, base.clone(), graph=graph,
                    counters=scan_counters,
                )
            )
            row.precondition_checks += scan_counters.precondition_checks()
            row.estimated_cost += scan_counters.total()
            for index in range(point_count):
                # the precomputed graph keeps dependence-analysis time
                # out of the measured application time (qids survive
                # cloning, so the edges stay valid); three repetitions
                # with the minimum taken suppress scheduler noise on
                # these microsecond-scale runs
                elapsed = []
                outcome = None
                working = base
                for _repeat in range(3):
                    working = base.clone()
                    outcome = apply_at_point(
                        optimizer, working, index, graph=graph
                    )
                    elapsed.append(outcome.elapsed_seconds)
                assert outcome is not None
                if not outcome.applications:
                    continue
                best = min(elapsed)
                row.applications += 1
                row.precondition_checks += (
                    outcome.counters.precondition_checks()
                )
                row.action_ops += outcome.counters.action_ops
                row.estimated_cost += outcome.counters.total()
                row.measured_seconds += best
                result.samples.append(
                    (outcome.counters.total(), best)
                )
                self_benefit = _benefit(
                    optimizers, name, base, working, models, item.inputs,
                    static=(name in PREPARED_OPTS),
                )
                for model_name, saved in self_benefit.items():
                    row.benefit[model_name] = (
                        row.benefit.get(model_name, 0.0) + saved
                    )
        result.rows.append(row)
    return result


def _benefit(
    optimizers,
    name: str,
    before: Program,
    after: Program,
    models: Sequence[MachineModel],
    inputs,
    static: bool,
) -> dict[str, float]:
    baseline = before.clone()
    transformed = after.clone()
    if name in PARALLELISM_ENABLERS:
        run_optimizer(
            optimizers["PAR"], baseline, DriverOptions(apply_all=True)
        )
        run_optimizer(
            optimizers["PAR"], transformed, DriverOptions(apply_all=True)
        )
    saved: dict[str, float] = {}
    for model in models:
        if static:
            saved[model.name] = (
                _estimate(baseline, model) - _estimate(transformed, model)
            )
        else:
            saved[model.name] = _executed_cycles(
                baseline, inputs, model
            ) - _executed_cycles(transformed, inputs, model)
    return saved
