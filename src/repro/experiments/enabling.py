"""Experiment E3: optimization enabling interactions.

Paper claims reproduced: "CTP was also found to create opportunities to
apply a number of other optimizations ... Of the total 97 application
points for CTP, 13 of these enabled DCE, 5 enabled CFO and 41 enabled
LUR (assuming that constant bounds are needed to unroll the loop).  CPP
... did not create opportunities for further optimization."

An application point of X *enables* optimization Y when applying X at
that point creates at least one Y application point that did not exist
before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.report import render_table
from repro.genesis.driver import (
    apply_at_point,
    find_application_points,
)
from repro.opts.catalog import standard_optimizers
from repro.workloads.suite import Workload, full_suite


def _point_keys(points: list[dict[str, object]]) -> frozenset:
    return frozenset(
        tuple(sorted((k, repr(v)) for k, v in point.items()))
        for point in points
    )


@dataclass
class EnablingResult:
    """How many points of the source optimization enabled each target."""

    source: str
    total_points: int = 0
    enabled_counts: dict[str, int] = field(default_factory=dict)
    #: (program, point index) pairs per enabled target, for inspection
    enabled_sites: dict[str, list[tuple[str, int]]] = field(
        default_factory=dict
    )

    def table(self) -> str:
        headers = [f"{self.source} enables", "points", "share"]
        rows = []
        for target, count in sorted(self.enabled_counts.items()):
            share = (
                f"{count}/{self.total_points}" if self.total_points else "0/0"
            )
            rows.append([target, count, share])
        return render_table(
            headers,
            rows,
            title=(
                f"E3: of {self.total_points} {self.source} application "
                f"points, how many enable each optimization"
            ),
        )


def run_enabling(
    source: str = "CTP",
    targets: Sequence[str] = ("DCE", "CFO", "LUR", "INX", "FUS", "BMP"),
    workloads: Optional[Sequence[Workload]] = None,
) -> EnablingResult:
    """Apply ``source`` one point at a time and watch what it unlocks."""
    workloads = list(workloads) if workloads is not None else full_suite()
    optimizers = standard_optimizers(tuple(sorted({source, *targets})))
    source_opt = optimizers[source]
    result = EnablingResult(source=source)
    for target in targets:
        result.enabled_counts[target] = 0
        result.enabled_sites[target] = []

    for item in workloads:
        base = item.load()
        base_points = find_application_points(source_opt, base.clone())
        result.total_points += len(base_points)
        base_target_keys = {
            target: _point_keys(
                find_application_points(optimizers[target], base.clone())
            )
            for target in targets
        }
        for index in range(len(base_points)):
            transformed = base.clone()
            outcome = apply_at_point(source_opt, transformed, index)
            if not outcome.applications:
                continue
            for target in targets:
                new_keys = _point_keys(
                    find_application_points(
                        optimizers[target], transformed.clone()
                    )
                )
                if new_keys - base_target_keys[target]:
                    result.enabled_counts[target] += 1
                    result.enabled_sites[target].append((item.name, index))
    return result


@dataclass
class EnablingMatrix:
    """Pairwise enabling counts between several optimizations."""

    results: dict[str, EnablingResult] = field(default_factory=dict)

    def table(self) -> str:
        sources = sorted(self.results)
        targets = sorted(
            {t for r in self.results.values() for t in r.enabled_counts}
        )
        headers = ["source \\ enables", "points", *targets]
        rows = []
        for source in sources:
            entry = self.results[source]
            rows.append(
                [
                    source,
                    entry.total_points,
                    *[entry.enabled_counts.get(t, 0) for t in targets],
                ]
            )
        return render_table(
            headers, rows, title="E3: pairwise enabling interactions"
        )


def run_enabling_matrix(
    sources: Sequence[str] = ("CTP", "CPP"),
    targets: Sequence[str] = ("DCE", "CFO", "LUR"),
    workloads: Optional[Sequence[Workload]] = None,
) -> EnablingMatrix:
    """The paper's CTP-vs-CPP contrast (CPP enables nothing)."""
    workloads = list(workloads) if workloads is not None else full_suite()
    matrix = EnablingMatrix()
    for source in sources:
        matrix.results[source] = run_enabling(
            source=source, targets=targets, workloads=workloads
        )
    return matrix
