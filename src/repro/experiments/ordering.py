"""Experiment E4: the order of application matters.

Paper claims reproduced (on the ORDERING workload): "In one program,
FUS, INX, and LUR were all applicable and heavily interacted with one
another by creating and destroying opportunities ... applying FUS
disabled INX and applying LUR disabled FUS.  Different orderings
produced different optimized programs ... when LUR was applied before
FUS and INX, INX was not disabled ... In one segment of the program INX
disabled FUS, while in another segment INX enabled FUS.  Thus, there is
not a right order of application."

Constant propagation runs first (it enables LUR by making the loop
bounds constant — part of the E3 story), then every permutation of
{FUS, INX, LUR} is applied, each optimization once at its first
application point, mirroring the paper's user-directed application.

The permutation sweep itself rides the phase-ordering search engine
(:mod:`repro.search`, exhaustive strategy): the ordering study is a
depth-3 no-repeat exhaustive search with trajectory recording, so
there is exactly one ordering-search implementation in the repository
and the experiment shares the engine's evaluator/cache machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.report import render_table
from repro.frontend.lower import parse_program
from repro.genesis.driver import (
    DriverOptions,
    apply_at_point,
    find_application_points,
    run_optimizer,
)
from repro.ir.program import Program
from repro.machine.estimate import estimate_time
from repro.machine.models import MULTIPROCESSOR
from repro.opts.catalog import standard_optimizers
from repro.search import SearchConfig, SearchResult, search_program
from repro.workloads.suite import Workload, workload

TRIO = ("FUS", "INX", "LUR")


def _fingerprint(program: Program) -> str:
    """Canonical content hash (shared definition: ``Program.fingerprint``)."""
    return program.fingerprint()


@dataclass
class OrderingRun:
    """One permutation's outcome."""

    order: tuple[str, ...]
    applied: dict[str, int] = field(default_factory=dict)
    final_size: int = 0
    loop_count: int = 0
    estimated_cycles: float = 0.0
    fingerprint: str = ""


@dataclass
class OrderingResult:
    """All permutations plus the targeted enable/disable checks."""

    runs: list[OrderingRun] = field(default_factory=list)
    claims: dict[str, bool] = field(default_factory=dict)
    #: the exhaustive search that enumerated the permutations
    search: Optional[SearchResult] = None

    @property
    def distinct_programs(self) -> int:
        return len({run.fingerprint for run in self.runs})

    def table(self) -> str:
        headers = ["order", "FUS", "INX", "LUR", "size", "loops", "est cycles"]
        rows = [
            [
                " -> ".join(run.order),
                run.applied.get("FUS", 0),
                run.applied.get("INX", 0),
                run.applied.get("LUR", 0),
                run.final_size,
                run.loop_count,
                run.estimated_cycles,
            ]
            for run in self.runs
        ]
        return render_table(
            headers,
            rows,
            title=(
                "E4: applying {FUS, INX, LUR} once each, in every order "
                f"(distinct resulting programs: {self.distinct_programs})"
            ),
        )

    def claims_table(self) -> str:
        headers = ["paper claim", "holds"]
        rows = [[claim, ok] for claim, ok in self.claims.items()]
        return render_table(headers, rows, title="E4: interaction claims")


def _count_loops(program: Program) -> int:
    from repro.ir.quad import LOOP_HEADS

    return sum(1 for quad in program if quad.opcode in LOOP_HEADS)


def _prepared(item: Workload) -> Program:
    """The workload after constant propagation (enables LUR)."""
    optimizers = standard_optimizers(("CTP",))
    program = item.load()
    run_optimizer(
        optimizers["CTP"], program, DriverOptions(apply_all=True)
    )
    return program


#: The ordering study as a search configuration: every no-repeat
#: sequence of the trio, breadth-first (= ``itertools.permutations``
#: order), each pass applied once at its first point, full trajectories
#: recorded and convergent branches deliberately *not* pruned — the
#: point of the study is one resulting program per ordering.
def ordering_search_config() -> SearchConfig:
    return SearchConfig(
        opt_names=TRIO,
        strategy="exhaustive",
        depth=len(TRIO),
        budget=64,
        apply_all=False,
        allow_repeats=False,
        record_leaves=True,
        prune=False,
        objective=MULTIPROCESSOR.name,
    )


def run_ordering(
    item: Optional[Workload] = None, client=None
) -> OrderingResult:
    """Run the full ordering study (optionally through a service
    client, so permutations share the fingerprint-keyed result cache
    with any other search riding the same service)."""
    item = item if item is not None else workload("ordering")
    optimizers = standard_optimizers(TRIO)
    base = _prepared(item)
    search = search_program(
        base, ordering_search_config(), client=client, name=item.name
    )
    result = OrderingResult(search=search)

    for leaf in search.leaves:
        program = parse_program(leaf.source)
        result.runs.append(
            OrderingRun(
                order=leaf.sequence,
                applied=dict(zip(leaf.sequence, leaf.applied)),
                final_size=len(program),
                loop_count=_count_loops(program),
                estimated_cycles=estimate_time(
                    program, MULTIPROCESSOR
                ).cycles,
                fingerprint=leaf.fingerprint,
            )
        )

    result.claims = _check_claims(base, optimizers)
    return result


def _points(optimizers, name: str, program: Program):
    return find_application_points(optimizers[name], program.clone())


def _check_claims(base: Program, optimizers) -> dict[str, bool]:
    claims: dict[str, bool] = {}

    fus_before = _points(optimizers, "FUS", base)
    inx_before = _points(optimizers, "INX", base)
    lur_before = _points(optimizers, "LUR", base)
    all_applicable = bool(fus_before) and bool(inx_before) and bool(
        lur_before
    )
    claims["FUS, INX and LUR are all applicable"] = all_applicable

    # FUS disables INX (segment 1: fusing puts statements between the
    # nest's heads, breaking tightness)
    program = base.clone()
    apply_at_point(optimizers["FUS"], program, 0)
    claims["applying FUS disables an INX opportunity"] = len(
        _points(optimizers, "INX", program)
    ) < len(inx_before)

    # LUR disables FUS (unrolling the first loop of the fusable pair)
    program = base.clone()
    apply_at_point(optimizers["LUR"], program, 0)
    claims["applying LUR disables FUS"] = len(
        _points(optimizers, "FUS", program)
    ) < len(fus_before)

    # ... but does not disable INX
    claims["LUR applied first leaves INX applicable"] = len(
        _points(optimizers, "INX", program)
    ) == len(inx_before)

    # INX disables FUS in segment 1 (the fused-candidate loop's control
    # variable changes)
    program = base.clone()
    apply_at_point(optimizers["INX"], program, 0)
    claims["INX disables FUS in one segment"] = len(
        _points(optimizers, "FUS", program)
    ) < len(fus_before)

    # INX *enables* FUS in segment 2 (interchange aligns the loop
    # control variables of the adjacent loops)
    program = base.clone()
    apply_at_point(optimizers["INX"], program, 1)
    fus_after = _points(optimizers, "FUS", program)
    new_pairs = {
        str(point.get("L2")) for point in fus_after
    } - {str(point.get("L2")) for point in fus_before}
    claims["INX enables FUS in another segment"] = bool(new_pairs)

    return claims
