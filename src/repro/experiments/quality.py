"""Experiment E1: generated vs hand-coded optimizer quality.

Paper claims reproduced: "Our optimizers found the same application
points and the resulting code was comparable to that produced by the
hand-crafted optimizers.  There were no extraneous statements, and the
optimizations were correctly performed."

Three checks per (program, optimization):

1. **same points** — the generated optimizer's application points equal
   the hand-coded baseline's;
2. **no extraneous statements** — after applying each to exhaustion the
   two programs have the same number of statements;
3. **correctly performed** — both transformed programs produce the
   original program's output on the workload inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.report import render_table
from repro.genesis.driver import DriverOptions, find_application_points, run_optimizer
from repro.ir.interp import run_program
from repro.opts.catalog import standard_optimizers
from repro.opts.handcoded import handcoded_optimizer
from repro.workloads.suite import Workload, full_suite

#: optimizations compared (all with hand-coded counterparts)
DEFAULT_OPTS = (
    "CTP", "CPP", "DCE", "CFO", "ICM", "INX", "CRC", "BMP", "PAR", "LUR",
    "FUS",
)


@dataclass
class QualityRow:
    """One (program, optimization) comparison."""

    program: str
    optimization: str
    generated_points: int
    handcoded_points: int
    same_points: bool
    generated_size: int
    handcoded_size: int
    generated_correct: bool
    handcoded_correct: bool

    @property
    def comparable_code(self) -> bool:
        return self.generated_size == self.handcoded_size

    @property
    def all_good(self) -> bool:
        return (
            self.same_points
            and self.comparable_code
            and self.generated_correct
            and self.handcoded_correct
        )


@dataclass
class QualityResult:
    """The full E1 comparison."""

    rows: list[QualityRow] = field(default_factory=list)

    @property
    def all_points_match(self) -> bool:
        return all(row.same_points for row in self.rows)

    @property
    def all_correct(self) -> bool:
        return all(
            row.generated_correct and row.handcoded_correct
            for row in self.rows
        )

    @property
    def all_comparable(self) -> bool:
        return all(row.comparable_code for row in self.rows)

    def table(self) -> str:
        headers = [
            "program", "opt", "gen pts", "hand pts", "same", "gen size",
            "hand size", "correct",
        ]
        rows = [
            [
                row.program,
                row.optimization,
                row.generated_points,
                row.handcoded_points,
                row.same_points,
                row.generated_size,
                row.handcoded_size,
                row.generated_correct and row.handcoded_correct,
            ]
            for row in self.rows
            if row.generated_points or row.handcoded_points
        ]
        return render_table(
            headers,
            rows,
            title="E1: generated vs hand-coded optimizers "
            "(rows with zero points on both sides omitted)",
            align_left=(0, 1),
        )


def _point_keys(points: list[dict[str, object]]) -> frozenset:
    return frozenset(
        tuple(sorted((k, str(v)) for k, v in point.items()))
        for point in points
    )


def run_quality(
    workloads: Optional[Sequence[Workload]] = None,
    opt_names: Sequence[str] = DEFAULT_OPTS,
) -> QualityResult:
    """Run the full E1 comparison."""
    workloads = list(workloads) if workloads is not None else full_suite()
    optimizers = standard_optimizers(tuple(opt_names))
    result = QualityResult()
    for item in workloads:
        base = item.load()
        reference = run_program(base, inputs=item.inputs).observable()
        for name in opt_names:
            generated = optimizers[name]
            baseline = handcoded_optimizer(name)

            generated_points = find_application_points(
                generated, base.clone()
            )
            handcoded_points = baseline.find_points(base.clone())

            generated_program = base.clone()
            run_optimizer(
                generated, generated_program, DriverOptions(apply_all=True)
            )
            handcoded_program = base.clone()
            baseline.apply_all(handcoded_program)

            generated_out = run_program(
                generated_program, inputs=item.inputs
            ).observable()
            handcoded_out = run_program(
                handcoded_program, inputs=item.inputs
            ).observable()

            result.rows.append(
                QualityRow(
                    program=item.name,
                    optimization=name,
                    generated_points=len(generated_points),
                    handcoded_points=len(handcoded_points),
                    same_points=(
                        _point_keys(generated_points)
                        == _point_keys(handcoded_points)
                    ),
                    generated_size=len(generated_program),
                    handcoded_size=len(handcoded_program),
                    generated_correct=generated_out == reference,
                    handcoded_correct=handcoded_out == reference,
                )
            )
    return result
