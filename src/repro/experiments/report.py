"""Plain-text table rendering shared by the experiment modules."""

from __future__ import annotations

from typing import Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    align_left: Sequence[int] = (0,),
) -> str:
    """Render a fixed-width table.

    ``align_left`` lists column indices rendered flush left (the rest
    are right-aligned, as numbers usually are).
    """
    cells = [[_text(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(row: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(row):
            if index in align_left:
                parts.append(cell.ljust(widths[index]))
            else:
                parts.append(cell.rjust(widths[index]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(list(headers)))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def _text(cell: object) -> str:
    if isinstance(cell, float):
        if cell == int(cell) and abs(cell) < 1e15:
            return str(int(cell))
        return f"{cell:.3g}"
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    return str(cell)
