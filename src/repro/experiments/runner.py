"""Running the whole experimental section in one call.

``run_all_experiments()`` reproduces every Section 4 result and returns
the printable report; this is what ``python -m repro.cli experiments``
and EXPERIMENTS.md are generated from.

The seven experiment components (E1–E6) are independent of one another
— only the final claim collection reads across them — so the study is
embarrassingly parallel.  Passing a
:class:`~repro.service.client.ServiceClient` to
:func:`run_all_experiments` submits each component as an *experiment
job* to the optimization service, fanning the whole study out across
process-pool workers instead of running it serially in-process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.client import ServiceClient

from repro.experiments.applicability import ApplicabilityResult, run_applicability
from repro.experiments.costbenefit import CostBenefitResult, run_costbenefit
from repro.experiments.enabling import EnablingMatrix, run_enabling_matrix
from repro.experiments.ordering import OrderingResult, run_ordering
from repro.experiments.quality import QualityResult, run_quality
from repro.experiments.report import render_table
from repro.experiments.strategies import (
    MembershipResult,
    VariantComparison,
    run_lur_variants,
    run_membership_strategies,
)
from repro.workloads.suite import Workload, full_suite


@dataclass
class ExperimentReport:
    """All experiment results plus rendering."""

    applicability: ApplicabilityResult
    quality: QualityResult
    enabling: EnablingMatrix
    ordering: OrderingResult
    costbenefit: CostBenefitResult
    lur_variants: VariantComparison
    membership: MembershipResult
    claim_summary: dict[str, bool] = field(default_factory=dict)

    def render(self) -> str:
        sections = [
            self.quality.table(),
            self.applicability.table(),
            self.enabling.table(),
            self.ordering.table(),
            self.ordering.claims_table(),
            self.costbenefit.table(),
            self.lur_variants.table(),
            self.membership.table(),
            self._claims_table(),
        ]
        return "\n\n".join(sections)

    def _claims_table(self) -> str:
        rows = [[claim, ok] for claim, ok in self.claim_summary.items()]
        return render_table(
            ["Section 4 claim", "reproduced"], rows,
            title="Summary: paper claims vs this run",
        )

    def all_claims_hold(self) -> bool:
        return all(self.claim_summary.values())


def collect_claims(report: "ExperimentReport") -> dict[str, bool]:
    """Evaluate every Section 4 claim against the results."""
    claims: dict[str, bool] = {}
    claims.update(report.applicability.paper_claims())
    claims["generated optimizers find the hand-coded points"] = (
        report.quality.all_points_match
    )
    claims["generated optimizers produce correct, comparable code"] = (
        report.quality.all_correct and report.quality.all_comparable
    )
    ctp = report.enabling.results.get("CTP")
    if ctp is not None:
        claims["CTP enables DCE, CFO and LUR"] = (
            ctp.enabled_counts.get("DCE", 0) > 0
            and ctp.enabled_counts.get("CFO", 0) > 0
            and ctp.enabled_counts.get("LUR", 0) > 0
        )
        claims["LUR is the most frequently enabled (41/97 in the paper)"] = (
            ctp.enabled_counts.get("LUR", 0)
            == max(ctp.enabled_counts.values())
        )
    cpp = report.enabling.results.get("CPP")
    if cpp is not None:
        claims["CPP creates no further opportunities"] = (
            sum(cpp.enabled_counts.values()) == 0
        )
    claims["different orderings produce different programs"] = (
        report.ordering.distinct_programs > 1
    )
    claims.update(report.ordering.claims)
    claims["estimated cost tracks measured time (r > 0.8)"] = (
        report.costbenefit.correlation() > 0.8
    )
    inx = report.costbenefit.row("INX")
    fus = report.costbenefit.row("FUS")
    claims["INX is inexpensive with large parallel benefit"] = (
        inx.cost_per_application < fus.cost_per_application
        and inx.benefit.get("multiprocessor", 0.0) > 0
    )
    claims["FUS applies rarely and is expensive with little benefit"] = (
        fus.applications <= 1
        and fus.cost_per_application > inx.cost_per_application
        and fus.benefit.get("scalar", 0.0) < inx.benefit.get(
            "multiprocessor", 0.0
        )
    )
    claims["checking LUR's upper limit first is cheaper"] = (
        report.lur_variants.upper_first_cheaper
    )
    claims["neither membership method always wins"] = (
        report.membership.winners_differ
    )
    claims["the strategy heuristic picks the winner case by case"] = (
        report.membership.heuristic_always_optimal
    )
    return claims


#: The independently runnable experiment components, in report order.
#: Each entry maps a stable component name to a builder taking the
#: workload list (``run_ordering`` uses its own fixed workload).
_COMPONENTS: dict[str, object] = {
    "applicability": lambda workloads: run_applicability(workloads),
    "quality": lambda workloads: run_quality(workloads),
    "enabling": lambda workloads: run_enabling_matrix(workloads=workloads),
    "ordering": lambda workloads: run_ordering(),
    "costbenefit": lambda workloads: run_costbenefit(workloads),
    "lur_variants": lambda workloads: run_lur_variants(workloads),
    "membership": lambda workloads: run_membership_strategies(workloads),
}


def run_experiment_component(
    name: str, workload_names: Optional[Sequence[str]] = None
):
    """Run one named experiment component (the service-worker entry).

    ``workload_names`` selects suite programs by name (None: the full
    suite) — names, not objects, because this call crosses a process
    boundary in service mode.
    """
    from repro.workloads.suite import workload

    builder = _COMPONENTS.get(name)
    if builder is None:
        raise KeyError(
            f"unknown experiment component {name!r}; "
            f"known: {sorted(_COMPONENTS)}"
        )
    if workload_names is None:
        workloads = full_suite()
    else:
        workloads = [workload(w) for w in workload_names]
    return builder(workloads)  # type: ignore[operator]


def _suite_names(
    workloads: Optional[Sequence[Workload]],
) -> Optional[list[str]]:
    """Workloads as suite names, or None when they are not pure suite
    members (custom workloads cannot cross a process boundary)."""
    from repro.workloads.programs import SOURCES

    if workloads is None:
        return None
    names = []
    for item in workloads:
        if SOURCES.get(item.name) != item.source:
            return None
        names.append(item.name)
    return names


def run_all_experiments(
    workloads: Optional[Sequence[Workload]] = None,
    client: Optional["ServiceClient"] = None,
) -> ExperimentReport:
    """Run E1–E6 over the suite and check every paper claim.

    With a ``client``, each component is submitted to the optimization
    service as an experiment job and the components run concurrently
    across the service's workers; claims are still collected here,
    since they read across components.  Custom (non-suite) workloads
    fall back to the serial path — they cannot be named across a
    process boundary.
    """
    workloads = list(workloads) if workloads is not None else full_suite()
    names = _suite_names(workloads) if client is not None else None
    if names is not None:
        components = _run_components_via_service(client, names)
    else:
        components = {
            name: builder(workloads)  # type: ignore[operator]
            for name, builder in _COMPONENTS.items()
        }
    report = ExperimentReport(
        applicability=components["applicability"],
        quality=components["quality"],
        enabling=components["enabling"],
        ordering=components["ordering"],
        costbenefit=components["costbenefit"],
        lur_variants=components["lur_variants"],
        membership=components["membership"],
    )
    report.claim_summary = collect_claims(report)
    return report


def _run_components_via_service(
    client: "ServiceClient", workload_names: Optional[list[str]]
) -> dict[str, object]:
    """Fan the seven components out as service experiment jobs."""
    from repro.service.job import Job

    jobs = []
    for name in _COMPONENTS:
        job = Job.experiment(name)
        if workload_names is not None:
            job.payload["workloads"] = list(workload_names)
        jobs.append((name, job))
    job_ids = {name: client.submit(job) for name, job in jobs}
    components: dict[str, object] = {}
    for name, job_id in job_ids.items():
        result = client.wait(job_id)
        if not result.ok:
            detail = str(result.failure) if result.failure else result.status
            raise RuntimeError(
                f"experiment component {name!r} failed in the service: "
                f"{detail}"
            )
        components[name] = result.payload
    return components
