"""Running the whole experimental section in one call.

``run_all_experiments()`` reproduces every Section 4 result and returns
the printable report; this is what ``python -m repro.cli experiments``
and EXPERIMENTS.md are generated from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.applicability import ApplicabilityResult, run_applicability
from repro.experiments.costbenefit import CostBenefitResult, run_costbenefit
from repro.experiments.enabling import EnablingMatrix, run_enabling_matrix
from repro.experiments.ordering import OrderingResult, run_ordering
from repro.experiments.quality import QualityResult, run_quality
from repro.experiments.report import render_table
from repro.experiments.strategies import (
    MembershipResult,
    VariantComparison,
    run_lur_variants,
    run_membership_strategies,
)
from repro.workloads.suite import Workload, full_suite


@dataclass
class ExperimentReport:
    """All experiment results plus rendering."""

    applicability: ApplicabilityResult
    quality: QualityResult
    enabling: EnablingMatrix
    ordering: OrderingResult
    costbenefit: CostBenefitResult
    lur_variants: VariantComparison
    membership: MembershipResult
    claim_summary: dict[str, bool] = field(default_factory=dict)

    def render(self) -> str:
        sections = [
            self.quality.table(),
            self.applicability.table(),
            self.enabling.table(),
            self.ordering.table(),
            self.ordering.claims_table(),
            self.costbenefit.table(),
            self.lur_variants.table(),
            self.membership.table(),
            self._claims_table(),
        ]
        return "\n\n".join(sections)

    def _claims_table(self) -> str:
        rows = [[claim, ok] for claim, ok in self.claim_summary.items()]
        return render_table(
            ["Section 4 claim", "reproduced"], rows,
            title="Summary: paper claims vs this run",
        )

    def all_claims_hold(self) -> bool:
        return all(self.claim_summary.values())


def collect_claims(report: "ExperimentReport") -> dict[str, bool]:
    """Evaluate every Section 4 claim against the results."""
    claims: dict[str, bool] = {}
    claims.update(report.applicability.paper_claims())
    claims["generated optimizers find the hand-coded points"] = (
        report.quality.all_points_match
    )
    claims["generated optimizers produce correct, comparable code"] = (
        report.quality.all_correct and report.quality.all_comparable
    )
    ctp = report.enabling.results.get("CTP")
    if ctp is not None:
        claims["CTP enables DCE, CFO and LUR"] = (
            ctp.enabled_counts.get("DCE", 0) > 0
            and ctp.enabled_counts.get("CFO", 0) > 0
            and ctp.enabled_counts.get("LUR", 0) > 0
        )
        claims["LUR is the most frequently enabled (41/97 in the paper)"] = (
            ctp.enabled_counts.get("LUR", 0)
            == max(ctp.enabled_counts.values())
        )
    cpp = report.enabling.results.get("CPP")
    if cpp is not None:
        claims["CPP creates no further opportunities"] = (
            sum(cpp.enabled_counts.values()) == 0
        )
    claims["different orderings produce different programs"] = (
        report.ordering.distinct_programs > 1
    )
    claims.update(report.ordering.claims)
    claims["estimated cost tracks measured time (r > 0.8)"] = (
        report.costbenefit.correlation() > 0.8
    )
    inx = report.costbenefit.row("INX")
    fus = report.costbenefit.row("FUS")
    claims["INX is inexpensive with large parallel benefit"] = (
        inx.cost_per_application < fus.cost_per_application
        and inx.benefit.get("multiprocessor", 0.0) > 0
    )
    claims["FUS applies rarely and is expensive with little benefit"] = (
        fus.applications <= 1
        and fus.cost_per_application > inx.cost_per_application
        and fus.benefit.get("scalar", 0.0) < inx.benefit.get(
            "multiprocessor", 0.0
        )
    )
    claims["checking LUR's upper limit first is cheaper"] = (
        report.lur_variants.upper_first_cheaper
    )
    claims["neither membership method always wins"] = (
        report.membership.winners_differ
    )
    claims["the strategy heuristic picks the winner case by case"] = (
        report.membership.heuristic_always_optimal
    )
    return claims


def run_all_experiments(
    workloads: Optional[Sequence[Workload]] = None,
) -> ExperimentReport:
    """Run E1–E6 over the suite and check every paper claim."""
    workloads = list(workloads) if workloads is not None else full_suite()
    report = ExperimentReport(
        applicability=run_applicability(workloads),
        quality=run_quality(workloads),
        enabling=run_enabling_matrix(workloads=workloads),
        ordering=run_ordering(),
        costbenefit=run_costbenefit(workloads),
        lur_variants=run_lur_variants(workloads),
        membership=run_membership_strategies(workloads),
    )
    report.claim_summary = collect_claims(report)
    return report
