"""Experiment E6: implementation strategies affect cost.

Two paper findings reproduced:

**E6a — specification order matters.**  "If the specification of LUR
requires that both the upper and lower limits are constant, LUR is less
costly to apply if the upper limit is checked before the lower bound.
Our experimentation showed that it is more likely for the upper limit
to be variable than the lower limit, thus discarding a non-application
point earlier."  The catalog's ``LUR`` checks the upper limit first;
``LUR_LOWER_FIRST`` is the same optimization with the conjuncts
swapped.  Both are generated and their pattern-check counters compared.

**E6b — membership-checking method matters.**  "Two straightforward
ways of implementing the checking are (1) to determine statements that
are members and then check for the desired dependence, and (2) to
consider the dependences of one statement and check the corresponding
dependent statements for membership.  We found that the cost ... varies
tremendously and is not consistently better for one method over the
other.  Using heuristics, GENesis was changed to select the least
expensive method on a case by case basis."  Each membership-heavy
optimization is generated under FORCE_MEMBERS, FORCE_DEPS and the
default HEURISTIC policies and the precondition-cost totals compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.report import render_table
from repro.genesis.cost import CostCounters
from repro.genesis.driver import find_application_points
from repro.genesis.generator import generate_optimizer
from repro.genesis.strategy import StrategyPolicy
from repro.opts.specs import STANDARD_SPECS, VARIANT_SPECS
from repro.workloads.suite import Workload, full_suite

#: optimizations with membership-qualified dependence clauses
MEMBERSHIP_OPTS = ("PAR", "INX", "ICM", "CRC")


@dataclass
class VariantComparison:
    """E6a: one spec under two conjunct orders."""

    upper_first_checks: int = 0
    lower_first_checks: int = 0
    upper_first_points: int = 0
    lower_first_points: int = 0

    @property
    def upper_first_cheaper(self) -> bool:
        return self.upper_first_checks < self.lower_first_checks

    def table(self) -> str:
        headers = ["LUR variant", "pattern checks", "points found"]
        rows = [
            ["upper limit first (paper's cheaper form)",
             self.upper_first_checks, self.upper_first_points],
            ["lower limit first",
             self.lower_first_checks, self.lower_first_points],
        ]
        return render_table(
            headers, rows,
            title="E6a: specification conjunct order vs matching cost",
        )


def run_lur_variants(
    workloads: Optional[Sequence[Workload]] = None,
) -> VariantComparison:
    """Compare the two LUR specification variants over the suite.

    Loops in the suite are scanned as-is (bounds mostly symbolic), which
    is exactly the situation the paper describes: the upper limit is
    usually the variable one, so checking it first discards candidates
    after a single check.
    """
    workloads = list(workloads) if workloads is not None else full_suite()
    upper = generate_optimizer(STANDARD_SPECS["LUR"], name="LUR")
    lower = generate_optimizer(
        VARIANT_SPECS["LUR_LOWER_FIRST"], name="LUR_LOWER_FIRST"
    )
    comparison = VariantComparison()
    for item in workloads:
        program = item.load()
        counters_upper = CostCounters()
        comparison.upper_first_points += len(
            find_application_points(
                upper, program.clone(), counters=counters_upper
            )
        )
        comparison.upper_first_checks += counters_upper.pattern_checks
        counters_lower = CostCounters()
        comparison.lower_first_points += len(
            find_application_points(
                lower, program.clone(), counters=counters_lower
            )
        )
        comparison.lower_first_checks += counters_lower.pattern_checks
    return comparison


@dataclass
class MembershipRow:
    """E6b: one optimization under the three strategy policies."""

    optimization: str
    members_cost: int = 0
    deps_cost: int = 0
    heuristic_cost: int = 0
    points: int = 0

    @property
    def best_cost(self) -> int:
        return min(self.members_cost, self.deps_cost)

    @property
    def heuristic_optimal(self) -> bool:
        return self.heuristic_cost <= self.best_cost

    @property
    def winner(self) -> str:
        if self.members_cost == self.deps_cost:
            return "tie"
        return "members" if self.members_cost < self.deps_cost else "deps"


@dataclass
class MembershipResult:
    """The E6b sweep."""

    rows: list[MembershipRow] = field(default_factory=list)

    @property
    def winners_differ(self) -> bool:
        """Neither method wins everywhere (the paper's observation)."""
        winners = {row.winner for row in self.rows if row.winner != "tie"}
        return len(winners) > 1

    @property
    def heuristic_always_optimal(self) -> bool:
        return all(row.heuristic_optimal for row in self.rows)

    def table(self) -> str:
        headers = [
            "opt", "method-1 (members)", "method-2 (deps)", "heuristic",
            "winner", "heuristic optimal",
        ]
        rows = [
            [
                row.optimization,
                row.members_cost,
                row.deps_cost,
                row.heuristic_cost,
                row.winner,
                row.heuristic_optimal,
            ]
            for row in self.rows
        ]
        return render_table(
            headers, rows,
            title="E6b: membership-checking method vs precondition cost",
        )


def run_membership_strategies(
    workloads: Optional[Sequence[Workload]] = None,
    opt_names: Sequence[str] = MEMBERSHIP_OPTS,
) -> MembershipResult:
    """Generate each optimization under all three policies and compare."""
    workloads = list(workloads) if workloads is not None else full_suite()
    result = MembershipResult()
    for name in opt_names:
        source = STANDARD_SPECS[name]
        row = MembershipRow(optimization=name)
        for policy, attr in (
            (StrategyPolicy.FORCE_MEMBERS, "members_cost"),
            (StrategyPolicy.FORCE_DEPS, "deps_cost"),
            (StrategyPolicy.HEURISTIC, "heuristic_cost"),
        ):
            optimizer = generate_optimizer(source, name=name, policy=policy)
            total = 0
            points = 0
            for item in workloads:
                counters = CostCounters()
                points += len(
                    find_application_points(
                        optimizer, item.load(), counters=counters
                    )
                )
                total += counters.precondition_checks()
            setattr(row, attr, total)
            row.points = points
        result.rows.append(row)
    return result
