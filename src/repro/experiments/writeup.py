"""Generating EXPERIMENTS.md from a live run of the harness.

``python -m repro.experiments.writeup`` reruns E1–E6 and rewrites the
paper-vs-measured record, so the document always reflects the code.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments.ablation import run_recompute_ablation
from repro.experiments.runner import ExperimentReport, run_all_experiments

_HEADER = """\
# EXPERIMENTS — paper vs. this reproduction

Whitfield & Soffa's Section 4 reports its results in prose (the
numbered figures are code listings), so this record is organized by the
experiment ids E1–E6 defined in DESIGN.md §3.  Absolute counts differ
from the paper's because the HOMPACK/numerical-analysis programs were
replaced by the ten same-idiom workloads of `repro.workloads`
(DESIGN.md §4); every *relational* claim — who wins, what enables what,
which shape holds — is checked mechanically below.

Regenerate this file with:

    python -m repro.experiments.writeup

Machine-independent counts (application points, precondition checks,
enabling counts) are deterministic; wall-clock milliseconds and the
cost/time correlation vary slightly per machine but stay far above the
claim thresholds.
"""

_E1 = """\
## E1 — generated vs. hand-coded optimizer quality

**Paper:** "Our optimizers found the same application points and the
resulting code was comparable to that produced by the hand-crafted
optimizers.  There were no extraneous statements, and the optimizations
were correctly performed."

**Here:** every (program, optimization) pair is checked three ways —
identical application-point sets, identical post-optimization program
sizes, and identical `write` traces when executing both transformed
programs on the workload inputs.  The hand-coded side is an independent
classical implementation per optimization (`repro.opts.handcoded`).
"""

_E2 = """\
## E2 — where the optimizations apply

**Paper:** "CTP was the most frequently applicable optimization (often
enabled) while no application points for ICM were found.  It should be
noted that the intermediate code did not include address calculations
for array accesses ...  CPP occurred in only two programs ...  FUS was
found to apply in only one test case."  The paper counts 97 CTP
application points over its ten programs.

**Here:** same shape on the substitute suite (our IR likewise carries
no address arithmetic, so ICM's zero is structural, not accidental).
"""

_E3 = """\
## E3 — enabling interactions

**Paper:** "Of the total 97 application points for CTP, 13 of these
enabled DCE, 5 enabled CFO and 41 enabled LUR (assuming that constant
bounds are needed to unroll the loop).  CPP ... did not create
opportunities for further optimization."

**Here:** an application point of X *enables* Y when applying X at that
point creates a Y point that did not exist before.  The ordering
LUR > DCE > CFO and CPP-enables-nothing both reproduce; the ratios are
close to the paper's 41/13/5 out of 97.
"""

_E4 = """\
## E4 — application order matters

**Paper:** "In one program, FUS, INX, and LUR were all applicable and
heavily interacted ... applying FUS disabled INX and applying LUR
disabled FUS.  Different orderings produced different optimized
programs ... when LUR was applied before FUS and INX, INX was not
disabled ...  In one segment of the program INX disabled FUS, while in
another segment INX enabled FUS.  Thus, there is not a right order of
application.  The context of the application point is needed."

**Here:** the ORDERING workload carries both segments; each of the six
orders applies each optimization once at its first point (the paper's
user-directed style), after constant propagation (whose enabling of LUR
is itself part of the E3 story).
"""

_E5 = """\
## E5 — cost and benefit

**Paper:** "The cost of applying an optimization was estimated using
the number of checks to determine preconditions and the number of
operations to apply the code transformation ...  These cost values were
validated by running the optimizers and timing their execution.  We
found that the estimated times very closely reflect the actual times.
... INX was found to be a relatively inexpensive operation with large
benefits.  CTP is inexpensive to apply, and it also enables many
parallelizing optimizations.  FUS was found to apply in only one test
case and is a fairly expensive optimization to apply with little
expected benefit unless various types of memory hierarchies are part of
the parallel system."

**Here:** costs are the instrumented counter totals (candidate scans +
pattern/dependence/membership checks + action operations), amortizing
each optimization's whole-suite scan over its applications — which is
exactly what makes rarely-applicable FUS expensive per application.
Wall time is measured on the same runs with the dependence graph
precomputed.  Benefits are estimated cycles saved: executed-instruction
deltas for the scalar optimizations, static machine-model estimates for
the loop restructurers, with PAR applied after INX/CRC/FUS/BMP and
DOALLs restricted to the level each target exploits (outermost for the
multiprocessor, innermost for the vector unit).  PAR's *negative*
multiprocessor total is the granularity effect the models are built to
expose: forking an 8-trip loop costs more than it saves — and it is why
INX (which moves parallelism outward) has the large benefit the paper
describes.
"""

_E6 = """\
## E6 — implementation strategies

**Paper (specification order):** "if the specification of LUR requires
that both the upper and lower limits are constant, LUR is less costly
to apply if the upper limit is checked before the lower bound.  Our
experimentation showed that it is more likely for the upper limit to be
variable than the lower limit, thus discarding a non-application point
earlier."

**Paper (membership checking):** "Two straightforward ways of
implementing the checking are (1) to determine statements that are
members and then check for the desired dependence, and (2) to consider
the dependences of one statement and check the corresponding dependent
statements for membership.  We found that the cost of implementing the
optimizations using these approaches varies tremendously and is not
consistently better for one method over the other.  Using heuristics,
GENesis was changed to select the least expensive method on a case by
case basis.  In the tests performed, we found that the heuristic
correctly selected the best implementation."

**Here:** both reproduce.  In the suite's loops the lower bound is
almost always the literal `1` while the upper bound is a symbolic `n`,
so the upper-first variant discards candidates after one check (the
counts below).  For the membership methods, ICM (whose dependence
conditions have a bound endpoint, hence short adjacency lists) favours
method 2 while PAR/INX/CRC (both endpoints free) favour method 1 —
and the generation-time heuristic (`repro.genesis.strategy`) picks the
winner in every case.
"""


_ABLATION = """\
## Extra — ablation: skipping dependence recomputation

**Paper:** "The interface permits the user to decide if the data
dependence should be re-calculated between execution of each
optimization" (with staleness the user's responsibility).

**Here:** the classic CTP -> CFO -> DCE sequence runs under both
policies.  Two implementation details make the stale mode safe for
this self-disabling scalar sequence: dependence edges name statements
by stable identity (deleted statements' edges are filtered out), and
application points deduplicate by binding signature.  The result is a
multi-x speedup at zero missed applications and unchanged outputs on
the whole suite — the loop restructurers, whose preconditions consume
direction vectors that transformation invalidates, still default to
recomputation.
"""


def build_document(report: ExperimentReport) -> str:
    ablation = run_recompute_ablation()
    sections = [
        _HEADER,
        _E1,
        _code(report.quality.table()),
        _E2,
        _code(report.applicability.table()),
        _paper_vs_measured_e2(report),
        _E3,
        _code(report.enabling.table()),
        _paper_vs_measured_e3(report),
        _E4,
        _code(report.ordering.table()),
        _code(report.ordering.claims_table()),
        _E5,
        _code(report.costbenefit.table()),
        _E6,
        _code(report.lur_variants.table()),
        _code(report.membership.table()),
        _ABLATION,
        _code(ablation.table()),
        _summary(report),
    ]
    return "\n".join(sections)


def _code(text: str) -> str:
    return "```\n" + text + "\n```\n"


def _paper_vs_measured_e2(report: ExperimentReport) -> str:
    total_ctp = report.applicability.total("CTP")
    return (
        "| quantity | paper | here |\n"
        "|---|---|---|\n"
        f"| CTP application points (10 programs) | 97 | {total_ctp} |\n"
        f"| ICM application points | 0 | "
        f"{report.applicability.total('ICM')} |\n"
        f"| programs where CPP applies | 2 | "
        f"{len(report.applicability.programs_with_points('CPP'))} |\n"
        f"| programs where FUS applies | 1 | "
        f"{len(report.applicability.programs_with_points('FUS'))} |\n"
    )


def _paper_vs_measured_e3(report: ExperimentReport) -> str:
    ctp = report.enabling.results["CTP"]
    cpp = report.enabling.results["CPP"]
    return (
        "| quantity | paper | here |\n"
        "|---|---|---|\n"
        f"| CTP points enabling LUR | 41/97 | "
        f"{ctp.enabled_counts.get('LUR', 0)}/{ctp.total_points} |\n"
        f"| CTP points enabling DCE | 13/97 | "
        f"{ctp.enabled_counts.get('DCE', 0)}/{ctp.total_points} |\n"
        f"| CTP points enabling CFO | 5/97 | "
        f"{ctp.enabled_counts.get('CFO', 0)}/{ctp.total_points} |\n"
        f"| CPP points enabling anything | 0 | "
        f"{sum(cpp.enabled_counts.values())} |\n"
    )


def _summary(report: ExperimentReport) -> str:
    lines = [
        "## Summary — every Section 4 claim\n",
        "| claim | reproduced |",
        "|---|---|",
    ]
    for claim, ok in report.claim_summary.items():
        lines.append(f"| {claim} | {'yes' if ok else '**NO**'} |")
    lines.append("")
    verdict = (
        "All claims reproduce."
        if report.all_claims_hold()
        else "SOME CLAIMS FAILED — see above."
    )
    lines.append(verdict)
    lines.append("")
    return "\n".join(lines)


def write_experiments_md(path: str = "EXPERIMENTS.md") -> ExperimentReport:
    """Run everything and (re)write the record."""
    report = run_all_experiments()
    Path(path).write_text(build_document(report))
    return report


if __name__ == "__main__":
    target = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    outcome = write_experiments_md(target)
    status = "all claims hold" if outcome.all_claims_hold() else (
        "CLAIMS FAILED"
    )
    print(f"wrote {target}: {status}")
