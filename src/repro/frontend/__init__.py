"""Mini-Fortran frontend: lexer, parser and lowering to the quad IR."""

from repro.frontend.ast import SourceProgram
from repro.frontend.errors import FrontendError
from repro.frontend.lexer import TokKind, Token, tokenize
from repro.frontend.lower import lower_source, parse_program
from repro.frontend.parser import parse_source
from repro.frontend.unparse import UnparseError, unparse_program

__all__ = [
    "FrontendError",
    "SourceProgram",
    "TokKind",
    "Token",
    "lower_source",
    "parse_program",
    "parse_source",
    "tokenize",
    "unparse_program",
]
