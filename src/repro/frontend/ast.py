"""Abstract syntax tree for the mini-Fortran source language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class for expressions (marker)."""

    __slots__ = ()


@dataclass(frozen=True)
class Num(Expr):
    """A numeric literal."""

    value: Union[int, float]


@dataclass(frozen=True)
class Name(Expr):
    """A scalar variable reference."""

    ident: str


@dataclass(frozen=True)
class Index(Expr):
    """An array element reference ``ident(args...)``."""

    ident: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class Bin(Expr):
    """A binary operation; ``op`` is one of ``+ - * / **``."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Un(Expr):
    """Unary minus or plus."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class Call(Expr):
    """An intrinsic function call (sqrt, sin, cos, abs, exp, log, mod)."""

    func: str
    args: tuple[Expr, ...]


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
class Stmt:
    """Base class for statements (marker)."""

    __slots__ = ()


@dataclass
class Assign(Stmt):
    """``target = value`` where target is a Name or Index."""

    target: Expr
    value: Expr
    line: int = 0


@dataclass
class Do(Stmt):
    """``do var = start, stop [, step]`` ... ``end do``."""

    var: str
    start: Expr
    stop: Expr
    step: Optional[Expr]
    body: list[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class If(Stmt):
    """``if (left relop right) then`` ... [``else`` ...] ``end if``."""

    left: Expr
    relop: str
    right: Expr
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class Read(Stmt):
    """``read target`` for a scalar or array element."""

    target: Expr
    line: int = 0


@dataclass
class Write(Stmt):
    """``write expr``."""

    value: Expr
    line: int = 0


@dataclass
class Decl(Stmt):
    """A type declaration: ``integer i, n`` / ``real a(100), x``."""

    type_name: str  # "integer" | "real"
    names: list[tuple[str, tuple[int, ...]]] = field(default_factory=list)
    line: int = 0


@dataclass
class SourceProgram:
    """A parsed program: its name, declarations, and statement body."""

    name: str
    decls: list[Decl] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)

    def array_names(self) -> frozenset[str]:
        """Names declared with dimensions."""
        names = set()
        for decl in self.decls:
            for ident, dims in decl.names:
                if dims:
                    names.add(ident)
        return frozenset(names)

    def integer_names(self) -> frozenset[str]:
        """Scalar names declared integer (used for affine subscripts)."""
        names = set()
        for decl in self.decls:
            if decl.type_name == "integer":
                for ident, dims in decl.names:
                    if not dims:
                        names.add(ident)
        return frozenset(names)
