"""Diagnostics for the mini-Fortran frontend."""

from __future__ import annotations


class FrontendError(Exception):
    """A lexical, syntactic or semantic error in a source program.

    Carries the 1-based source line and column so workload authors can
    locate mistakes; ``str()`` renders ``line:col: message``.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.message = message
        self.line = line
        self.column = column
        super().__init__(self._render())

    def _render(self) -> str:
        if self.line:
            return f"{self.line}:{self.column}: {self.message}"
        return self.message
