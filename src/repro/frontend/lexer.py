"""Tokenizer for the mini-Fortran source language.

The workload programs are written in a FORTRAN-77-flavoured subset:
free-form, newline-terminated statements, ``!`` comments, C-style
relational operators plus FORTRAN's ``/=``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Union

from repro.frontend.errors import FrontendError


class TokKind(enum.Enum):
    """Lexical token classes."""

    IDENT = "ident"
    INT = "int"
    FLOAT = "float"
    KEYWORD = "keyword"
    OP = "op"
    NEWLINE = "newline"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "program",
        "integer",
        "real",
        "do",
        "enddo",
        "if",
        "then",
        "else",
        "endif",
        "end",
        "read",
        "write",
        "call",
        "parameter",
    }
)

#: Multi-character operators, longest first so maximal munch works.
MULTI_OPS = ("**", "<=", ">=", "==", "!=", "/=")
SINGLE_OPS = "+-*/(),=<>"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: TokKind
    text: str
    line: int
    column: int
    value: Union[int, float, None] = None

    def is_op(self, text: str) -> bool:
        return self.kind is TokKind.OP and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokKind.KEYWORD and self.text == text

    def __str__(self) -> str:
        return f"{self.kind.value}({self.text!r})"


def tokenize(source: str) -> list[Token]:
    """Tokenize a whole source program.

    Consecutive newlines collapse into one ``NEWLINE`` token; the
    stream always ends ``NEWLINE EOF`` so the parser can treat line
    ends uniformly.

    >>> [t.text for t in tokenize("x = 1")[:3]]
    ['x', '=', '1']
    """
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    line = 1
    column = 1
    position = 0
    length = len(source)
    pending_newline = False
    emitted_any = False

    def token(kind: TokKind, text: str, value=None) -> Token:
        return Token(kind, text, line, column, value)

    while position < length:
        char = source[position]
        if char == "!":
            while position < length and source[position] != "\n":
                position += 1
            continue
        if char == "\n":
            if emitted_any and not pending_newline:
                yield token(TokKind.NEWLINE, "\n")
                pending_newline = True
            position += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            position += 1
            column += 1
            continue

        pending_newline = False
        emitted_any = True

        if char.isdigit() or (
            char == "."
            and position + 1 < length
            and source[position + 1].isdigit()
        ):
            start = position
            start_column = column
            seen_dot = False
            seen_exp = False
            while position < length:
                current = source[position]
                if current.isdigit():
                    position += 1
                elif current == "." and not seen_dot and not seen_exp:
                    # do not swallow e.g. `1..` or `1.eq.`
                    seen_dot = True
                    position += 1
                elif current in "eEdD" and not seen_exp and position > start:
                    follower = source[position + 1 : position + 2]
                    if follower.isdigit() or follower in "+-":
                        seen_exp = True
                        position += 1
                        if source[position : position + 1] in "+-":
                            position += 1
                    else:
                        break
                else:
                    break
            text = source[start:position]
            column = start_column + len(text)
            normalized = text.lower().replace("d", "e")
            if seen_dot or seen_exp:
                yield Token(
                    TokKind.FLOAT, text, line, start_column, float(normalized)
                )
            else:
                yield Token(TokKind.INT, text, line, start_column, int(text))
            continue

        if char.isalpha() or char == "_":
            start = position
            start_column = column
            while position < length and (
                source[position].isalnum() or source[position] in "_$"
            ):
                position += 1
            text = source[start:position]
            column = start_column + len(text)
            lowered = text.lower()
            if lowered in KEYWORDS:
                yield Token(TokKind.KEYWORD, lowered, line, start_column)
            else:
                yield Token(TokKind.IDENT, lowered, line, start_column)
            continue

        matched = None
        for op in MULTI_OPS:
            if source.startswith(op, position):
                matched = op
                break
        if matched is not None:
            yield Token(TokKind.OP, "!=" if matched == "/=" else matched,
                        line, column)
            position += len(matched)
            column += len(matched)
            continue

        if char in SINGLE_OPS:
            yield Token(TokKind.OP, char, line, column)
            position += 1
            column += 1
            continue

        raise FrontendError(f"unexpected character {char!r}", line, column)

    if emitted_any and not pending_newline:
        yield Token(TokKind.NEWLINE, "\n", line, column)
    yield Token(TokKind.EOF, "", line, column)
