"""Lowering from the mini-Fortran AST to the quad IR.

The lowering is deliberately *naive*: no constant folding, no common
subexpression elimination, no strength reduction.  Whatever redundancy
the source contains survives into the IR — that is what gives the
optimizers their application points, exactly as a simple 1991 front end
would.

Array subscripts are kept in affine form (:class:`repro.ir.types.Affine`)
whenever the subscript expression is a linear combination of integer
scalars with literal integer coefficients; otherwise the subscript is
computed into a temporary and treated opaquely by dependence analysis.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.frontend.ast import (
    Assign,
    Bin,
    Call,
    Do,
    Expr,
    If,
    Index,
    Name,
    Num,
    Read,
    SourceProgram,
    Stmt,
    Un,
    Write,
)
from repro.frontend.errors import FrontendError
from repro.frontend.parser import parse_source
from repro.ir.program import Program
from repro.ir.quad import Opcode, Quad
from repro.ir.types import Affine, ArrayRef, Const, Operand, Var

_BINOPS = {"+": Opcode.ADD, "-": Opcode.SUB, "*": Opcode.MUL,
           "/": Opcode.DIV, "**": Opcode.POW}
_UNARY_CALLS = {"sqrt": Opcode.SQRT, "sin": Opcode.SIN, "cos": Opcode.COS,
                "abs": Opcode.ABS, "exp": Opcode.EXP, "log": Opcode.LOG,
                "neg": Opcode.NEG}


class Lowerer:
    """Lowers one source program to a :class:`Program` of quads."""

    def __init__(self, source_program: SourceProgram):
        self.source = source_program
        self.program = Program(name=source_program.name)
        self.arrays = source_program.array_names()
        self.int_vars = set(source_program.integer_names())
        self._temp_counter = 0
        self._active_lcvs: list[str] = []

    # ------------------------------------------------------------------
    def lower(self) -> Program:
        self._collect_loop_vars(self.source.body)
        for stmt in self.source.body:
            self.lower_stmt(stmt)
        self.program.check_structure()
        return self.program

    def _collect_loop_vars(self, body: list[Stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, Do):
                self.int_vars.add(stmt.var)
                self._collect_loop_vars(stmt.body)
            elif isinstance(stmt, If):
                self._collect_loop_vars(stmt.then_body)
                self._collect_loop_vars(stmt.else_body)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def lower_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            self.lower_assign(stmt)
        elif isinstance(stmt, Do):
            self.lower_do(stmt)
        elif isinstance(stmt, If):
            self.lower_if(stmt)
        elif isinstance(stmt, Read):
            target = self.lower_target(stmt.target)
            self.emit(Quad(Opcode.READ, a=target, source_line=stmt.line))
        elif isinstance(stmt, Write):
            value = self.lower_expr(stmt.value)
            self.emit(Quad(Opcode.WRITE, a=value, source_line=stmt.line))
        else:
            raise FrontendError(f"cannot lower {type(stmt).__name__}")

    def lower_assign(self, stmt: Assign) -> None:
        if (
            isinstance(stmt.target, Name)
            and stmt.target.ident in self._active_lcvs
        ):
            raise FrontendError(
                f"FORTRAN DO semantics: the control variable "
                f"{stmt.target.ident!r} may not be assigned in its loop "
                "body",
                stmt.line,
            )
        target = self.lower_target(stmt.target)
        value = stmt.value
        # Fold the outermost operation directly into the target when the
        # expression shape allows it; inner subexpressions get temps.
        if isinstance(value, Bin) and value.op in _BINOPS:
            left = self.lower_expr(value.left)
            right = self.lower_expr(value.right)
            self.emit(
                Quad(_BINOPS[value.op], result=target, a=left, b=right,
                     source_line=stmt.line)
            )
            return
        if isinstance(value, Call):
            self.lower_call_into(target, value, stmt.line)
            return
        if isinstance(value, Un) and value.op == "-":
            operand = self.lower_expr(value.operand)
            if isinstance(operand, Const):
                self.emit(
                    Quad(Opcode.ASSIGN, result=target,
                         a=Const(-operand.value), source_line=stmt.line)
                )
                return
            self.emit(
                Quad(Opcode.NEG, result=target, a=operand,
                     source_line=stmt.line)
            )
            return
        operand = self.lower_expr(value)
        self.emit(
            Quad(Opcode.ASSIGN, result=target, a=operand,
                 source_line=stmt.line)
        )

    def lower_do(self, stmt: Do) -> None:
        if stmt.var in self._active_lcvs:
            raise FrontendError(
                f"loop variable {stmt.var!r} is already controlling an "
                "enclosing loop",
                stmt.line,
            )
        init = self.lower_expr(stmt.start)
        final = self.lower_expr(stmt.stop)
        step = self.lower_expr(stmt.step) if stmt.step is not None else Const(1)
        self.emit(
            Quad(Opcode.DO, result=Var(stmt.var), a=init, b=final, step=step,
                 source_line=stmt.line)
        )
        self._active_lcvs.append(stmt.var)
        for inner in stmt.body:
            self.lower_stmt(inner)
        self._active_lcvs.pop()
        self.emit(Quad(Opcode.ENDDO, source_line=stmt.line))

    def lower_if(self, stmt: If) -> None:
        left = self.lower_expr(stmt.left)
        right = self.lower_expr(stmt.right)
        self.emit(
            Quad(Opcode.IF, a=left, b=right, relop=stmt.relop,
                 source_line=stmt.line)
        )
        for inner in stmt.then_body:
            self.lower_stmt(inner)
        if stmt.else_body:
            self.emit(Quad(Opcode.ELSE, source_line=stmt.line))
            for inner in stmt.else_body:
                self.lower_stmt(inner)
        self.emit(Quad(Opcode.ENDIF, source_line=stmt.line))

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def lower_expr(self, expr: Expr) -> Operand:
        """Lower an expression, emitting temps for interior nodes."""
        if isinstance(expr, Num):
            return Const(expr.value)
        if isinstance(expr, Name):
            return Var(expr.ident)
        if isinstance(expr, Index):
            return self.lower_index(expr)
        if isinstance(expr, Un):
            if expr.op == "+":
                return self.lower_expr(expr.operand)
            operand = self.lower_expr(expr.operand)
            if isinstance(operand, Const):
                return Const(-operand.value)
            temp = self.fresh_temp()
            self.emit(Quad(Opcode.NEG, result=temp, a=operand))
            return temp
        if isinstance(expr, Bin):
            left = self.lower_expr(expr.left)
            right = self.lower_expr(expr.right)
            temp = self.fresh_temp()
            self.emit(Quad(_BINOPS[expr.op], result=temp, a=left, b=right))
            return temp
        if isinstance(expr, Call):
            temp = self.fresh_temp()
            self.lower_call_into(temp, expr, line=None)
            return temp
        raise FrontendError(f"cannot lower expression {type(expr).__name__}")

    def lower_call_into(
        self, target: Operand, call: Call, line: Optional[int]
    ) -> None:
        if call.func == "mod":
            if len(call.args) != 2:
                raise FrontendError("mod() takes two arguments")
            left = self.lower_expr(call.args[0])
            right = self.lower_expr(call.args[1])
            self.emit(
                Quad(Opcode.MOD, result=target, a=left, b=right,
                     source_line=line)
            )
            return
        opcode = _UNARY_CALLS.get(call.func)
        if opcode is None:
            raise FrontendError(f"unknown intrinsic {call.func!r}")
        if len(call.args) != 1:
            raise FrontendError(f"{call.func}() takes one argument")
        operand = self.lower_expr(call.args[0])
        self.emit(Quad(opcode, result=target, a=operand, source_line=line))

    def lower_target(self, expr: Expr) -> Operand:
        if isinstance(expr, Name):
            return Var(expr.ident)
        if isinstance(expr, Index):
            return self.lower_index(expr)
        raise FrontendError("assignment target must be a variable or element")

    def lower_index(self, expr: Index) -> ArrayRef:
        if expr.ident not in self.arrays:
            raise FrontendError(
                f"{expr.ident!r} used with subscripts but not declared as "
                "an array"
            )
        subscripts: list[Union[Affine, Var]] = []
        for arg in expr.args:
            affine = self.try_affine(arg)
            if affine is not None:
                subscripts.append(affine)
            else:
                operand = self.lower_expr(arg)
                if isinstance(operand, Var):
                    subscripts.append(operand)
                elif isinstance(operand, Const):
                    subscripts.append(Affine.constant(int(operand.value)))
                else:
                    temp = self.fresh_temp()
                    self.emit(Quad(Opcode.ASSIGN, result=temp, a=operand))
                    subscripts.append(temp)
        return ArrayRef(expr.ident, tuple(subscripts))

    def try_affine(self, expr: Expr) -> Optional[Affine]:
        """Extract an affine form, or None when the expression is not
        a literal-coefficient linear combination of integer scalars."""
        if isinstance(expr, Num):
            if isinstance(expr.value, int):
                return Affine.constant(expr.value)
            return None
        if isinstance(expr, Name):
            if expr.ident in self.int_vars:
                return Affine.var(expr.ident)
            return None
        if isinstance(expr, Un):
            inner = self.try_affine(expr.operand)
            if inner is None:
                return None
            return inner if expr.op == "+" else -inner
        if isinstance(expr, Bin):
            left = self.try_affine(expr.left)
            right = self.try_affine(expr.right)
            if expr.op == "+" and left is not None and right is not None:
                return left + right
            if expr.op == "-" and left is not None and right is not None:
                return left - right
            if expr.op == "*":
                if left is not None and left.is_constant() and right is not None:
                    return right.scale(left.const)
                if right is not None and right.is_constant() and left is not None:
                    return left.scale(right.const)
            return None
        return None

    # ------------------------------------------------------------------
    def emit(self, quad: Quad) -> Quad:
        return self.program.append(quad)

    def fresh_temp(self) -> Var:
        temp = Var(f"t${self._temp_counter}")
        self._temp_counter += 1
        return temp


def lower_source(source_program: SourceProgram) -> Program:
    """Lower a parsed program to quads."""
    return Lowerer(source_program).lower()


def parse_program(source: str) -> Program:
    """Parse and lower mini-Fortran source text to the quad IR.

    This is the main public entry point of the frontend::

        program = parse_program('''
            program demo
              integer i, n
              real a(100)
              n = 10
              do i = 1, n
                a(i) = a(i) + 1.0
              end do
            end
        ''')
    """
    return lower_source(parse_source(source))
