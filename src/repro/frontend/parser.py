"""Recursive-descent parser for the mini-Fortran source language.

Grammar (statements are newline-terminated)::

    program   := "program" IDENT NL decl* stmt* "end" NL?
    decl      := ("integer" | "real") declitem ("," declitem)* NL
    declitem  := IDENT [ "(" INT ("," INT)* ")" ]
    stmt      := assign | do | if | read | write
    assign    := target "=" expr NL
    do        := "do" IDENT "=" expr "," expr ["," expr] NL stmt*
                 ("end" "do" | "enddo") NL
    if        := "if" "(" expr relop expr ")" "then" NL stmt*
                 ["else" NL stmt*] ("end" "if" | "endif") NL
    read      := "read" target NL
    write     := "write" expr NL
    target    := IDENT [ "(" expr ("," expr)* ")" ]
    expr      := term (("+"|"-") term)*
    term      := factor (("*"|"/") factor)*
    factor    := primary ["**" factor]          (right associative)
    primary   := NUM | ("-"|"+") primary | "(" expr ")"
               | IDENT [ "(" expr ("," expr)* ")" ]   (array ref or call)
"""

from __future__ import annotations

from typing import Optional

from repro.frontend.ast import (
    Assign,
    Bin,
    Call,
    Decl,
    Do,
    Expr,
    If,
    Index,
    Name,
    Num,
    Read,
    SourceProgram,
    Stmt,
    Un,
    Write,
)
from repro.frontend.errors import FrontendError
from repro.frontend.lexer import TokKind, Token, tokenize

#: Intrinsic function names recognized as calls rather than array refs.
INTRINSICS = frozenset({"sqrt", "sin", "cos", "abs", "exp", "log", "mod",
                        "neg"})

RELOPS = ("<=", ">=", "==", "!=", "<", ">")


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.position = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokKind.EOF:
            self.position += 1
        return token

    def expect_op(self, text: str) -> Token:
        if not self.current.is_op(text):
            self._fail(f"expected {text!r}, found {self.current}")
        return self.advance()

    def expect_keyword(self, text: str) -> Token:
        if not self.current.is_keyword(text):
            self._fail(f"expected {text!r}, found {self.current}")
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind is not TokKind.IDENT:
            self._fail(f"expected identifier, found {self.current}")
        return self.advance()

    def expect_newline(self) -> None:
        if self.current.kind is TokKind.EOF:
            return
        if self.current.kind is not TokKind.NEWLINE:
            self._fail(f"expected end of statement, found {self.current}")
        self.advance()

    def skip_newlines(self) -> None:
        while self.current.kind is TokKind.NEWLINE:
            self.advance()

    def _fail(self, message: str) -> None:
        raise FrontendError(message, self.current.line, self.current.column)

    # ------------------------------------------------------------------
    # program structure
    # ------------------------------------------------------------------
    def parse_program(self) -> SourceProgram:
        self.skip_newlines()
        self.expect_keyword("program")
        name = self.expect_ident().text
        self.expect_newline()
        self.skip_newlines()

        decls: list[Decl] = []
        while self.current.kind is TokKind.KEYWORD and self.current.text in (
            "integer",
            "real",
        ):
            decls.append(self.parse_decl())
            self.skip_newlines()

        body = self.parse_statements(terminators=("end",))
        self.expect_keyword("end")
        self.skip_newlines()
        if self.current.kind is not TokKind.EOF:
            self._fail(f"text after 'end': {self.current}")
        return SourceProgram(name=name, decls=decls, body=body)

    def parse_decl(self) -> Decl:
        line = self.current.line
        type_name = self.advance().text
        names: list[tuple[str, tuple[int, ...]]] = []
        while True:
            ident = self.expect_ident().text
            dims: tuple[int, ...] = ()
            if self.current.is_op("("):
                self.advance()
                sizes = []
                while True:
                    if self.current.kind is not TokKind.INT:
                        self._fail("array dimensions must be integer literals")
                    sizes.append(int(self.advance().value))
                    if self.current.is_op(","):
                        self.advance()
                        continue
                    break
                self.expect_op(")")
                dims = tuple(sizes)
            names.append((ident, dims))
            if self.current.is_op(","):
                self.advance()
                continue
            break
        self.expect_newline()
        return Decl(type_name=type_name, names=names, line=line)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def parse_statements(self, terminators: tuple[str, ...]) -> list[Stmt]:
        body: list[Stmt] = []
        while True:
            self.skip_newlines()
            token = self.current
            if token.kind is TokKind.EOF:
                self._fail("unexpected end of file")
            if token.kind is TokKind.KEYWORD and token.text in terminators:
                return body
            if token.kind is TokKind.KEYWORD and token.text in (
                "enddo",
                "endif",
                "else",
            ):
                if token.text in terminators:
                    return body
                self._fail(f"unexpected {token.text!r}")
            body.append(self.parse_statement())

    def parse_statement(self) -> Stmt:
        token = self.current
        if token.kind is TokKind.KEYWORD:
            if token.text == "do":
                return self.parse_do()
            if token.text == "if":
                return self.parse_if()
            if token.text == "read":
                return self.parse_read()
            if token.text == "write":
                return self.parse_write()
            self._fail(f"unexpected keyword {token.text!r}")
        if token.kind is TokKind.IDENT:
            return self.parse_assign()
        self._fail(f"unexpected token {token}")
        raise AssertionError("unreachable")

    def parse_assign(self) -> Assign:
        line = self.current.line
        target = self.parse_target()
        self.expect_op("=")
        value = self.parse_expr()
        self.expect_newline()
        return Assign(target=target, value=value, line=line)

    def parse_target(self) -> Expr:
        ident = self.expect_ident().text
        if self.current.is_op("("):
            self.advance()
            args = [self.parse_expr()]
            while self.current.is_op(","):
                self.advance()
                args.append(self.parse_expr())
            self.expect_op(")")
            return Index(ident=ident, args=tuple(args))
        return Name(ident=ident)

    def parse_do(self) -> Do:
        line = self.current.line
        self.expect_keyword("do")
        var = self.expect_ident().text
        self.expect_op("=")
        start = self.parse_expr()
        self.expect_op(",")
        stop = self.parse_expr()
        step: Optional[Expr] = None
        if self.current.is_op(","):
            self.advance()
            step = self.parse_expr()
        self.expect_newline()
        body = self.parse_statements(terminators=("end", "enddo"))
        if self.current.is_keyword("enddo"):
            self.advance()
        else:
            self.expect_keyword("end")
            self.expect_keyword("do")
        self.expect_newline()
        return Do(var=var, start=start, stop=stop, step=step, body=body,
                  line=line)

    def parse_if(self) -> If:
        line = self.current.line
        self.expect_keyword("if")
        self.expect_op("(")
        left = self.parse_expr()
        relop = None
        for candidate in RELOPS:
            if self.current.is_op(candidate):
                relop = candidate
                self.advance()
                break
        if relop is None:
            self._fail(f"expected relational operator, found {self.current}")
        right = self.parse_expr()
        self.expect_op(")")
        self.expect_keyword("then")
        self.expect_newline()
        then_body = self.parse_statements(
            terminators=("end", "endif", "else")
        )
        else_body: list[Stmt] = []
        if self.current.is_keyword("else"):
            self.advance()
            self.expect_newline()
            else_body = self.parse_statements(terminators=("end", "endif"))
        if self.current.is_keyword("endif"):
            self.advance()
        else:
            self.expect_keyword("end")
            self.expect_keyword("if")
        self.expect_newline()
        return If(left=left, relop=relop, right=right, then_body=then_body,
                  else_body=else_body, line=line)

    def parse_read(self) -> Read:
        line = self.current.line
        self.expect_keyword("read")
        target = self.parse_target()
        self.expect_newline()
        return Read(target=target, line=line)

    def parse_write(self) -> Write:
        line = self.current.line
        self.expect_keyword("write")
        value = self.parse_expr()
        self.expect_newline()
        return Write(value=value, line=line)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def parse_expr(self) -> Expr:
        left = self.parse_term()
        while self.current.is_op("+") or self.current.is_op("-"):
            op = self.advance().text
            right = self.parse_term()
            left = Bin(op=op, left=left, right=right)
        return left

    def parse_term(self) -> Expr:
        left = self.parse_factor()
        while self.current.is_op("*") or self.current.is_op("/"):
            op = self.advance().text
            right = self.parse_factor()
            left = Bin(op=op, left=left, right=right)
        return left

    def parse_factor(self) -> Expr:
        base = self.parse_primary()
        if self.current.is_op("**"):
            self.advance()
            exponent = self.parse_factor()  # right associative
            return Bin(op="**", left=base, right=exponent)
        return base

    def parse_primary(self) -> Expr:
        token = self.current
        if token.kind in (TokKind.INT, TokKind.FLOAT):
            self.advance()
            return Num(value=token.value)
        if token.is_op("-") or token.is_op("+"):
            self.advance()
            return Un(op=token.text, operand=self.parse_primary())
        if token.is_op("("):
            self.advance()
            inner = self.parse_expr()
            self.expect_op(")")
            return inner
        if token.kind is TokKind.IDENT:
            ident = self.advance().text
            if self.current.is_op("("):
                self.advance()
                args = [self.parse_expr()]
                while self.current.is_op(","):
                    self.advance()
                    args.append(self.parse_expr())
                self.expect_op(")")
                if ident in INTRINSICS:
                    return Call(func=ident, args=tuple(args))
                return Index(ident=ident, args=tuple(args))
            return Name(ident=ident)
        self._fail(f"unexpected token {token} in expression")
        raise AssertionError("unreachable")


def parse_source(source: str) -> SourceProgram:
    """Parse a mini-Fortran program into its AST."""
    return Parser(source).parse_program()
