"""Unparsing: quad IR back to mini-Fortran source.

The inverse of :mod:`repro.frontend.lower`, used to save optimized
programs in compilable form.  The IR is already three-address, so every
computing quad becomes one assignment statement; declarations are
reconstructed from the names in use.  ``DOALL`` loops have no surface
syntax — they unparse as ``do`` with a ``! parallel`` comment, keeping
the text reparsable (and the round-trip behaviour-preserving, since the
reference interpreter runs DOALL sequentially anyway).

Round-trip guarantee (property-tested): ``parse_program(
unparse_program(p))`` produces the same observable behaviour as ``p``.
"""

from __future__ import annotations

from repro.ir.program import Program
from repro.ir.quad import BINARY_OPS, LOOP_HEADS, Opcode, Quad, UNARY_OPS
from repro.ir.types import Affine, ArrayRef, Const, Operand, Var

_BINOP_TEXT = {
    Opcode.ADD: "+",
    Opcode.SUB: "-",
    Opcode.MUL: "*",
    Opcode.DIV: "/",
    Opcode.POW: "**",
}

_UNARY_TEXT = {
    Opcode.NEG: "neg",
    Opcode.ABS: "abs",
    Opcode.SQRT: "sqrt",
    Opcode.SIN: "sin",
    Opcode.COS: "cos",
    Opcode.EXP: "exp",
    Opcode.LOG: "log",
}


class UnparseError(Exception):
    """Raised for IR that has no source form (should not occur for
    well-formed programs)."""


def unparse_program(program: Program, name: str = "optimized") -> str:
    """Render a program as mini-Fortran source text."""
    body_lines: list[str] = []
    indent = 1
    for quad in program:
        op = quad.opcode
        if op in (Opcode.ENDDO,):
            indent -= 1
            body_lines.append("  " * indent + "end do")
            continue
        if op is Opcode.ENDIF:
            indent -= 1
            body_lines.append("  " * indent + "end if")
            continue
        if op is Opcode.ELSE:
            body_lines.append("  " * (indent - 1) + "else")
            continue
        body_lines.append("  " * indent + _statement_text(quad))
        if op in LOOP_HEADS or op is Opcode.IF:
            indent += 1

    declarations = _declarations(program)
    lines = [f"program {name}"]
    lines.extend("  " + decl for decl in declarations)
    lines.extend(body_lines)
    lines.append("end")
    return "\n".join(lines) + "\n"


def _statement_text(quad: Quad) -> str:
    op = quad.opcode
    if op is Opcode.ASSIGN:
        return f"{_operand(quad.result)} = {_operand(quad.a)}"
    if op in BINARY_OPS:
        if op is Opcode.MOD:
            return (
                f"{_operand(quad.result)} = "
                f"mod({_operand(quad.a)}, {_operand(quad.b)})"
            )
        return (
            f"{_operand(quad.result)} = "
            f"{_operand(quad.a)} {_BINOP_TEXT[op]} {_operand(quad.b)}"
        )
    if op in UNARY_OPS:
        if op is Opcode.NEG:
            return f"{_operand(quad.result)} = -({_operand(quad.a)})"
        return (
            f"{_operand(quad.result)} = "
            f"{_UNARY_TEXT[op]}({_operand(quad.a)})"
        )
    if op in LOOP_HEADS:
        text = (
            f"do {_operand(quad.result)} = "
            f"{_operand(quad.a)}, {_operand(quad.b)}"
        )
        if quad.step != Const(1):
            text += f", {_operand(quad.step)}"
        if op is Opcode.DOALL:
            text += "  ! parallel"
        return text
    if op is Opcode.IF:
        relop = "/=" if quad.relop == "!=" else quad.relop
        return f"if ({_operand(quad.a)} {relop} {_operand(quad.b)}) then"
    if op is Opcode.READ:
        return f"read {_operand(quad.a)}"
    if op is Opcode.WRITE:
        return f"write {_operand(quad.a)}"
    if op is Opcode.NOP:
        return "x$nop = x$nop"  # benign placeholder; NOPs are transient
    raise UnparseError(f"no source form for {quad}")


def _operand(operand: Operand | None) -> str:
    if operand is None:
        raise UnparseError("missing operand")
    if isinstance(operand, Const):
        value = operand.value
        if isinstance(value, float):
            text = repr(value)
            return text if ("." in text or "e" in text) else text + ".0"
        if value < 0:
            return f"({value})"
        return str(value)
    if isinstance(operand, Var):
        return operand.name
    if isinstance(operand, ArrayRef):
        subscripts = ", ".join(
            _subscript(sub) for sub in operand.subscripts
        )
        return f"{operand.name}({subscripts})"
    raise UnparseError(f"cannot unparse operand {operand!r}")


def _subscript(sub: Affine | Var) -> str:
    if isinstance(sub, Var):
        return sub.name
    parts: list[str] = []
    for var, coeff in sub.terms:
        if coeff == 1:
            parts.append(f"+ {var}")
        elif coeff == -1:
            parts.append(f"- {var}")
        elif coeff < 0:
            parts.append(f"- {-coeff} * {var}")
        else:
            parts.append(f"+ {coeff} * {var}")
    if sub.const or not parts:
        sign = "+" if sub.const >= 0 else "-"
        parts.append(f"{sign} {abs(sub.const)}")
    text = " ".join(parts)
    if text.startswith("+ "):
        text = text[2:]
    elif text.startswith("- "):
        text = "-" + text[2:]
    return text


def _declarations(program: Program) -> list[str]:
    """Reconstruct declarations from the names the program touches."""
    integers: set[str] = set()
    reals: set[str] = set()
    arrays: dict[str, int] = {}

    for quad in program:
        if quad.opcode in LOOP_HEADS and isinstance(quad.result, Var):
            integers.add(quad.result.name)
        for operand in (quad.result, quad.a, quad.b, quad.step):
            if isinstance(operand, ArrayRef):
                arrays[operand.name] = max(
                    arrays.get(operand.name, 0), len(operand.subscripts)
                )
                for sub in operand.subscripts:
                    if isinstance(sub, Var):
                        reals.add(sub.name)
                    else:
                        integers.update(sub.variables)
            elif isinstance(operand, Var):
                reals.add(operand.name)

    # subscript variables must be integers for affine analysis to
    # survive the round trip
    reals -= integers
    reals -= set(arrays)

    lines: list[str] = []
    if integers:
        lines.append("integer " + ", ".join(sorted(integers)))
    declared_arrays = [
        f"{name}({', '.join(['64'] * rank)})"
        for name, rank in sorted(arrays.items())
    ]
    real_names = sorted(reals) + declared_arrays
    if real_names:
        lines.append("real " + ", ".join(real_names))
    return lines
