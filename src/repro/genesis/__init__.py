"""GENesis: the optimizer generator (generator, library, constructor)."""

from repro.genesis.codegen import CodegenError, GeneratedSource, generate_source
from repro.genesis.constructor import (
    ConstructorError,
    construct_package,
    load_package,
)
from repro.genesis.cost import ApplicationRecord, CostCounters
from repro.genesis.driver import (
    DriverOptions,
    DriverResult,
    apply_at_point,
    find_application_points,
    make_context,
    run_optimizer,
)
from repro.genesis.generator import (
    GeneratedOptimizer,
    generate_from_spec,
    generate_optimizer,
)
from repro.genesis.library import (
    GenesisRuntimeError,
    MatchContext,
    PosBinding,
    dep,
)
from repro.genesis.strategy import ClauseStrategy, StrategyPolicy, choose_strategy

__all__ = [
    "ApplicationRecord",
    "ClauseStrategy",
    "CodegenError",
    "ConstructorError",
    "CostCounters",
    "DriverOptions",
    "DriverResult",
    "GeneratedOptimizer",
    "GeneratedSource",
    "GenesisRuntimeError",
    "MatchContext",
    "PosBinding",
    "StrategyPolicy",
    "apply_at_point",
    "choose_strategy",
    "construct_package",
    "dep",
    "find_application_points",
    "generate_from_spec",
    "generate_optimizer",
    "generate_source",
    "load_package",
    "make_context",
    "run_optimizer",
]
