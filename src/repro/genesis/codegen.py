"""Generation of optimizer code from analyzed GOSpeL specifications.

For an optimization ``xxx`` GENesis generates four procedures — exactly
the structure of the paper's Figure 6:

* ``set_up_xxx`` — initializes the stlp entries for the TYPE variables;
* ``match_xxx`` — a generator yielding once per Code_Pattern binding;
* ``pre_xxx``   — a generator yielding once per complete Depend
  binding (backtracking across clauses);
* ``act_xxx``   — executes the ACTION primitives against the bindings.

plus the *call interface* (``set_up_OPT``/``match_OPT``/``pre_OPT``/
``act_OPT``) that the standard driver invokes.  The emitted text is
real Python source: it is stored on the optimizer object, can be
written to disk, inspected, and is ``exec``-ed to obtain the callables.

Each Depend clause is compiled according to its
:class:`~repro.genesis.strategy.ClauseStrategy` — members-first
(method 1) or dependence-first (method 2) — which is where experiment
E6's cost differences come from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.gospel.ast import (
    Action,
    AddAction,
    Arith,
    BoolOp,
    Compare,
    Cond,
    CopyAction,
    DeleteAction,
    DepCond,
    DependClause,
    ElemType,
    ForallAction,
    FuncVal,
    MemCond,
    ModifyAction,
    MoveAction,
    NewTemp,
    NotOp,
    NumberLit,
    PathSet,
    PatternClause,
    Quant,
    RangeSet,
    Ref,
    RegionSet,
    SetExpr,
    SetOp,
    SetRef,
    SymbolLit,
    UsesSet,
    Value,
)
from repro.gospel.sema import AnalyzedSpec, ClausePlan
from repro.genesis.strategy import (
    ClauseStrategy,
    StrategyPolicy,
    choose_strategy,
)


class CodegenError(Exception):
    """Raised when a specification cannot be compiled."""


#: statement/loop attributes assignable by ``modify``
_MODIFIABLE_ATTRS = frozenset(
    {"opc", "opr_1", "opr_2", "opr_3", "init", "final", "step", "lcv"}
)

#: pattern enumeration routine per pair type
_PAIR_FINDERS = {
    ElemType.NESTED_LOOPS: "nested_loop_pairs",
    ElemType.TIGHT_LOOPS: "tight_loop_pairs",
    ElemType.ADJACENT_LOOPS: "adjacent_loop_pairs",
}

#: ``.opc == <symbol>`` conjuncts narrow a seed scan to one shape bucket
_SHAPE_BY_OPC = {
    "assign": "assign",
    "add": "binop", "sub": "binop", "mul": "binop", "div": "binop",
    "mod": "binop", "pow": "binop",
    "neg": "unop", "abs": "unop", "sqrt": "unop", "sin": "unop",
    "cos": "unop", "exp": "unop", "log": "unop",
    "do": "loop_head", "doall": "loop_head",
    "read": "io", "write": "io",
}

#: ``class(S) == <symbol>`` conjuncts map to shape-bucket sets
_SHAPE_BY_CLASS = {
    "assign": ("assign",),
    "binop": ("binop",),
    "unop": ("unop",),
    "compute": ("assign", "binop", "unop"),
    "loop_head": ("loop_head",),
    "if_stmt": ("if_stmt",),
    "io": ("io",),
    "marker": ("marker",),
}


def _conjuncts(cond: Cond) -> list[Cond]:
    """Flatten nested top-level ANDs into their conjunct list."""
    if isinstance(cond, BoolOp) and cond.op == "and":
        terms: list[Cond] = []
        for term in cond.terms:
            terms.extend(_conjuncts(term))
        return terms
    return [cond]


def bare_symbol(types: dict[str, ElemType], value: Value) -> Optional[str]:
    """The symbolic-constant name of a value, when it is one."""
    if isinstance(value, SymbolLit):
        return value.name
    if isinstance(value, Ref) and not value.attrs and (
        value.base not in types
    ):
        return value.base
    return None


def shape_hint(
    types: dict[str, ElemType],
    format_cond: Optional[Cond],
    var: str,
) -> Optional[tuple[str, ...]]:
    """Shape buckets covering every candidate for ``var``, or None.

    Only top-level AND conjuncts of the clause format are consulted,
    and only equality comparisons against symbolic constants — anything
    else widens the hint (drops it) rather than narrowing it, so the
    hint is always a superset filter.  Shared between the per-spec
    matcher emission and the catalog-level discrimination network
    (:mod:`repro.genesis.network`), which must bucket candidates by
    exactly the same classification.
    """
    if format_cond is None:
        return None
    classes: Optional[set[str]] = None
    rhs_kind: Optional[str] = None
    for term in _conjuncts(format_cond):
        if not isinstance(term, Compare) or term.relop != "==":
            continue
        for target, other in (
            (term.left, term.right), (term.right, term.left)
        ):
            symbol = bare_symbol(types, other)
            if symbol is None:
                continue
            if (
                isinstance(target, Ref)
                and target.base == var
                and target.attrs == ("opc",)
            ):
                token = _SHAPE_BY_OPC.get(symbol)
                if token is not None:
                    classes = _intersect(classes, {token})
            elif (
                isinstance(target, FuncVal)
                and target.func == "class"
                and len(target.args) == 1
                and isinstance(target.args[0], Ref)
                and target.args[0].base == var
                and not target.args[0].attrs
            ):
                tokens = _SHAPE_BY_CLASS.get(symbol)
                if tokens is not None:
                    classes = _intersect(classes, set(tokens))
            elif (
                isinstance(target, FuncVal)
                and target.func == "type"
                and len(target.args) == 1
                and isinstance(target.args[0], Ref)
                and target.args[0].base == var
                and target.args[0].attrs == ("opr_2",)
                and symbol in ("const", "var", "array")
            ):
                rhs_kind = symbol
    if classes is None:
        return None
    if rhs_kind is not None and classes == {"assign"}:
        return (f"assign:{rhs_kind}",)
    return tuple(sorted(classes))


def _intersect(
    current: Optional[set[str]], new: set[str]
) -> set[str]:
    return set(new) if current is None else current & new


class Emitter:
    """Accumulates indented source lines."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 0

    def emit(self, line: str = "") -> None:
        if line:
            self.lines.append("    " * self.indent + line)
        else:
            self.lines.append("")

    def block(self) -> "_Block":
        return _Block(self)

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


class _Block:
    def __init__(self, emitter: Emitter):
        self.emitter = emitter

    def __enter__(self) -> None:
        self.emitter.indent += 1

    def __exit__(self, *_exc: object) -> None:
        self.emitter.indent -= 1


@dataclass
class GeneratedSource:
    """The emitted module text plus generation metadata."""

    name: str
    source: str
    strategies: list[ClauseStrategy] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)


class CodeGenerator:
    """Compiles one analyzed specification to Python source."""

    def __init__(
        self,
        analyzed: AnalyzedSpec,
        policy: StrategyPolicy = StrategyPolicy.HEURISTIC,
    ):
        self.analyzed = analyzed
        self.spec = analyzed.spec
        self.types = analyzed.types
        self.policy = policy
        self.name = _sanitize(self.spec.name)
        self.emitter = Emitter()
        self.strategies: list[ClauseStrategy] = []
        self.warnings: list[str] = list(analyzed.warnings)
        self._scan_counter = 0
        self._pos_vars: set[str] = set()
        self._dynamic_names: set[str] = set()
        self._current_anchor: Optional[str] = None
        for plan in analyzed.depend_plans:
            self._pos_vars.update(plan.new_pos_vars)

    # ------------------------------------------------------------------
    def generate(self) -> GeneratedSource:
        e = self.emitter
        e.emit(f'"""Code generated by GENesis for optimization '
               f'{self.name}."""')
        e.emit("from repro.genesis import library as lib")
        e.emit("from repro.genesis.library import PosBinding")
        e.emit()
        self._emit_set_up()
        e.emit()
        self._emit_match()
        e.emit()
        self._emit_pre()
        e.emit()
        self._emit_act()
        e.emit()
        self._emit_call_interface()
        return GeneratedSource(
            name=self.name,
            source=e.text(),
            strategies=self.strategies,
            warnings=self.warnings,
        )

    # ------------------------------------------------------------------
    # set_up
    # ------------------------------------------------------------------
    def _emit_set_up(self) -> None:
        e = self.emitter
        e.emit(f"def set_up_{self.name}(ctx):")
        with e.block():
            e.emit('"""Initialize the stlp entries for the TYPE section."""')
            for decl in self.spec.declarations:
                for name in decl.names:
                    type_name = (
                        "Stmt" if decl.elem_type is ElemType.STMT else "Loop"
                    )
                    e.emit(f"ctx.declare({name!r}, {type_name!r})")
            e.emit("return 1")

    # ------------------------------------------------------------------
    # match (Code_Pattern)
    # ------------------------------------------------------------------
    def _emit_match(self) -> None:
        e = self.emitter
        scan_names = []
        for index, clause in enumerate(self.spec.patterns):
            plan = self.analyzed.pattern_plans[index]
            scan_names.append(self._emit_pattern_scan(index, clause, plan))
            e.emit()
        e.emit(f"def match_{self.name}(ctx):")
        with e.block():
            e.emit('"""Yields once per Code_Pattern binding."""')
            self._emit_clause_chain(scan_names,
                                    [c.quant for c in self.spec.patterns],
                                    [p.search_vars
                                     for p in self.analyzed.pattern_plans])

    def _emit_pattern_scan(
        self, index: int, clause: PatternClause, plan: ClausePlan
    ) -> str:
        e = self.emitter
        scan_name = f"_scan_{self.name}_p{index}"
        e.emit(f"def {scan_name}(ctx):")
        with e.block():
            e.emit(f'"""Code_Pattern clause {index + 1}: '
                   f'{_doc(clause)}"""')
            if clause.quant is Quant.NO:
                # "The no operator returns null and warns the user"
                e.emit("return")
                e.emit("yield True  # unreachable: 'no' matches nothing")
                self.warnings.append(
                    f"pattern clause {index + 1} uses 'no': matches nothing"
                )
                return scan_name
            depth = self._emit_pattern_enumeration(
                plan.search_vars, clause.format
            )
            if clause.format is not None:
                check = self._compile_cond(clause.format)
                e.emit(f"if not ({check}):")
                with e.block():
                    e.emit("continue" if depth else "return")
            e.emit("yield True")
            for _ in range(depth):
                e.indent -= 1
        return scan_name

    def _emit_pattern_enumeration(
        self,
        search_vars: Sequence[str],
        format_cond: Optional[Cond] = None,
    ) -> int:
        """Emit nested candidate loops; returns the loop depth opened.

        The emitter indent is left *inside* the innermost loop; the
        caller emits the body and closes via the enclosing block scope.
        Declared loop pairs constrain the enumeration: two unbound pair
        elements enumerate the pair table together; a pair whose other
        element is already bound filters the table on the bound side
        (this is how ``Tight Loops: (L1, L2), (L2, L3)`` chains a
        perfect nest).

        Statement enumerations carry a *shape hint* derived from the
        clause format's top-level conjuncts (``Si.opc == assign``,
        ``class(Si) == compute``, ``type(Si.opr_2) == const``): a
        superset of the buckets the candidate index must scan.  The
        format check still runs on every candidate, so the hint never
        affects what matches — only how many candidates are visited.
        """
        e = self.emitter
        depth = 0
        pairs = self.spec.loop_pairs()
        pending = list(search_vars)
        bound: set[str] = set()

        def pair_for(var: str) -> Optional[tuple[str, str, ElemType, int]]:
            """(first, second, type, which-side-var-is) for ``var``."""
            for first, second, pair_type in pairs:
                if var == first:
                    return first, second, pair_type, 0
                if var == second:
                    return first, second, pair_type, 1
            return None

        while pending:
            var = pending.pop(0)
            info = pair_for(var)
            if info is not None:
                first, second, pair_type, side = info
                finder = _PAIR_FINDERS[pair_type]
                other = second if side == 0 else first
                if other in pending:
                    # both elements unbound: enumerate the pair table
                    e.emit(f"for _pair{depth} in lib.{finder}(ctx):")
                    e.indent += 1
                    e.emit(f"ctx.bind({first!r}, _pair{depth}[0])")
                    e.emit(f"ctx.bind({second!r}, _pair{depth}[1])")
                    pending.remove(other)
                    bound.update((first, second))
                    depth += 1
                    continue
                if other in bound or other not in pending:
                    # the other element is already bound: filter
                    e.emit(f"for _pair{depth} in lib.{finder}(ctx):")
                    e.indent += 1
                    e.emit(
                        f"if _pair{depth}[{1 - side}].head != "
                        f"ctx.get_qid({other!r}):"
                    )
                    with e.block():
                        e.emit("continue")
                    e.emit(f"ctx.bind({var!r}, _pair{depth}[{side}])")
                    bound.add(var)
                    depth += 1
                    continue
            elem_type = self.types[var]
            if elem_type is ElemType.STMT:
                shape = self._shape_hint(format_cond, var)
                call = (
                    f"lib.statements(ctx, shape={shape!r})"
                    if shape is not None else "lib.statements(ctx)"
                )
            else:
                call = "lib.loops(ctx)"
            e.emit(f"for _cand{depth} in {call}:")
            e.indent += 1
            e.emit(f"ctx.bind({var!r}, _cand{depth})")
            bound.add(var)
            depth += 1
        return depth

    def _shape_hint(
        self, format_cond: Optional[Cond], var: str
    ) -> Optional[tuple[str, ...]]:
        return shape_hint(self.types, format_cond, var)

    def _bare_symbol(self, value: Value) -> Optional[str]:
        return bare_symbol(self.types, value)

    # ------------------------------------------------------------------
    # pre (Depend)
    # ------------------------------------------------------------------
    def _emit_pre(self) -> None:
        e = self.emitter
        scan_names = []
        for index, clause in enumerate(self.spec.depends):
            plan = self.analyzed.depend_plans[index]
            strategy = choose_strategy(clause, plan, self.types, self.policy)
            self.strategies.append(strategy)
            scan_names.append(
                self._emit_depend_scan(index, clause, plan, strategy)
            )
            e.emit()
        e.emit(f"def pre_{self.name}(ctx):")
        with e.block():
            e.emit('"""Yields once per satisfied Depend precondition."""')
            self._emit_clause_chain(
                scan_names,
                [c.quant for c in self.spec.depends],
                [p.search_vars for p in self.analyzed.depend_plans],
                restrictions=True,
            )

    def _emit_clause_chain(
        self,
        scan_names: Sequence[str],
        quants: Sequence[Quant],
        search_vars: Sequence[Sequence[str]],
        restrictions: bool = False,
    ) -> None:
        """Emit the nested any/no/all chain over per-clause scanners."""
        e = self.emitter
        in_loop = 0

        def fail() -> None:
            e.emit("continue" if in_loop else "return")

        for index, scan in enumerate(scan_names):
            quant = quants[index]
            if quant is Quant.NO:
                e.emit(f"_found{index} = False")
                e.emit(f"for _m{index} in {scan}(ctx):")
                with e.block():
                    e.emit(f"_found{index} = True")
                    e.emit("break")
                guard = (
                    f"if _found{index} and ctx.enforce_restrictions:"
                    if restrictions
                    else f"if _found{index}:"
                )
                e.emit(guard)
                with e.block():
                    fail()
            elif quant is Quant.ALL:
                variables = list(search_vars[index])
                if len(variables) != 1:
                    raise CodegenError(
                        "'all' clauses must bind exactly one element"
                    )
                var = variables[0]
                e.emit(f"_acc{index} = []")
                e.emit(f"for _m{index} in {scan}(ctx):")
                with e.block():
                    e.emit(f"_acc{index}.append(ctx.get({var!r}))")
                e.emit(f"ctx.bind({var!r}, tuple(_acc{index}))")
            else:  # ANY
                e.emit(f"for _m{index} in {scan}(ctx):")
                e.indent += 1
                in_loop += 1
        e.emit("yield True")
        for _ in range(in_loop):
            e.indent -= 1

    def _emit_depend_scan(
        self,
        index: int,
        clause: DependClause,
        plan: ClausePlan,
        strategy: ClauseStrategy,
    ) -> str:
        e = self.emitter
        scan_name = f"_scan_{self.name}_d{index}"
        e.emit(f"def {scan_name}(ctx):")
        self._current_anchor = self._clause_anchor(clause)
        with e.block():
            e.emit(f'"""Depend clause {index + 1} '
                   f'[{strategy.method}]: {_doc(clause)}"""')
            if strategy.method == "check":
                self._emit_check_clause(clause)
            elif strategy.method == "deps":
                self._emit_deps_clause(clause, plan, strategy)
            else:
                self._emit_members_clause(clause, plan)
        self._current_anchor = None
        return scan_name

    def _clause_anchor(self, clause: DependClause) -> Optional[str]:
        """The loop anchoring this clause's direction vectors.

        When every membership qualification restricts statements to one
        loop's body, direction vectors written in the clause are
        interpreted relative to that loop's nest level.
        """
        bases: set[str] = set()
        for membership in clause.memberships:
            set_expr = membership.set_expr
            if isinstance(set_expr, SetRef):
                base_type = self.types.get(set_expr.ref.base)
                if base_type is not None and base_type is not ElemType.STMT:
                    bases.add(set_expr.ref.base)
        if len(bases) == 1:
            return bases.pop()
        return None

    def _emit_check_clause(self, clause: DependClause) -> None:
        """No free variables: evaluate the condition once."""
        e = self.emitter
        checks = [self._compile_cond(m) for m in clause.memberships]
        if clause.condition is not None:
            checks.append(self._compile_cond(clause.condition))
        expression = " and ".join(checks) if checks else "True"
        e.emit(f"if ({expression}):")
        with e.block():
            e.emit("yield True")

    def _emit_deps_clause(
        self,
        clause: DependClause,
        plan: ClausePlan,
        strategy: ClauseStrategy,
    ) -> None:
        """Method (2): enumerate dependence edges, check memberships.

        A multi-atom primary group (an OR over dependence kinds with
        identical endpoints) enumerates the union of the kinds' edges.
        """
        e = self.emitter
        group = strategy.primary_group
        assert group
        primary = group[0]
        search = set(plan.search_vars)
        src_name = primary.src.base if isinstance(primary.src, Ref) and (
            not primary.src.attrs and primary.src.base in search
        ) else None
        dst_name = primary.dst.base if isinstance(primary.dst, Ref) and (
            not primary.dst.attrs and primary.dst.base in search
        ) else None

        anchor = self._anchor_arg()
        if src_name is None and dst_name is None:
            raise CodegenError(
                "deps-first strategy chosen for a clause with no free "
                "dependence endpoint"
            )
        if len(group) == 1:
            pattern = repr(primary.direction)
            if src_name is None:
                src_code = self._compile_stmt(primary.src)
                e.emit(
                    f"for _edge in lib.deps_from(ctx, {primary.kind!r}, "
                    f"{src_code}, pattern={pattern}{anchor}):"
                )
            elif dst_name is None:
                dst_code = self._compile_stmt(primary.dst)
                e.emit(
                    f"for _edge in lib.deps_to(ctx, {primary.kind!r}, "
                    f"{dst_code}, pattern={pattern}{anchor}):"
                )
            else:
                e.emit(
                    f"for _edge in lib.dep_edges(ctx, {primary.kind!r}, "
                    f"pattern={pattern}{anchor}):"
                )
        else:
            specs = repr([(atom.kind, atom.direction) for atom in group])
            src_code = (
                "None" if src_name is not None
                else self._compile_stmt(primary.src)
            )
            dst_code = (
                "None" if dst_name is not None
                else self._compile_stmt(primary.dst)
            )
            e.emit(
                f"for _edge in lib.dep_candidates(ctx, {specs}, "
                f"src={src_code}, dst={dst_code}{anchor}):"
            )
        with e.block():
            if src_name is not None:
                e.emit(f"ctx.bind({src_name!r}, _edge.src)")
            if dst_name is not None:
                e.emit(f"ctx.bind({dst_name!r}, _edge.dst)")
            self._emit_pos_handling(clause)
            for membership in clause.memberships:
                check = self._compile_cond(membership)
                e.emit(f"if not ({check}):")
                with e.block():
                    e.emit("continue")
            residual = self._compile_cond(
                clause.condition, exclude_group=group
            ) if clause.condition is not None else "True"
            if residual != "True":
                e.emit(f"if not ({residual}):")
                with e.block():
                    e.emit("continue")
            e.emit("yield True")

    def _emit_pos_handling(self, clause: DependClause) -> None:
        """Bind or unify the dependence-position names of the clause."""
        e = self.emitter
        for binder in clause.binders:
            if binder.pos_name is None:
                continue
            if binder.pos_name in self._bound_pos_before(clause):
                e.emit(f"_pb = ctx.get({binder.pos_name!r})")
                e.emit(
                    "if not (_edge.dst_pos == _pb.pos "
                    "and _edge.var == _pb.var):"
                )
                with e.block():
                    e.emit("continue")
            else:
                e.emit(
                    f"ctx.bind({binder.pos_name!r}, "
                    "PosBinding(_edge.dst_pos, _edge.var))"
                )

    def _bound_pos_before(self, clause: DependClause) -> set[str]:
        bound: set[str] = set()
        for other, plan in zip(self.spec.depends, self.analyzed.depend_plans):
            if other is clause:
                break
            bound.update(plan.new_pos_vars)
        return bound

    def _emit_members_clause(
        self, clause: DependClause, plan: ClausePlan
    ) -> None:
        """Method (1): enumerate members, verify the dependences."""
        e = self.emitter
        domains: dict[str, Optional[SetExpr]] = {}
        used_memberships: list[MemCond] = []
        for var in plan.search_vars:
            domain: Optional[SetExpr] = None
            for membership in clause.memberships:
                element = membership.element
                if element.base == var and not element.attrs and (
                    membership not in used_memberships
                ):
                    domain = membership.set_expr
                    used_memberships.append(membership)
                    break
            domains[var] = domain

        depth = 0
        for var in plan.search_vars:
            domain = domains[var]
            if domain is None:
                if self.types.get(var) is ElemType.STMT:
                    e.emit(f"for _cand{depth} in lib.statements(ctx):")
                else:
                    e.emit(f"for _cand{depth} in lib.loops(ctx):")
            else:
                e.emit(f"for _cand{depth} in {self._compile_set(domain)}:")
            e.indent += 1
            e.emit(f"ctx.bind({var!r}, _cand{depth})")
            depth += 1

        fail = "continue" if depth else "return"
        for membership in clause.memberships:
            if membership in used_memberships:
                continue
            check = self._compile_cond(membership)
            e.emit(f"if not ({check}):")
            with e.block():
                e.emit(fail)
        if clause.condition is not None:
            check = self._compile_cond(clause.condition)
            e.emit(f"if not ({check}):")
            with e.block():
                e.emit(fail)
        e.emit("yield True")
        for _ in range(depth):
            e.indent -= 1

    # ------------------------------------------------------------------
    # act
    # ------------------------------------------------------------------
    def _emit_act(self) -> None:
        e = self.emitter
        e.emit(f"def act_{self.name}(ctx):")
        with e.block():
            e.emit('"""Apply the ACTION primitives."""')
            for action in self.spec.actions:
                self._emit_action(action)
            e.emit("return 1")

    def _emit_action(self, action: Action) -> None:
        e = self.emitter
        if isinstance(action, DeleteAction):
            e.emit(f"lib.act_delete(ctx, {self._compile_value(action.target)})")
        elif isinstance(action, MoveAction):
            e.emit(
                f"lib.act_move(ctx, {self._compile_value(action.target)}, "
                f"{self._compile_value(action.after)})"
            )
        elif isinstance(action, CopyAction):
            self._dynamic_names.add(action.name)
            e.emit(
                f"_copy = lib.act_copy(ctx, "
                f"{self._compile_value(action.source)}, "
                f"{self._compile_value(action.after)})"
            )
            e.emit(f"ctx.bind({action.name!r}, _copy)")
        elif isinstance(action, AddAction):
            self._dynamic_names.add(action.name)
            template = action.template
            b_code = (
                self._compile_value(template.b)
                if template.b is not None
                else "None"
            )
            e.emit(
                f"_quad = lib.build_stmt(ctx, "
                f"{self._compile_value(template.result)}, "
                f"{template.opcode!r}, {self._compile_value(template.a)}, "
                f"{b_code})"
            )
            e.emit(
                f"_new = lib.act_add(ctx, "
                f"{self._compile_value(action.after)}, _quad)"
            )
            e.emit(f"ctx.bind({action.name!r}, _new)")
        elif isinstance(action, ModifyAction):
            self._emit_modify(action)
        elif isinstance(action, ForallAction):
            self._emit_forall(action)
        else:
            raise CodegenError(f"cannot compile action {action!r}")

    def _emit_modify(self, action: ModifyAction) -> None:
        e = self.emitter
        lvalue = action.lvalue
        new_code = self._compile_value(action.new_value)
        if isinstance(lvalue, FuncVal) and lvalue.func == "operand":
            stmt_code = self._compile_stmt(lvalue.args[0])
            pos_code = self._compile_value(lvalue.args[1])
            e.emit(
                f"lib.act_modify_operand(ctx, {stmt_code}, {pos_code}, "
                f"{new_code})"
            )
            return
        if isinstance(lvalue, Ref) and lvalue.attrs:
            attr = lvalue.attrs[-1]
            if attr not in _MODIFIABLE_ATTRS:
                raise CodegenError(f"cannot modify attribute .{attr}")
            prefix = Ref(base=lvalue.base, attrs=lvalue.attrs[:-1])
            stmt_code = self._compile_stmt(prefix)
            e.emit(
                f"lib.act_modify_attr(ctx, {stmt_code}, {attr!r}, {new_code})"
            )
            return
        raise CodegenError(f"bad modify target {lvalue!r}")

    def _emit_forall(self, action: ForallAction) -> None:
        e = self.emitter
        binder = action.binder
        self._dynamic_names.add(binder.name)
        domain = action.domain
        if isinstance(domain, UsesSet):
            operand_code = self._compile_value(domain.operand)
            within_code = self._compile_set(domain.within)
            e.emit(
                f"for _site in lib.uses_in(ctx, {operand_code}, "
                f"{within_code}):"
            )
            with e.block():
                e.emit(f"ctx.bind({binder.name!r}, _site[0])")
                if binder.pos_name is not None:
                    self._dynamic_names.add(binder.pos_name)
                    self._pos_vars.add(binder.pos_name)
                    e.emit(f"ctx.bind({binder.pos_name!r}, _site[1])")
                self._emit_forall_body(action)
        elif isinstance(domain, RangeSet):
            init = self._compile_value(domain.init)
            final = self._compile_value(domain.final)
            step = self._compile_value(domain.step)
            e.emit(
                f"for _k in lib.range_values(ctx, {init}, {final}, {step}):"
            )
            with e.block():
                e.emit(f"ctx.bind({binder.name!r}, _k)")
                self._emit_forall_body(action)
        else:
            e.emit(f"for _elem in {self._compile_set(domain)}:")
            with e.block():
                e.emit(f"ctx.bind({binder.name!r}, _elem)")
                self._emit_forall_body(action)

    def _emit_forall_body(self, action: ForallAction) -> None:
        e = self.emitter
        if action.where is not None:
            check = self._compile_cond(action.where)
            e.emit(f"if not ({check}):")
            with e.block():
                e.emit("continue")
        for sub in action.body:
            self._emit_action(sub)

    # ------------------------------------------------------------------
    # call interface
    # ------------------------------------------------------------------
    def _emit_call_interface(self) -> None:
        e = self.emitter
        e.emit("# call interface (paper Figure 6): the driver calls these")
        e.emit()
        e.emit("def set_up_OPT(ctx):")
        with e.block():
            e.emit(f"return set_up_{self.name}(ctx)")
        e.emit()
        e.emit()
        e.emit("def match_OPT(ctx):")
        with e.block():
            e.emit(f"return match_{self.name}(ctx)")
        e.emit()
        e.emit()
        e.emit("def pre_OPT(ctx):")
        with e.block():
            e.emit(f"return pre_{self.name}(ctx)")
        e.emit()
        e.emit()
        e.emit("def act_OPT(ctx):")
        with e.block():
            e.emit(f"return act_{self.name}(ctx)")

    # ------------------------------------------------------------------
    # condition compilation
    # ------------------------------------------------------------------
    def _compile_cond(
        self,
        cond: Cond,
        exclude_group: tuple[DepCond, ...] = (),
    ) -> str:
        if isinstance(cond, DepCond) and any(
            cond is atom for atom in exclude_group
        ):
            return "True"
        if isinstance(cond, BoolOp):
            if (
                cond.op == "or"
                and exclude_group
                and len(cond.terms) == len(exclude_group)
                and all(
                    term is atom
                    for term, atom in zip(cond.terms, exclude_group)
                )
            ):
                return "True"
            joiner = " and " if cond.op == "and" else " or "
            parts = [self._compile_cond(t, exclude_group) for t in cond.terms]
            return "(" + joiner.join(parts) + ")"
        if isinstance(cond, NotOp):
            return f"(not {self._compile_cond(cond.term, exclude_group)})"
        if isinstance(cond, Compare):
            left = self._compile_value(cond.left)
            right = self._compile_value(cond.right)
            return f"lib.compare(ctx, {cond.relop!r}, {left}, {right})"
        if isinstance(cond, DepCond):
            src = self._compile_stmt(cond.src)
            dst = self._compile_stmt(cond.dst)
            return (
                f"lib.dep_exists(ctx, {cond.kind!r}, {src}, {dst}, "
                f"pattern={cond.direction!r}{self._anchor_arg()})"
            )
        if isinstance(cond, MemCond):
            element = self._compile_stmt(cond.element)
            set_code = self._compile_set(cond.set_expr)
            return f"lib.member(ctx, {element}, {set_code})"
        raise CodegenError(f"cannot compile condition {cond!r}")

    # ------------------------------------------------------------------
    # value compilation
    # ------------------------------------------------------------------
    def _compile_value(self, value: Value) -> str:
        if isinstance(value, NumberLit):
            return repr(value.value)
        if isinstance(value, SymbolLit):
            return repr(value.name.lower())
        if isinstance(value, NewTemp):
            return "ctx.fresh_temp()"
        if isinstance(value, Arith):
            left = self._compile_value(value.left)
            right = self._compile_value(value.right)
            return f"lib.arith(ctx, {value.op!r}, {left}, {right})"
        if isinstance(value, FuncVal):
            return self._compile_funcval(value)
        if isinstance(value, Ref):
            return self._compile_ref(value)
        raise CodegenError(f"cannot compile value {value!r}")

    def _anchor_arg(self) -> str:
        if self._current_anchor is None:
            return ""
        return f", anchor=ctx.get({self._current_anchor!r})"

    def _compile_funcval(self, value: FuncVal) -> str:
        if value.func == "type":
            return f"lib.kind_of({self._compile_value(value.args[0])})"
        if value.func == "class":
            return f"lib.class_of(ctx, {self._compile_stmt(value.args[0])})"
        if value.func == "trip":
            return f"lib.trip_of(ctx, {self._compile_stmt(value.args[0])})"
        if value.func == "value":
            return f"lib.value_of(ctx, {self._compile_stmt(value.args[0])})"
        if value.func == "pos":
            return (
                f"lib.position_of(ctx, {self._compile_stmt(value.args[0])})"
            )
        if value.func == "operand":
            stmt = self._compile_stmt(value.args[0])
            pos = self._compile_value(value.args[1])
            return f"lib.operand_at(ctx, {stmt}, {pos})"
        raise CodegenError(f"unknown function {value.func!r}")

    def _compile_ref(self, ref: Ref) -> str:
        base = ref.base
        known = (
            base in self.types
            or base in self._dynamic_names
            or base in self._pos_vars
        )
        if not known:
            if ref.attrs:
                raise CodegenError(f"undeclared base {base!r} in {ref}")
            return repr(base.lower())  # a symbolic constant
        if not ref.attrs:
            return f"ctx.get({base!r})"
        return f"lib.eval_ref(ctx, {base!r}, {ref.attrs!r})"

    def _compile_stmt(self, value: Value) -> str:
        """Compile a statement-valued expression (a qid at runtime)."""
        if isinstance(value, Ref):
            if not value.attrs:
                return f"ctx.get_qid({value.base!r})"
            return f"lib.eval_ref(ctx, {value.base!r}, {value.attrs!r})"
        raise CodegenError(f"expected a statement reference, got {value!r}")

    # ------------------------------------------------------------------
    # set compilation
    # ------------------------------------------------------------------
    def _compile_set(self, set_expr: SetExpr) -> str:
        if isinstance(set_expr, SetRef):
            ref = set_expr.ref
            base_type = self.types.get(ref.base)
            if base_type is not None and base_type is not ElemType.STMT:
                # a loop name (optionally with .body) means its body
                return f"lib.loop_body(ctx, ctx.get_qid({ref.base!r}))"
            if ref.base in self._dynamic_names and not ref.attrs:
                return f"ctx.get({ref.base!r})"
            if base_type is ElemType.STMT and not ref.attrs:
                # an 'all'-quantified collection (or a single statement
                # coerced to a one-element set)
                return f"lib.as_element_set(ctx.get({ref.base!r}))"
            raise CodegenError(f"{ref} is not a set")
        if isinstance(set_expr, PathSet):
            start = self._compile_stmt(set_expr.start)
            stop = self._compile_stmt(set_expr.stop)
            return f"lib.path_set(ctx, {start}, {stop})"
        if isinstance(set_expr, RegionSet):
            start = self._compile_stmt(set_expr.start)
            stop = self._compile_stmt(set_expr.stop)
            return f"lib.region_set(ctx, {start}, {stop})"
        if isinstance(set_expr, SetOp):
            left = self._compile_set(set_expr.left)
            right = self._compile_set(set_expr.right)
            func = "set_inter" if set_expr.op == "inter" else "set_union"
            return f"lib.{func}({left}, {right})"
        if isinstance(set_expr, UsesSet):
            operand = self._compile_value(set_expr.operand)
            within = self._compile_set(set_expr.within)
            return f"lib.uses_in(ctx, {operand}, {within})"
        raise CodegenError(f"cannot compile set {set_expr!r}")


def _sanitize(name: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "OPT_" + cleaned
    return cleaned


def _doc(clause: object) -> str:
    text = str(clause).replace('"', "'")
    return text if len(text) < 160 else text[:157] + "..."


def generate_source(
    analyzed: AnalyzedSpec,
    policy: StrategyPolicy = StrategyPolicy.HEURISTIC,
) -> GeneratedSource:
    """Compile an analyzed specification to generated Python source."""
    return CodeGenerator(analyzed, policy).generate()


# ----------------------------------------------------------------------
# catalog-level emission: the shared discrimination network
# ----------------------------------------------------------------------

def emit_network(optimizers: Sequence[object]) -> GeneratedSource:
    """Render the catalog's shared discrimination network as source.

    The per-spec generators above keep the paper's contract at the spec
    level — GENesis emits code, it does not interpret specs.  This
    keeps the same contract at the *catalog* level: the trie built by
    :mod:`repro.genesis.network` from every loaded spec's seed shape
    and anchor dependence tests is rendered as one Python module whose
    ``classify_network(ctx, qid, shapes, stats=None)`` returns the
    names of the specs whose shared prefix admits statement ``qid`` as
    a candidate seed.  Shared prefixes become shared ``if`` nests, so a
    quad is classified once against the whole catalog; nodes with more
    than one subscribing spec record the evaluations they saved in
    ``stats['shared_prefix_hits']``.
    """
    from repro.genesis.network import build_trie, compile_plan

    plans = sorted(
        (compile_plan(optimizer) for optimizer in optimizers),
        key=lambda plan: plan.name,
    )
    seeded = [plan for plan in plans if plan.granularity == "seed"]
    coarse = tuple(
        plan.name for plan in plans if plan.granularity != "seed"
    )
    trie = build_trie(seeded)
    e = Emitter()
    e.emit('"""Code generated by GENesis: catalog discrimination '
           'network."""')
    e.emit("from repro.genesis import library as lib")
    e.emit()
    e.emit("#: specs classified per candidate seed by the network")
    e.emit(f"NETWORK_SPECS = {tuple(plan.name for plan in seeded)!r}")
    e.emit("#: specs matched per-spec (loop-seeded or multi-pattern)")
    e.emit(f"NETWORK_COARSE = {coarse!r}")
    e.emit(f"NETWORK_NODES = {trie.nodes!r}")
    e.emit(f"NETWORK_SHARED_NODES = {trie.shared_nodes!r}")
    e.emit()
    e.emit()
    e.emit("def classify_network(ctx, qid, shapes, stats=None):")
    with e.block():
        e.emit('"""Spec names whose shared prefix admits seed '
               '``qid``.')
        e.emit()
        e.emit("``shapes`` are the candidate's shape-bucket tokens; "
               "every")
        e.emit("test below is a necessary condition for the owning "
               "specs,")
        e.emit("so the returned names are a superset filter, never a")
        e.emit("decision.  ``stats['shared_prefix_hits']`` counts the")
        e.emit("evaluations avoided at nodes shared by several specs.")
        e.emit('"""')
        e.emit("out = []")
        shaped = [
            (token, node)
            for token, node in trie.roots.items()
            if token is not None
        ]
        for token, node in sorted(shaped):
            e.emit(f"if {token!r} in shapes:")
            with e.block():
                _render_network_node(e, node)
        unshaped = trie.roots.get(None)
        if unshaped is not None:
            e.emit("# seeds with no shape constraint: every quad")
            _render_network_node(e, unshaped)
        e.emit("return tuple(dict.fromkeys(out))")
    return GeneratedSource(
        name="NETWORK",
        source=e.text(),
        warnings=[],
    )


def _render_network_node(e: Emitter, node: object) -> None:
    """Emit one trie node: shared-hit bookkeeping, accepts, children."""
    if node.subscribers > 1:
        e.emit("if stats is not None:")
        with e.block():
            e.emit(
                f"stats['shared_prefix_hits'] += {node.subscribers - 1}"
            )
    for name in node.accepts:
        e.emit(f"out.append({name!r})")
    for test, child in node.children.items():
        e.emit(f"if {_render_network_test(test)}:")
        with e.block():
            _render_network_node(e, child)


def _render_network_test(test: object) -> str:
    """One dependence test: an OR over edge-existence probes."""
    parts = []
    for kind, seed_is_src, pattern in test.atoms:
        if seed_is_src:
            parts.append(
                f"lib.dep_exists(ctx, {kind!r}, qid, None, "
                f"pattern={pattern!r})"
            )
        else:
            parts.append(
                f"lib.dep_exists(ctx, {kind!r}, None, qid, "
                f"pattern={pattern!r})"
            )
    if len(parts) == 1:
        return parts[0]
    return "(" + " or ".join(parts) + ")"
