"""The constructor: packaging generated optimizers on disk.

Paper Figure 4, step 3: "Construct the optimizer by (a) packaging the
produced code for all optimizations and library routines, (b) creating
the interface from a template".  The in-memory path is
:class:`~repro.genesis.session.OptimizerSession`; this module is the
on-disk counterpart: it writes each optimization's *generated source*
to its own module, a manifest, and a ``__main__`` entry point, yielding
a self-contained optimizer package::

    from repro.genesis.constructor import construct_package
    construct_package(["CTP", "DCE"], "myopt")

    $ python myopt program.f --opts CTP,DCE --show

Loading the package back (:func:`load_package`) executes exactly the
bytes on disk — which is how the tests prove the emitted text is the
code that runs, not a shadow of it.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path
from typing import Sequence, Union

from repro.genesis.generator import GeneratedOptimizer
from repro.genesis.strategy import StrategyPolicy
from repro.gospel.sema import analyze_spec
from repro.opts.catalog import build_optimizer
from repro.opts.extended import EXTENDED_SPECS
from repro.opts.specs import STANDARD_SPECS, VARIANT_SPECS

_MANIFEST = "manifest.json"

_MAIN_TEMPLATE = '''\
"""Constructed optimizer package entry point (GENesis constructor)."""

import argparse
import sys
from pathlib import Path

PACKAGE_DIR = Path(__file__).resolve().parent

from repro.frontend.lower import parse_program
from repro.genesis.constructor import load_package
from repro.genesis.driver import DriverOptions, run_optimizer
from repro.ir.printer import format_program


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="constructed optimizer ({names})"
    )
    parser.add_argument("program", help="mini-Fortran source file")
    parser.add_argument("--opts", default="{names}",
                        help="comma-separated sequence to apply")
    parser.add_argument("--once", action="store_true")
    parser.add_argument("--show", action="store_true")
    args = parser.parse_args(argv)

    optimizers = load_package(PACKAGE_DIR)
    program = parse_program(Path(args.program).read_text())
    options = DriverOptions(apply_all=not args.once)
    for name in args.opts.split(","):
        name = name.strip()
        result = run_optimizer(optimizers[name], program, options)
        print(result)
    if args.show:
        print(format_program(program))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
'''


class ConstructorError(Exception):
    """Raised for malformed packages or unknown optimization names."""


def _resolve(item: Union[str, GeneratedOptimizer],
             policy: StrategyPolicy) -> GeneratedOptimizer:
    if isinstance(item, GeneratedOptimizer):
        return item
    if item in STANDARD_SPECS or item in EXTENDED_SPECS or (
        item in VARIANT_SPECS
    ):
        return build_optimizer(item, policy=policy)
    raise ConstructorError(f"unknown optimization {item!r}")


def construct_package(
    optimizations: Sequence[Union[str, GeneratedOptimizer]],
    directory: Union[str, Path],
    policy: StrategyPolicy = StrategyPolicy.HEURISTIC,
) -> Path:
    """Write a self-contained optimizer package.

    ``optimizations`` mixes catalog names and already-generated
    optimizers (e.g. from user-authored specifications).  The directory
    receives one ``opt_<name>.py`` per optimization containing the
    generated source verbatim, a ``manifest.json`` mapping names to
    modules and specification text, and a ``__main__.py`` batch
    interface.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)

    manifest: dict[str, dict[str, str]] = {}
    for item in optimizations:
        optimizer = _resolve(item, policy)
        module_name = f"opt_{optimizer.name.lower()}"
        (target / f"{module_name}.py").write_text(optimizer.source)
        manifest[optimizer.name] = {
            "module": f"{module_name}.py",
            "generated_name": _generated_name(optimizer),
            "spec": optimizer.spec.source,
            "policy": optimizer.policy.value,
        }

    (target / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    names = ",".join(manifest)
    (target / "__main__.py").write_text(
        _MAIN_TEMPLATE.replace("{names}", names)
    )
    return target


def _generated_name(optimizer: GeneratedOptimizer) -> str:
    """The sanitized name used in the generated procedure names.

    The set_up callable is named ``set_up_<sanitized>``.
    """
    return optimizer.set_up.__name__[len("set_up_"):]


def load_package(directory: Union[str, Path]) -> dict[str, GeneratedOptimizer]:
    """Load a constructed package, executing the on-disk modules.

    Returns the optimizers keyed by name, rebuilt around the loaded
    procedures: the specification text in the manifest supplies the
    static metadata (binding plans, action names), while the callables
    come from the files — guaranteeing what is shipped is what runs.
    """
    target = Path(directory)
    manifest_path = target / _MANIFEST
    if not manifest_path.exists():
        raise ConstructorError(f"{target} is not a constructed package "
                               f"(missing {_MANIFEST})")
    manifest = json.loads(manifest_path.read_text())

    from repro.gospel.parser import parse_spec

    optimizers: dict[str, GeneratedOptimizer] = {}
    for name, entry in manifest.items():
        module_path = target / entry["module"]
        spec = parse_spec(entry["spec"], name=name)
        analyzed = analyze_spec(spec)
        namespace = _import_module(module_path, f"constructed_{name}")
        generated_name = entry["generated_name"]
        optimizers[name] = GeneratedOptimizer(
            name=name,
            spec=spec,
            analyzed=analyzed,
            source=module_path.read_text(),
            set_up=getattr(namespace, f"set_up_{generated_name}"),
            match=getattr(namespace, f"match_{generated_name}"),
            pre=getattr(namespace, f"pre_{generated_name}"),
            act=getattr(namespace, f"act_{generated_name}"),
            policy=StrategyPolicy(entry.get("policy", "heuristic")),
        )
    return optimizers


def _import_module(path: Path, module_name: str):
    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:
        raise ConstructorError(f"cannot import {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module
