"""Cost instrumentation for generated optimizers.

The paper estimates "the cost of applying an optimization ... using the
number of checks to determine preconditions and the number of
operations to apply the code transformation", computed "by using code
that GENesis produced", and validates those estimates against measured
execution times (experiment E5).  Every library routine the generated
code calls bumps these counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CostCounters:
    """Counts of precondition checks and transformation operations."""

    #: format/comparison checks in Code_Pattern matching
    pattern_checks: int = 0
    #: dependence queries in the Depend precondition
    dep_checks: int = 0
    #: set-membership tests (``mem`` conditions)
    mem_checks: int = 0
    #: candidate statements/loops enumerated by the matcher
    candidates: int = 0
    #: primitive transformation operations executed
    action_ops: int = 0

    def precondition_checks(self) -> int:
        """All checks performed before any transformation."""
        return (
            self.pattern_checks
            + self.dep_checks
            + self.mem_checks
            + self.candidates
        )

    def total(self) -> int:
        """The paper's scalar cost: precondition checks + actions."""
        return self.precondition_checks() + self.action_ops

    def snapshot(self) -> "CostCounters":
        """An independent copy (for per-application-point deltas)."""
        return CostCounters(
            pattern_checks=self.pattern_checks,
            dep_checks=self.dep_checks,
            mem_checks=self.mem_checks,
            candidates=self.candidates,
            action_ops=self.action_ops,
        )

    def minus(self, earlier: "CostCounters") -> "CostCounters":
        """Delta between two snapshots."""
        return CostCounters(
            pattern_checks=self.pattern_checks - earlier.pattern_checks,
            dep_checks=self.dep_checks - earlier.dep_checks,
            mem_checks=self.mem_checks - earlier.mem_checks,
            candidates=self.candidates - earlier.candidates,
            action_ops=self.action_ops - earlier.action_ops,
        )

    def add(self, other: "CostCounters") -> None:
        """Accumulate another counter set into this one."""
        self.pattern_checks += other.pattern_checks
        self.dep_checks += other.dep_checks
        self.mem_checks += other.mem_checks
        self.candidates += other.candidates
        self.action_ops += other.action_ops

    def as_dict(self) -> dict[str, int]:
        return {
            "pattern_checks": self.pattern_checks,
            "dep_checks": self.dep_checks,
            "mem_checks": self.mem_checks,
            "candidates": self.candidates,
            "action_ops": self.action_ops,
            "total": self.total(),
        }

    def __str__(self) -> str:
        return (
            f"cost(pattern={self.pattern_checks}, dep={self.dep_checks}, "
            f"mem={self.mem_checks}, cand={self.candidates}, "
            f"actions={self.action_ops}, total={self.total()})"
        )


@dataclass
class ApplicationRecord:
    """One successful application of an optimization."""

    opt_name: str
    bindings: dict[str, object] = field(default_factory=dict)
    cost: CostCounters = field(default_factory=CostCounters)

    def __str__(self) -> str:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(self.bindings.items()))
        return f"{self.opt_name}[{pairs}] {self.cost}"
