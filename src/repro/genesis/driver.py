"""The standard optimizer driver (paper Figure 5).

The driver is the same for every generated optimizer: it calls the call
interface's ``set_up_OPT``, walks pattern matches (``match_OPT``),
checks preconditions (``pre_OPT``), and fires ``act_OPT`` at accepted
application points.  Extensions over the paper's pseudocode, all
exposed through the interactive interface the paper describes: finding
points without applying, applying at one chosen point or at all points,
overriding dependence restrictions, and optionally recomputing
dependences between applications.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.analysis.graph import DependenceGraph
from repro.analysis.manager import AnalysisManager, manager_for
from repro.genesis.cost import ApplicationRecord, CostCounters
from repro.genesis.generator import GeneratedOptimizer
from repro.genesis.library import LoopBinding, MatchContext, PosBinding
from repro.ir.program import Program


@dataclass
class DriverOptions:
    """Knobs of the interactive interface (Figure 4, step 3.b.iii)."""

    #: apply at every (re-discovered) point rather than just the first
    apply_all: bool = False
    #: safety bound on repeated application (enabling chains terminate
    #: in practice; this guards against oscillating transformations)
    max_applications: int = 200
    #: recompute the dependence graph after each application
    recompute_dependences: bool = True
    #: honour the Depend section's 'no' restrictions
    enforce_restrictions: bool = True
    #: accept only points whose bindings satisfy this predicate
    point_filter: Optional[Callable[[dict[str, object]], bool]] = None
    #: validate IR well-formedness after every application (debug aid)
    validate: bool = False
    #: differential-test every application against the equivalence
    #: oracle (raises :class:`repro.verify.VerificationError` on a
    #: behaviour change)
    verify: bool = False
    #: random environments per oracle check when ``verify`` is on
    verify_trials: int = 3
    #: environment-generation seed for the in-line oracle
    verify_seed: int = 0


@dataclass
class DriverResult:
    """Outcome of one driver run."""

    optimizer: str
    applications: list[ApplicationRecord] = field(default_factory=list)
    counters: CostCounters = field(default_factory=CostCounters)
    elapsed_seconds: float = 0.0

    @property
    def applied(self) -> int:
        return len(self.applications)

    def __str__(self) -> str:
        return (
            f"{self.optimizer}: {self.applied} application(s), "
            f"{self.counters}, {self.elapsed_seconds * 1e3:.2f} ms"
        )


def _point_bindings(
    optimizer: GeneratedOptimizer, ctx: MatchContext
) -> dict[str, object]:
    """The bindings that identify an application point.

    Restricted to names actually bound by ``any``/``all`` clauses —
    leftover bindings from failed ``no``-clause scans are not part of
    the point's identity.
    """
    relevant = optimizer.action_names
    return {
        name: value
        for name, value in ctx.snapshot_bindings().items()
        if name in relevant
    }


def _signature(bindings: dict[str, object]) -> tuple:
    """A hashable identity for an application point."""
    items = []
    for name, value in sorted(bindings.items()):
        if isinstance(value, (int, float, str, PosBinding, LoopBinding)):
            items.append((name, value))
        elif isinstance(value, tuple):
            items.append((name, value))
    return tuple(items)


def make_context(
    program: Program,
    graph: Optional[DependenceGraph] = None,
    counters: Optional[CostCounters] = None,
    manager: Optional[AnalysisManager] = None,
) -> MatchContext:
    """Build a match context, computing dependences when not supplied.

    Dependences come from the ``manager`` (created on demand), which
    updates its graph incrementally from the program's change log
    instead of rebuilding from scratch.  An explicit ``graph`` wins —
    callers use that to hand in a deliberately stale graph.
    """
    if graph is None:
        graph = manager_for(program, manager).graph()
    return MatchContext(program=program, graph=graph, counters=counters)


def find_application_points(
    optimizer: GeneratedOptimizer,
    program: Program,
    graph: Optional[DependenceGraph] = None,
    counters: Optional[CostCounters] = None,
    enforce_restrictions: bool = True,
    limit: Optional[int] = None,
    manager: Optional[AnalysisManager] = None,
) -> list[dict[str, object]]:
    """All application points of an optimizer, *without* applying it.

    Each point is the binding environment of one complete
    (Code_Pattern × Depend) match.  Points are deduplicated by binding
    signature.
    """
    ctx = make_context(program, graph, counters, manager)
    ctx.enforce_restrictions = enforce_restrictions
    optimizer.set_up(ctx)
    points: list[dict[str, object]] = []
    seen: set[tuple] = set()
    for _match in optimizer.match(ctx):
        for _pre in optimizer.pre(ctx):
            bindings = _point_bindings(optimizer, ctx)
            signature = _signature(bindings)
            if signature in seen:
                continue
            seen.add(signature)
            points.append(bindings)
            if limit is not None and len(points) >= limit:
                return points
    return points


def _verified_act(
    optimizer: GeneratedOptimizer,
    program: Program,
    ctx: MatchContext,
    bindings: dict[str, object],
    verify: bool,
    verify_trials: int,
    verify_seed: int,
) -> None:
    """Fire the action, optionally differential-testing the result.

    With ``verify`` the program is snapshotted before the action and
    the equivalence oracle compares observable behaviour afterwards;
    a divergence raises :class:`repro.verify.VerificationError` with
    the offending application's bindings, leaving the (miscompiled)
    program state in place for inspection.
    """
    snapshot = program.clone() if verify else None
    optimizer.act(ctx)
    if snapshot is None:
        return
    from repro.verify.oracle import EquivalenceOracle, VerificationError

    oracle = EquivalenceOracle(trials=verify_trials, seed=verify_seed)
    report = oracle.check(snapshot, program)
    if not report.equivalent:
        raise VerificationError(
            f"{optimizer.name} changed behaviour at {bindings}:\n"
            f"{report.summary()}",
            report,
        )


def run_optimizer(
    optimizer: GeneratedOptimizer,
    program: Program,
    options: Optional[DriverOptions] = None,
    graph: Optional[DependenceGraph] = None,
    manager: Optional[AnalysisManager] = None,
) -> DriverResult:
    """The Figure 5 driver: transform ``program`` in place.

    Returns the applications performed with their individual costs.
    The caller owns the program object (clone first to preserve the
    original).  When no ``graph`` is supplied, dependences come from
    the analysis ``manager`` (created here if absent), which refreshes
    the graph incrementally between applications instead of rebuilding
    it from scratch.
    """
    options = options or DriverOptions()
    counters = CostCounters()
    result = DriverResult(optimizer=optimizer.name, counters=counters)
    applied_signatures: set[tuple] = set()
    start = time.perf_counter()

    manager = manager_for(program, manager)
    current_graph = graph
    while len(result.applications) < options.max_applications:
        ctx = make_context(program, current_graph, counters, manager)
        ctx.enforce_restrictions = options.enforce_restrictions
        optimizer.set_up(ctx)

        chosen: Optional[dict[str, object]] = None
        for _match in optimizer.match(ctx):
            for _pre in optimizer.pre(ctx):
                bindings = _point_bindings(optimizer, ctx)
                signature = _signature(bindings)
                if signature in applied_signatures:
                    continue
                if options.point_filter is not None and not (
                    options.point_filter(bindings)
                ):
                    continue
                applied_signatures.add(signature)
                chosen = bindings
                break
            if chosen is not None:
                break
        if chosen is None:
            break

        before = counters.snapshot()
        _verified_act(
            optimizer, program, ctx, chosen,
            options.verify, options.verify_trials, options.verify_seed,
        )
        if options.validate:
            from repro.ir.validate import validate_program

            validate_program(program)
        result.applications.append(
            ApplicationRecord(
                opt_name=optimizer.name,
                bindings=chosen,
                cost=counters.minus(before),
            )
        )
        if not options.apply_all:
            break
        current_graph = (
            None if options.recompute_dependences else ctx.graph
        )

    result.elapsed_seconds = time.perf_counter() - start
    return result


def apply_at_point(
    optimizer: GeneratedOptimizer,
    program: Program,
    point_index: int,
    graph: Optional[DependenceGraph] = None,
    enforce_restrictions: bool = True,
    verify: bool = False,
    verify_trials: int = 3,
    verify_seed: int = 0,
    manager: Optional[AnalysisManager] = None,
) -> DriverResult:
    """Apply an optimizer at the N-th application point only.

    This is the interface's "select application points" option; with
    ``enforce_restrictions=False`` it also implements "override
    dependence restrictions" (the Depend section's ``no`` clauses are
    ignored — the user takes responsibility).
    """
    counters = CostCounters()
    result = DriverResult(optimizer=optimizer.name, counters=counters)
    start = time.perf_counter()

    ctx = make_context(program, graph, counters, manager)
    ctx.enforce_restrictions = enforce_restrictions
    optimizer.set_up(ctx)
    seen = 0
    for _match in optimizer.match(ctx):
        for _pre in optimizer.pre(ctx):
            if seen == point_index:
                bindings = _point_bindings(optimizer, ctx)
                before = counters.snapshot()
                _verified_act(
                    optimizer, program, ctx, bindings,
                    verify, verify_trials, verify_seed,
                )
                result.applications.append(
                    ApplicationRecord(
                        opt_name=optimizer.name,
                        bindings=bindings,
                        cost=counters.minus(before),
                    )
                )
                result.elapsed_seconds = time.perf_counter() - start
                return result
            seen += 1
    result.elapsed_seconds = time.perf_counter() - start
    return result
