"""The standard optimizer driver (paper Figure 5).

The driver is the same for every generated optimizer: it calls the call
interface's ``set_up_OPT``, walks pattern matches (``match_OPT``),
checks preconditions (``pre_OPT``), and fires ``act_OPT`` at accepted
application points.  Extensions over the paper's pseudocode, all
exposed through the interactive interface the paper describes: finding
points without applying, applying at one chosen point or at all points,
overriding dependence restrictions, and optionally recomputing
dependences between applications.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.analysis.graph import DependenceGraph
from repro.analysis.manager import AnalysisManager, manager_for
from repro.genesis.cost import ApplicationRecord, CostCounters
from repro.genesis.generator import GeneratedOptimizer
from repro.genesis.library import MatchContext
from repro.genesis.matching import engine_for, point_signature
from repro.genesis.transaction import (
    ApplicationFailure,
    HealthLedger,
    ProgramTransaction,
)
from repro.ir.program import Program


@dataclass
class DriverOptions:
    """Knobs of the interactive interface (Figure 4, step 3.b.iii)."""

    #: apply at every (re-discovered) point rather than just the first
    apply_all: bool = False
    #: safety bound on repeated application (enabling chains terminate
    #: in practice; this guards against oscillating transformations)
    max_applications: int = 200
    #: recompute the dependence graph after each application
    recompute_dependences: bool = True
    #: honour the Depend section's 'no' restrictions
    enforce_restrictions: bool = True
    #: accept only points whose bindings satisfy this predicate
    point_filter: Optional[Callable[[dict[str, object]], bool]] = None
    #: validate IR well-formedness after every application; under
    #: containment a validation failure rolls the application back
    validate: bool = False
    #: differential-test every application against the equivalence
    #: oracle; under containment a divergence rolls the application
    #: back, otherwise it raises
    #: :class:`repro.verify.VerificationError`
    verify: bool = False
    #: random environments per oracle check when ``verify`` is on
    verify_trials: int = 3
    #: environment-generation seed for the in-line oracle
    verify_seed: int = 0
    #: what a failed application does — ``"rollback"`` restores the
    #: pre-apply state and records an :class:`ApplicationFailure`;
    #: ``"raise"`` restores the state, then re-raises; ``"abort"``
    #: re-raises with the half-transformed program left in place for
    #: inspection (the pre-containment behaviour)
    on_failure: str = "rollback"
    #: take a deep snapshot at every transaction begin, guaranteeing
    #: rollback even past untagged in-place mutations; with ``False``
    #: only the change-log undo path is available and an uncoverable
    #: failure raises :class:`repro.genesis.transaction.ContainmentError`
    transaction_snapshots: bool = True
    #: budget: stop this driver run after this many rolled-back
    #: applications (a pathological spec cannot spin forever)
    max_rollbacks: int = 8
    #: budget: wall-clock deadline for one driver run, in seconds
    deadline_seconds: Optional[float] = None
    #: budget: fuel — total pattern-match candidates considered across
    #: the run before the driver gives up
    max_match_attempts: Optional[int] = None
    #: how application points are discovered between applications:
    #: ``"network"`` (default) pulls from the catalog-wide shared
    #: discrimination network's agenda (see
    #: :mod:`repro.genesis.network`), falling back to per-spec sweeps
    #: when the network cannot serve the context; ``"worklist"`` sweeps
    #: through the per-spec matching engine (candidate indexes +
    #: dirty-region worklist, see :mod:`repro.genesis.matching`);
    #: ``"rescan"`` restarts the naive full scan from the top of the
    #: program after every application — the paper's Figure 5
    #: behaviour, kept as the benchmark baseline
    match_mode: str = "network"


@dataclass
class DriverResult:
    """Outcome of one driver run."""

    optimizer: str
    applications: list[ApplicationRecord] = field(default_factory=list)
    #: contained (rolled-back) application failures, in order
    failures: list[ApplicationFailure] = field(default_factory=list)
    counters: CostCounters = field(default_factory=CostCounters)
    elapsed_seconds: float = 0.0
    #: wall-clock spent discovering application points (the matching
    #: phase), under either ``match_mode``
    match_seconds: float = 0.0
    #: why the run ended early, if it did: ``"deadline"``, ``"fuel"``,
    #: ``"rollback-budget"`` or ``"quarantined"``
    stopped: Optional[str] = None

    @property
    def applied(self) -> int:
        return len(self.applications)

    @property
    def rollbacks(self) -> int:
        return len(self.failures)

    def __str__(self) -> str:
        text = (
            f"{self.optimizer}: {self.applied} application(s), "
            f"{self.counters}, {self.elapsed_seconds * 1e3:.2f} ms"
        )
        if self.failures:
            text += f", {len(self.failures)} rolled-back failure(s)"
        if self.stopped:
            text += f" [stopped: {self.stopped}]"
        return text


def _point_bindings(
    optimizer: GeneratedOptimizer, ctx: MatchContext
) -> dict[str, object]:
    """The bindings that identify an application point.

    Restricted to names actually bound by ``any``/``all`` clauses —
    leftover bindings from failed ``no``-clause scans are not part of
    the point's identity.
    """
    relevant = optimizer.action_names
    return {
        name: value
        for name, value in ctx.snapshot_bindings().items()
        if name in relevant
    }


#: A hashable identity for an application point.  Every binding value
#: participates: hashable values key by value, unhashable ones fall
#: back to identity-based keys instead of being silently dropped (or
#: raising).  Shared with the matching engine so cached sweeps and the
#: driver agree on point identity.
_signature = point_signature


def make_context(
    program: Program,
    graph: Optional[DependenceGraph] = None,
    counters: Optional[CostCounters] = None,
    manager: Optional[AnalysisManager] = None,
) -> MatchContext:
    """Build a match context, computing dependences when not supplied.

    Dependences come from the ``manager`` (created on demand), which
    updates its graph incrementally from the program's change log
    instead of rebuilding from scratch.  An explicit ``graph`` wins —
    callers use that to hand in a deliberately stale graph.
    """
    structure_provider = None
    if graph is None:
        owner = manager_for(program, manager)
        graph = owner.graph()
        structure_provider = owner.structure
    elif manager is not None and manager.program is program:
        structure_provider = manager.structure
    return MatchContext(
        program=program,
        graph=graph,
        counters=counters,
        structure_provider=structure_provider,
    )


def find_application_points(
    optimizer: GeneratedOptimizer,
    program: Program,
    graph: Optional[DependenceGraph] = None,
    counters: Optional[CostCounters] = None,
    enforce_restrictions: bool = True,
    limit: Optional[int] = None,
    manager: Optional[AnalysisManager] = None,
) -> list[dict[str, object]]:
    """All application points of an optimizer, *without* applying it.

    Each point is the binding environment of one complete
    (Code_Pattern × Depend) match.  Points are deduplicated by binding
    signature.  On an early return (``limit`` reached) the suspended
    ``match``/``pre`` generators are closed explicitly, so no
    half-finished scan keeps counting candidates against ``counters``
    (or pins program state) after this call returns.
    """
    ctx = make_context(program, graph, counters, manager)
    ctx.enforce_restrictions = enforce_restrictions
    optimizer.set_up(ctx)
    points: list[dict[str, object]] = []
    seen: set[tuple] = set()
    match_gen = optimizer.match(ctx)
    try:
        for _match in match_gen:
            pre_gen = optimizer.pre(ctx)
            try:
                for _pre in pre_gen:
                    bindings = _point_bindings(optimizer, ctx)
                    signature = _signature(bindings)
                    if signature in seen:
                        continue
                    seen.add(signature)
                    points.append(bindings)
                    if limit is not None and len(points) >= limit:
                        return points
            finally:
                pre_gen.close()
    finally:
        match_gen.close()
    return points


def _transactional_act(
    optimizer: GeneratedOptimizer,
    program: Program,
    ctx: MatchContext,
    bindings: dict[str, object],
    options: DriverOptions,
) -> Optional[ApplicationFailure]:
    """Fire the action inside a transaction; None means it committed.

    The transaction covers the generated ``act`` *and* its post-apply
    checks (IR validation with ``options.validate``, differential
    testing with ``options.verify``): any exception, validation
    failure or oracle divergence restores the pre-apply program state
    — via change-log undo when possible, the begin-time deep snapshot
    otherwise — and is returned as a structured
    :class:`ApplicationFailure`.  ``options.on_failure`` selects the
    legacy propagating behaviours instead (``"raise"`` rolls back then
    re-raises; ``"abort"`` re-raises over the half-transformed state).
    """
    need_snapshot = options.transaction_snapshots or options.verify
    txn = ProgramTransaction(program, snapshot=need_snapshot)
    txn.begin()
    baseline = txn.snapshot
    phase = "act"
    try:
        optimizer.act(ctx)
        if options.validate:
            phase = "validate"
            from repro.ir.validate import validate_program

            validate_program(program)
        if options.verify:
            phase = "verify"
            from repro.verify.oracle import (
                EquivalenceOracle,
                VerificationError,
            )

            assert baseline is not None
            oracle = EquivalenceOracle(
                trials=options.verify_trials, seed=options.verify_seed
            )
            report = oracle.check(baseline, program)
            if not report.equivalent:
                raise VerificationError(
                    f"{optimizer.name} changed behaviour at {bindings}:\n"
                    f"{report.summary()}",
                    report,
                )
    except Exception as error:
        if options.on_failure == "abort":
            txn.commit()  # leave the damaged state in place
            raise
        restored = txn.rollback()
        if options.on_failure == "raise":
            raise
        return ApplicationFailure(
            optimizer=optimizer.name,
            phase=phase,
            error_type=type(error).__name__,
            error=str(error),
            bindings=dict(bindings),
            restored=restored,
        )
    except BaseException:
        # KeyboardInterrupt/SystemExit: restore state, then propagate
        txn.rollback()
        raise
    txn.commit()
    return None


def run_optimizer(
    optimizer: GeneratedOptimizer,
    program: Program,
    options: Optional[DriverOptions] = None,
    graph: Optional[DependenceGraph] = None,
    manager: Optional[AnalysisManager] = None,
    health: Optional[HealthLedger] = None,
) -> DriverResult:
    """The Figure 5 driver: transform ``program`` in place.

    Returns the applications performed with their individual costs.
    The caller owns the program object (clone first to preserve the
    original).  When no ``graph`` is supplied, dependences come from
    the analysis ``manager`` (created here if absent), which refreshes
    the graph incrementally between applications instead of rebuilding
    it from scratch.

    Every application runs inside a transaction (see
    :func:`_transactional_act`): under the default
    ``on_failure="rollback"`` policy a failing application restores
    the pre-apply state, is recorded in ``result.failures``, and the
    point is retried on the next sweep (transient faults recover;
    deterministic ones burn the ``max_rollbacks`` budget and stop the
    run).  A ``health`` ledger, when supplied, feeds the per-optimizer
    circuit breaker shared across a pipeline or session.

    Point discovery between applications is governed by
    ``options.match_mode``: the default ``"network"`` pulls from the
    catalog-wide shared discrimination network's standing agenda
    (:mod:`repro.genesis.network`), re-running only the per-spec tails
    whose recorded support a change touched; ``"worklist"`` sweeps
    through the :mod:`repro.genesis.matching` engine, which serves
    candidates from shape-bucket indexes and — after a committed
    application — re-enumerates only the dirty region its transaction
    touched; ``"rescan"`` restarts the naive full scan from the top of
    the program each time (the paper's Figure 5 loop, kept as the
    benchmark baseline).  The network path falls back to per-spec
    sweeps whenever it cannot serve a context soundly, and is itself
    shadow-checked against full re-scans under ``REPRO_MATCH_CHECK=1``.
    """
    options = options or DriverOptions()
    counters = CostCounters()
    result = DriverResult(optimizer=optimizer.name, counters=counters)
    if health is not None and health.is_quarantined(optimizer.name):
        result.stopped = "quarantined"
        return result
    applied_signatures: set[tuple] = set()
    start = time.perf_counter()
    fuel_used = 0

    def out_of_time() -> bool:
        return (
            options.deadline_seconds is not None
            and time.perf_counter() - start > options.deadline_seconds
        )

    manager = manager_for(program, manager)
    engine = engine_for(manager) if options.match_mode != "rescan" else None
    current_graph = graph
    while len(result.applications) < options.max_applications:
        if len(result.failures) >= options.max_rollbacks:
            result.stopped = "rollback-budget"
            break
        if out_of_time():
            result.stopped = "deadline"
            break
        ctx = make_context(program, current_graph, counters, manager)
        ctx.enforce_restrictions = options.enforce_restrictions

        chosen: Optional[dict[str, object]] = None
        chosen_signature: Optional[tuple] = None
        discovery_started = time.perf_counter()
        if engine is not None:
            # the worklist may only serve sweeps whose graph is the
            # manager's own, current one: disabled recomputation pins
            # full sweeps (the engine itself rejects foreign graphs)
            allow_worklist = (
                options.recompute_dependences
                and options.enforce_restrictions
            )
            sweep = None
            if options.match_mode == "network" and allow_worklist:
                # the shared agenda; None when the network cannot
                # serve this context (per-spec sweep then decides)
                sweep = engine.network_sweep(optimizer, ctx)
            if sweep is None:
                sweep = engine.sweep(
                    optimizer, ctx, allow_worklist=allow_worklist
                )
            fuel_used += sweep.attempts
            if (
                options.max_match_attempts is not None
                and fuel_used > options.max_match_attempts
            ):
                result.stopped = "fuel"
                break
            if out_of_time():
                result.stopped = "deadline"
                break
            for signature, bindings in sweep.points:
                if signature in applied_signatures:
                    continue
                if options.point_filter is not None and not (
                    options.point_filter(bindings)
                ):
                    continue
                chosen_signature = signature
                chosen = dict(bindings)
                break
            if chosen is not None:
                applied_signatures.add(chosen_signature)
                optimizer.set_up(ctx)
                ctx.bindings.update(chosen)
        else:
            optimizer.set_up(ctx)
            for _match in optimizer.match(ctx):
                fuel_used += 1
                if (
                    options.max_match_attempts is not None
                    and fuel_used > options.max_match_attempts
                ):
                    result.stopped = "fuel"
                    break
                if out_of_time():
                    result.stopped = "deadline"
                    break
                for _pre in optimizer.pre(ctx):
                    bindings = _point_bindings(optimizer, ctx)
                    signature = _signature(bindings)
                    if signature in applied_signatures:
                        continue
                    if options.point_filter is not None and not (
                        options.point_filter(bindings)
                    ):
                        continue
                    applied_signatures.add(signature)
                    chosen = bindings
                    chosen_signature = signature
                    break
                if chosen is not None:
                    break
        result.match_seconds += time.perf_counter() - discovery_started
        if result.stopped is not None:
            break
        if chosen is None:
            break

        before = counters.snapshot()
        failure = _transactional_act(
            optimizer, program, ctx, chosen, options
        )
        if failure is not None:
            result.failures.append(failure)
            # the point may succeed on retry (transient fault), so its
            # signature is released; deterministic failures terminate
            # through the rollback budget or the circuit breaker
            applied_signatures.discard(chosen_signature)
            if health is not None and health.record_rollback(
                optimizer.name, failure
            ):
                result.stopped = "quarantined"
                break
            continue
        if health is not None:
            health.record_success(optimizer.name)
        result.applications.append(
            ApplicationRecord(
                opt_name=optimizer.name,
                bindings=chosen,
                cost=counters.minus(before),
            )
        )
        if not options.apply_all:
            break
        current_graph = (
            None if options.recompute_dependences else ctx.graph
        )

    result.elapsed_seconds = time.perf_counter() - start
    return result


def apply_at_point(
    optimizer: GeneratedOptimizer,
    program: Program,
    point_index: int,
    graph: Optional[DependenceGraph] = None,
    enforce_restrictions: bool = True,
    verify: bool = False,
    verify_trials: int = 3,
    verify_seed: int = 0,
    manager: Optional[AnalysisManager] = None,
    options: Optional[DriverOptions] = None,
) -> DriverResult:
    """Apply an optimizer at the N-th application point only.

    This is the interface's "select application points" option; with
    ``enforce_restrictions=False`` it also implements "override
    dependence restrictions" (the Depend section's ``no`` clauses are
    ignored — the user takes responsibility).  The application runs
    inside the same transaction as the full driver: under
    ``on_failure="rollback"`` a failure restores the pre-apply state
    and is recorded in ``result.failures``.  A stale ``point_index``
    (the program changed since the points were listed) simply finds no
    point and returns an empty result.
    """
    options = options or DriverOptions()
    counters = CostCounters()
    result = DriverResult(optimizer=optimizer.name, counters=counters)
    start = time.perf_counter()

    ctx = make_context(program, graph, counters, manager)
    ctx.enforce_restrictions = enforce_restrictions
    optimizer.set_up(ctx)
    seen = 0
    match_gen = optimizer.match(ctx)
    try:
        for _match in match_gen:
            pre_gen = optimizer.pre(ctx)
            try:
                for _pre in pre_gen:
                    if seen == point_index:
                        bindings = _point_bindings(optimizer, ctx)
                        before = counters.snapshot()
                        point_options = replace(
                            options,
                            verify=verify or options.verify,
                            verify_trials=verify_trials,
                            verify_seed=verify_seed,
                            enforce_restrictions=enforce_restrictions,
                        )
                        failure = _transactional_act(
                            optimizer, program, ctx, bindings, point_options
                        )
                        if failure is not None:
                            result.failures.append(failure)
                        else:
                            result.applications.append(
                                ApplicationRecord(
                                    opt_name=optimizer.name,
                                    bindings=bindings,
                                    cost=counters.minus(before),
                                )
                            )
                        result.elapsed_seconds = time.perf_counter() - start
                        return result
                    seen += 1
            finally:
                pre_gen.close()
    finally:
        match_gen.close()
    result.elapsed_seconds = time.perf_counter() - start
    return result
