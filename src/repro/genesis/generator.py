"""The GENesis generator: GOSpeL text in, optimizer out.

Implements the paper's Figure 4 algorithm:

    Step 1: input the GOSpeL specifications
    Step 2: analyze them and generate code to
            (a) set up the TYPE data structures,
            (b) search for the Code_Pattern,
            (c) check the Depend conditions,
            (d) perform the actions via library routines
    Step 3: construct the optimizer (packaging + interface)

Step 2 happens here (parse → semantic analysis → code generation →
``exec``); step 3 is :mod:`repro.genesis.session`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.genesis.codegen import GeneratedSource, generate_source
from repro.genesis.library import MatchContext
from repro.genesis.strategy import ClauseStrategy, StrategyPolicy
from repro.gospel.ast import Specification
from repro.gospel.parser import parse_spec
from repro.gospel.sema import AnalyzedSpec, analyze_spec


@dataclass
class GeneratedOptimizer:
    """A packaged optimizer produced by GENesis.

    Carries the four generated procedures, the emitted source text
    (inspectable, exactly like the paper's Figure 6 listing), the
    specification it came from and the per-clause implementation
    strategies chosen.
    """

    name: str
    spec: Specification
    analyzed: AnalyzedSpec
    source: str
    set_up: Callable[[MatchContext], int]
    match: Callable[[MatchContext], Iterator[bool]]
    pre: Callable[[MatchContext], Iterator[bool]]
    act: Callable[[MatchContext], int]
    strategies: list[ClauseStrategy] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    policy: StrategyPolicy = StrategyPolicy.HEURISTIC

    #: names that must be bound for the action section (for reporting)
    @property
    def action_names(self) -> frozenset[str]:
        return self.analyzed.action_names

    def describe(self) -> str:
        """A one-paragraph description for the interactive interface."""
        strategies = ", ".join(
            f"clause {i + 1}: {s.method}" for i, s in enumerate(self.strategies)
        )
        return (
            f"{self.name}: {len(self.spec.patterns)} pattern clause(s), "
            f"{len(self.spec.depends)} dependence clause(s), "
            f"{len(self.spec.actions)} action(s)"
            + (f" [{strategies}]" if strategies else "")
        )


def generate_optimizer(
    source: str,
    name: str = "OPT",
    policy: StrategyPolicy = StrategyPolicy.HEURISTIC,
) -> GeneratedOptimizer:
    """Generate an optimizer from GOSpeL specification text.

    This is the whole GENesis front half: parse, check, emit Python
    source for ``set_up_xxx``/``match_xxx``/``pre_xxx``/``act_xxx``,
    and ``exec`` it into callables.
    """
    spec = parse_spec(source, name=name)
    return generate_from_spec(spec, policy=policy)


def generate_from_spec(
    spec: Specification,
    policy: StrategyPolicy = StrategyPolicy.HEURISTIC,
) -> GeneratedOptimizer:
    """Generate an optimizer from an already-parsed specification."""
    analyzed = analyze_spec(spec)
    generated = generate_source(analyzed, policy=policy)
    namespace = _execute(generated)
    name = generated.name
    return GeneratedOptimizer(
        name=spec.name,
        spec=spec,
        analyzed=analyzed,
        source=generated.source,
        set_up=namespace[f"set_up_{name}"],
        match=namespace[f"match_{name}"],
        pre=namespace[f"pre_{name}"],
        act=namespace[f"act_{name}"],
        strategies=generated.strategies,
        warnings=generated.warnings,
        policy=policy,
    )


def _execute(generated: GeneratedSource) -> dict[str, object]:
    """``exec`` generated source into a fresh namespace.

    The paper compiles its generated C with a library; the Python
    analogue is compiling the emitted module text.
    """
    namespace: dict[str, object] = {}
    code = compile(
        generated.source, filename=f"<genesis:{generated.name}>", mode="exec"
    )
    exec(code, namespace)  # noqa: S102 - this is the generator's purpose
    return namespace
