"""The optimizer library: optimization-independent runtime routines.

"The generated code relies on a set of predefined routines found in the
optimizer library.  These routines are optimization independent and
only represent routines typically needed to perform optimizations.  The
library contains pattern matching routines, data dependence
verification procedures, and code transformation routines."

Generated optimizer code (see :mod:`repro.genesis.codegen`) imports
this module as ``lib`` and drives everything through a
:class:`MatchContext` — the runtime analogue of the paper's ``stlp``
structure — which carries the program, its dependence graph, the
current element bindings, and the cost counters of experiment E5.

Loop-typed elements bind to a :class:`LoopBinding` capturing the head
*and* end statement identities at match time (the stlp "entries are
filled in as the information relevant to the element is found"), so an
action sequence that moves loop delimiters — interchange, circulation —
keeps addressing the statements it matched, not whatever the mutated
nesting would now call ``L1.end``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence, Union

from repro.analysis.graph import DepEdge, DependenceGraph
from repro.analysis.subscript import (
    LoopContext,
    expand_direction_vectors,
    matches_anchored_pattern,
    matches_direction_pattern,
    test_access_pair,
)
from repro.ir.loops import StructureTable, trip_count
from repro.ir.program import Program
from repro.ir.quad import (
    BINARY_OPS,
    Opcode,
    Quad,
    UNARY_OPS,
)
from repro.ir.types import Affine, ArrayRef, Const, Operand, Var, operand_kind

from repro.genesis.cost import CostCounters


class GenesisRuntimeError(Exception):
    """Raised when generated code hits an inconsistent state."""


@dataclass(frozen=True)
class PosBinding:
    """A bound dependence position: operand slot plus the variable that
    the dependence involves (needed to rewrite uses inside subscripts)."""

    pos: str  # "a", "b", "result", "step"
    var: str  # variable or array name involved in the dependence

    def __str__(self) -> str:
        return f"{self.pos}:{self.var}"


@dataclass(frozen=True)
class LoopBinding:
    """A loop element: its head and end quads, captured at match time."""

    head: int
    end: int

    def __str__(self) -> str:
        return f"loop({self.head}..{self.end})"


class MatchContext:
    """Runtime state for one optimizer run over one program.

    The paper's ``stlp`` table: "identifying information about each
    statement or loop variable specified in the TYPE section ... filled
    in as the information relevant to the element is found".
    """

    def __init__(
        self,
        program: Program,
        graph: DependenceGraph,
        structure: Optional[StructureTable] = None,
        counters: Optional[CostCounters] = None,
        structure_provider: Optional[Callable[[], StructureTable]] = None,
    ):
        self.program = program
        self.graph = graph
        self._structure = structure
        self._structure_version = (
            program.version if structure is not None else -1
        )
        #: version-keyed table source shared across contexts (usually
        #: ``AnalysisManager.structure``) — consulted when no local
        #: table matches the current program version
        self.structure_provider = structure_provider
        self.counters = counters or CostCounters()
        self.bindings: dict[str, object] = {}
        self.declared: dict[str, str] = {}
        #: cleared when the user overrides dependence restrictions
        #: (paper Figure 4, step 3.b.iii.3) — 'no' clauses stop failing
        self.enforce_restrictions = True
        self._temp_counter = 0
        #: candidate index attached by the matching engine
        #: (:class:`repro.genesis.matching.MatchIndex`); ``None`` keeps
        #: every enumerator on its naive full scan
        self.match_index: Optional[object] = None
        #: one-shot worklist restriction armed by the matching engine:
        #: the *first* seed enumeration after arming iterates only
        #: these statements, then the restriction is consumed so
        #: pre-phase enumerations see the whole program again
        self._seed_restriction: Optional[tuple[int, ...]] = None

    def arm_seed_restriction(self, qids: Sequence[int]) -> None:
        """Restrict the next seed enumeration to ``qids`` (one-shot)."""
        self._seed_restriction = tuple(qids)

    def take_seed_restriction(self) -> Optional[tuple[int, ...]]:
        """Consume the one-shot seed restriction, if armed."""
        restriction = self._seed_restriction
        self._seed_restriction = None
        return restriction

    # ------------------------------------------------------------------
    # stlp management (used by generated set_up_XXX)
    # ------------------------------------------------------------------
    def declare(self, name: str, elem_type: str) -> None:
        """Initialize an stlp entry for a TYPE-section variable."""
        self.declared[name] = elem_type
        self.bindings.pop(name, None)

    def bind(self, name: str, value: object) -> None:
        self.bindings[name] = value

    def unbind(self, name: str) -> None:
        self.bindings.pop(name, None)

    def get(self, name: str) -> object:
        if name not in self.bindings:
            raise GenesisRuntimeError(f"element {name!r} is not bound")
        return self.bindings[name]

    def get_qid(self, name: str) -> int:
        """The statement identity of a binding (a loop's head quad)."""
        value = self.get(name)
        if isinstance(value, LoopBinding):
            return value.head
        if not isinstance(value, int):
            raise GenesisRuntimeError(
                f"element {name!r} is bound to {value!r}, not a statement"
            )
        return value

    def is_bound(self, name: str) -> bool:
        return name in self.bindings

    def snapshot_bindings(self) -> dict[str, object]:
        return dict(self.bindings)

    def fresh_temp(self) -> Var:
        """A fresh temporary for action templates (``newtemp``)."""
        existing = self.program.scalar_names()
        while True:
            candidate = Var(f"g${self._temp_counter}")
            self._temp_counter += 1
            if candidate.name not in existing:
                return candidate

    @property
    def structure(self) -> StructureTable:
        """The loop/conditional table, rebuilt lazily per program version.

        Laziness matters during action sequences: a transformation like
        loop distribution passes through intermediate states whose
        region markers don't nest (a copied DO head awaiting its
        ENDDO); the table is only rebuilt — and validated — when
        something actually consults it.
        """
        if (
            self._structure is not None
            and self._structure_version == self.program.version
        ):
            return self._structure
        if self.structure_provider is not None:
            return self.structure_provider()
        self._structure = StructureTable(self.program)
        self._structure_version = self.program.version
        return self._structure

    def refresh_structure(self) -> None:
        """Invalidate the loop table after the program was transformed."""
        self._structure = None
        self._structure_version = -1


def _as_qid(value: object) -> int:
    if isinstance(value, LoopBinding):
        return value.head
    if isinstance(value, int):
        return value
    raise GenesisRuntimeError(f"expected a statement, got {value!r}")


# ----------------------------------------------------------------------
# pattern-matching routines (find_statement, find_nested_loops, ...)
# ----------------------------------------------------------------------
def statements(
    ctx: MatchContext, shape: Optional[Sequence[str]] = None
) -> Iterator[int]:
    """All statements in program order (candidate enumeration).

    ``shape`` is an optional superset hint derived from the clause's
    format at generation time (see :func:`statement_shapes`): when a
    candidate index is attached to the context, only the statements in
    the named shape buckets are enumerated.  The full format check
    still runs downstream, so the hint is purely a candidate filter.

    A one-shot seed restriction (armed by the worklist engine) takes
    precedence and enumerates only the dirty region.
    """
    restriction = ctx.take_seed_restriction()
    if restriction is not None:
        index = ctx.match_index
        if index is not None and shape is not None:
            if index.stats is not None:  # type: ignore[attr-defined]
                index.stats.index_hits += 1  # type: ignore[attr-defined]
            for qid in restriction:
                if index.matches_shape(qid, shape):  # type: ignore[attr-defined]
                    ctx.counters.candidates += 1
                    yield qid
            return
        for qid in restriction:
            ctx.counters.candidates += 1
            yield qid
        return
    index = ctx.match_index
    if index is not None and shape is not None:
        for qid in index.statements_of(shape):  # type: ignore[attr-defined]
            ctx.counters.candidates += 1
            yield qid
        return
    for quad in ctx.program:
        ctx.counters.candidates += 1
        yield quad.qid


def loops(ctx: MatchContext) -> Iterator[LoopBinding]:
    """All loops, head and end captured."""
    index = ctx.match_index
    if index is not None:
        for head, end in index.loops_in_order():  # type: ignore[attr-defined]
            ctx.counters.candidates += 1
            yield LoopBinding(head=head, end=end)
        return
    for loop in ctx.structure.loops_in_order():
        ctx.counters.candidates += 1
        yield LoopBinding(head=loop.head_qid, end=loop.end_qid)


def _pair_binding(ctx: MatchContext, head_qid: int) -> LoopBinding:
    loop = ctx.structure.loop_of(head_qid)
    return LoopBinding(head=loop.head_qid, end=loop.end_qid)


def _index_pairs(
    ctx: MatchContext, table: str
) -> Optional[Iterator[tuple[LoopBinding, LoopBinding]]]:
    """Serve a loop-pair enumeration from the candidate index, if any."""
    index = ctx.match_index
    if index is None:
        return None
    pairs = getattr(index, table)()

    def emit() -> Iterator[tuple[LoopBinding, LoopBinding]]:
        for (head_a, end_a), (head_b, end_b) in pairs:
            ctx.counters.candidates += 1
            yield (
                LoopBinding(head=head_a, end=end_a),
                LoopBinding(head=head_b, end=end_b),
            )

    return emit()


def nested_loop_pairs(ctx: MatchContext) -> Iterator[tuple[LoopBinding, LoopBinding]]:
    """All (outer, inner) nested loop pairs."""
    indexed = _index_pairs(ctx, "nested_pairs")
    if indexed is not None:
        yield from indexed
        return
    for outer, inner in ctx.structure.nested_pairs():
        ctx.counters.candidates += 1
        yield _pair_binding(ctx, outer), _pair_binding(ctx, inner)


def tight_loop_pairs(ctx: MatchContext) -> Iterator[tuple[LoopBinding, LoopBinding]]:
    """All tightly nested (outer, inner) pairs."""
    indexed = _index_pairs(ctx, "tight_pairs")
    if indexed is not None:
        yield from indexed
        return
    for outer, inner in ctx.structure.tight_pairs():
        ctx.counters.candidates += 1
        yield _pair_binding(ctx, outer), _pair_binding(ctx, inner)


def adjacent_loop_pairs(ctx: MatchContext) -> Iterator[tuple[LoopBinding, LoopBinding]]:
    """All adjacent (first, second) loop pairs."""
    indexed = _index_pairs(ctx, "adjacent_pairs")
    if indexed is not None:
        yield from indexed
        return
    for first, second in ctx.structure.adjacent_pairs():
        ctx.counters.candidates += 1
        yield _pair_binding(ctx, first), _pair_binding(ctx, second)


# ----------------------------------------------------------------------
# attribute evaluation
# ----------------------------------------------------------------------
def stmt_attr(ctx: MatchContext, qid: int, attr: str) -> object:
    """Evaluate one statement attribute (.opc, .opr_2, .next, ...)."""
    quad = ctx.program.quad(qid)
    if attr == "opc":
        return "assign" if quad.opcode is Opcode.ASSIGN else quad.opcode.value
    if attr == "opr_1":
        return quad.result
    if attr == "opr_2":
        return quad.a
    if attr == "opr_3":
        return quad.b
    if attr == "next":
        follower = ctx.program.next_qid_of(qid)
        if follower is None:
            raise GenesisRuntimeError(f"S{qid}.next past end of program")
        return follower
    if attr == "prev":
        precursor = ctx.program.prev_qid_of(qid)
        if precursor is None:
            raise GenesisRuntimeError(f"S{qid}.prev before start of program")
        return precursor
    raise GenesisRuntimeError(f"unknown statement attribute .{attr}")


def loop_attr(ctx: MatchContext, loop: LoopBinding, attr: str) -> object:
    """Evaluate one loop attribute (.head, .body, .init, ...).

    ``head`` and ``end`` come from the binding (match-time identities);
    ``body`` is the statements *currently* between them.
    """
    if attr == "head":
        return loop.head
    if attr == "end":
        return loop.end
    head = ctx.program.quad(loop.head)
    if attr == "lcv":
        return head.result
    if attr == "init":
        return head.a
    if attr == "final":
        return head.b
    if attr == "step":
        return head.step
    if attr == "body":
        return loop_body(ctx, loop)
    if attr in ("next", "prev"):
        ordered = [
            LoopBinding(entry.head_qid, entry.end_qid)
            for entry in ctx.structure.loops_in_order()
        ]
        heads = [entry.head for entry in ordered]
        index = heads.index(loop.head) + (1 if attr == "next" else -1)
        if not 0 <= index < len(ordered):
            raise GenesisRuntimeError(f"loop.{attr} out of range")
        return ordered[index]
    raise GenesisRuntimeError(f"unknown loop attribute .{attr}")


def eval_ref(ctx: MatchContext, base: str, attrs: Sequence[str]) -> object:
    """Evaluate a GOSpeL reference chain against the current bindings."""
    value: object = ctx.get(base)
    for attr in attrs:
        if isinstance(value, LoopBinding):
            value = loop_attr(ctx, value, attr)
        elif isinstance(value, int):
            value = stmt_attr(ctx, value, attr)
        else:
            raise GenesisRuntimeError(
                f"cannot take .{attr} of {value!r} (in {base})"
            )
    return value


# ----------------------------------------------------------------------
# value functions: type(), class(), trip(), value(), operand()
# ----------------------------------------------------------------------
def kind_of(value: object) -> str:
    """GOSpeL ``type()``: const / var / array / none."""
    if value is None:
        return "none"
    if isinstance(value, (Const, Var, ArrayRef)):
        return operand_kind(value)
    raise GenesisRuntimeError(f"type() of non-operand {value!r}")


#: Statement classes reported by ``class()``.
_CLASS_BY_OPCODE = {
    Opcode.ASSIGN: "assign",
    Opcode.DO: "loop_head",
    Opcode.DOALL: "loop_head",
    Opcode.IF: "if_stmt",
    Opcode.READ: "io",
    Opcode.WRITE: "io",
}


def statement_class(quad: Quad) -> str:
    """The ``class()`` token of one quad (shared with the candidate
    index, which must bucket by *exactly* this classification)."""
    opcode = quad.opcode
    if opcode in BINARY_OPS:
        return "binop"
    if opcode in UNARY_OPS:
        return "unop"
    return _CLASS_BY_OPCODE.get(opcode, "marker")


def statement_shapes(quad: Quad) -> tuple[str, ...]:
    """Shape-bucket tokens for the candidate index.

    Every quad carries its class token; assignments additionally carry
    an ``assign:<rhs-kind>`` token (const / var / array) so constant-
    and copy-propagation seeds enumerate only matching candidates.
    """
    token = statement_class(quad)
    if token == "assign" and quad.a is not None:
        return (token, f"assign:{operand_kind(quad.a)}")
    return (token,)


def class_of(ctx: MatchContext, stmt: object) -> str:
    """GOSpeL ``class()``: assign / binop / unop / loop_head / if_stmt /
    io / marker."""
    return statement_class(ctx.program.quad(_as_qid(stmt)))


def trip_of(ctx: MatchContext, loop: object) -> Optional[int]:
    """GOSpeL ``trip()``: the constant trip count, or None."""
    return trip_count(ctx.program.quad(_as_qid(loop)))


def value_of(ctx: MatchContext, stmt: object) -> Const:
    """GOSpeL ``value(S)``: fold a constant computation to its result.

    Defined for binary/unary statements whose source operands are all
    constants — the folding primitive Constant Folding (CFO) needs.
    """
    quad = ctx.program.quad(_as_qid(stmt))
    from repro.ir import interp

    if quad.opcode in BINARY_OPS:
        if not isinstance(quad.a, Const) or not isinstance(quad.b, Const):
            raise GenesisRuntimeError(f"value() of non-constant S{quad.qid}")
        result = interp._apply_binary(quad.opcode, quad.a.value, quad.b.value)
        return Const(result)
    if quad.opcode in UNARY_OPS:
        if not isinstance(quad.a, Const):
            raise GenesisRuntimeError(f"value() of non-constant S{quad.qid}")
        return Const(interp._apply_unary(quad.opcode, quad.a.value))
    if quad.opcode is Opcode.ASSIGN and isinstance(quad.a, Const):
        return quad.a
    raise GenesisRuntimeError(f"value() undefined for {quad}")


def position_of(ctx: MatchContext, stmt: object) -> int:
    """GOSpeL ``pos(S)``: the statement's current program position.

    Lets specifications order statements textually (``pos(Si) <
    pos(Sj)``), which common-subexpression elimination needs to pick
    the earlier computation as the one to reuse.
    """
    return ctx.program.position(_as_qid(stmt))


def operand_at(ctx: MatchContext, stmt: object, pos: Union[str, PosBinding]) -> object:
    """GOSpeL ``operand(S, pos)``: the operand at a bound position."""
    name = pos.pos if isinstance(pos, PosBinding) else pos
    return ctx.program.quad(_as_qid(stmt)).operand_at(name)


# ----------------------------------------------------------------------
# comparisons (short-circuit order preserved; every call is one check)
# ----------------------------------------------------------------------
def compare(ctx: MatchContext, relop: str, left: object, right: object) -> bool:
    """Evaluate ``left relop right`` with GOSpeL's overloading.

    Counts one pattern check.  Handles operand structural equality,
    statement identity, opcode/class symbols (including the ``compute``
    class covering assign/binop/unop), and numbers.
    """
    ctx.counters.pattern_checks += 1
    left = _unwrap(left)
    right = _unwrap(right)

    if isinstance(left, str) or isinstance(right, str):
        return _compare_symbol(relop, left, right)
    if isinstance(left, Operand) or isinstance(right, Operand):
        return _compare_operand(relop, left, right)
    if left is None or right is None:
        if relop == "==":
            return left is right
        if relop == "!=":
            return left is not right
        return False
    if relop == "==":
        return left == right
    if relop == "!=":
        return left != right
    if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
        raise GenesisRuntimeError(f"cannot order {left!r} and {right!r}")
    return _numeric(relop, left, right)


def _unwrap(value: object) -> object:
    if isinstance(value, PosBinding):
        return value.pos
    if isinstance(value, LoopBinding):
        return value.head
    return value


#: symbol aliases: GOSpeL names -> sets of matching concrete values
_SYMBOL_CLASSES = {
    "compute": frozenset({"assign", "binop", "unop"}),
}

_OPCODE_ALIASES = {
    "add": "+", "sub": "-", "mul": "*", "div": "/", "pow": "**",
}


def _compare_symbol(relop: str, left: object, right: object) -> bool:
    if relop not in ("==", "!="):
        raise GenesisRuntimeError("symbols only support == and !=")
    symbol = right if isinstance(right, str) else left
    other = left if isinstance(right, str) else right
    if isinstance(other, Operand) or other is None:
        other = kind_of(other)
    if not isinstance(other, str):
        return relop == "!="
    symbol_norm = _OPCODE_ALIASES.get(symbol, symbol)
    other_norm = _OPCODE_ALIASES.get(other, other)
    expansion = _SYMBOL_CLASSES.get(symbol_norm)
    if expansion is not None:
        result = other_norm in expansion
    else:
        expansion_other = _SYMBOL_CLASSES.get(other_norm)
        if expansion_other is not None:
            result = symbol_norm in expansion_other
        else:
            result = symbol_norm == other_norm
    return result if relop == "==" else not result


def _compare_operand(relop: str, left: object, right: object) -> bool:
    if relop not in ("==", "!=", "<", "<=", ">", ">="):
        raise GenesisRuntimeError(f"unknown relop {relop!r}")
    left_val = left.value if isinstance(left, Const) else left
    right_val = right.value if isinstance(right, Const) else right
    if isinstance(left_val, (int, float)) and isinstance(right_val, (int, float)):
        return _numeric(relop, left_val, right_val)
    if relop == "==":
        return left == right
    if relop == "!=":
        return left != right
    return False  # cannot order non-constant operands


def _numeric(relop: str, left: float, right: float) -> bool:
    if relop == "==":
        return left == right
    if relop == "!=":
        return left != right
    if relop == "<":
        return left < right
    if relop == "<=":
        return left <= right
    if relop == ">":
        return left > right
    return left >= right


# ----------------------------------------------------------------------
# dependence verification (the paper's Figure 7 ``dep`` routine)
# ----------------------------------------------------------------------
def _anchor_level(
    ctx: MatchContext,
    anchor: Optional[object],
    pattern: Optional[Sequence[str]],
) -> Optional[int]:
    """0-based nest level where an anchored pattern starts.

    The *last* element of the written vector names the anchor loop's
    own level (a ``(<,>)`` in a clause over the inner loop's body spans
    the pair's two levels; a ``(<)`` in a single-loop clause is that
    loop's level), so the pattern starts ``len(pattern) - 1`` levels
    above the anchor loop.
    """
    if anchor is None or pattern is None:
        return None
    head = _as_qid(anchor)
    depth = ctx.structure.nesting_depth(head)
    return max(0, depth - (len(pattern) - 1))


def _vector_ok(
    ctx: MatchContext,
    edge: DepEdge,
    pattern: Optional[Sequence[str]],
    anchor: Optional[object],
) -> bool:
    level = _anchor_level(ctx, anchor, pattern)
    if level is None:
        return matches_direction_pattern(edge.vector, pattern)
    return matches_anchored_pattern(edge.vector, pattern, level)


def dep_exists(
    ctx: MatchContext,
    kind: str,
    src: Optional[object],
    dst: Optional[object],
    pattern: Optional[Sequence[str]] = None,
    dst_pos: Optional[PosBinding] = None,
    anchor: Optional[object] = None,
) -> bool:
    """Figure 7's ``TYPE == IF`` mode: does the dependence exist?

    With ``dst_pos`` given, only dependences landing on that operand
    position (and variable) count — the unification semantics of a
    re-used ``pos`` name.  With ``anchor`` given, direction patterns
    are interpreted relative to that loop's nest level.
    """
    ctx.counters.dep_checks += 1
    src_qid = _as_qid(src) if src is not None else None
    dst_qid = _as_qid(dst) if dst is not None else None
    if kind == "fused":
        return bool(_fused_edges(ctx, src_qid, dst_qid, pattern))
    edges = ctx.graph.query(kind, src=src_qid, dst=dst_qid)
    for edge in edges:
        if not _vector_ok(ctx, edge, pattern, anchor):
            continue
        if dst_pos is not None and not (
            edge.dst_pos == dst_pos.pos and edge.var == dst_pos.var
        ):
            continue
        return True
    return False


def deps_from(
    ctx: MatchContext,
    kind: str,
    src: object,
    pattern: Optional[Sequence[str]] = None,
    anchor: Optional[object] = None,
) -> Iterator[DepEdge]:
    """Figure 7's ``TYPE == LST`` mode with the source known: enumerate
    terminating statements of matching dependences."""
    for edge in ctx.graph.query(kind, src=_as_qid(src)):
        ctx.counters.dep_checks += 1
        if not _vector_ok(ctx, edge, pattern, anchor):
            continue
        if not _edge_alive(ctx, edge):
            continue  # stale edge: the user kept an old dependence graph
        yield edge


def deps_to(
    ctx: MatchContext,
    kind: str,
    dst: object,
    pattern: Optional[Sequence[str]] = None,
    anchor: Optional[object] = None,
) -> Iterator[DepEdge]:
    """Figure 7's ``TYPE == LST`` mode with the sink known: enumerate
    emanating statements of matching dependences."""
    for edge in ctx.graph.query(kind, dst=_as_qid(dst)):
        ctx.counters.dep_checks += 1
        if not _vector_ok(ctx, edge, pattern, anchor):
            continue
        if not _edge_alive(ctx, edge):
            continue
        yield edge


def dep_edges(
    ctx: MatchContext,
    kind: str,
    pattern: Optional[Sequence[str]] = None,
    anchor: Optional[object] = None,
) -> Iterator[DepEdge]:
    """All dependences of a kind (both endpoints open)."""
    for edge in ctx.graph.query(kind):
        ctx.counters.dep_checks += 1
        if not _vector_ok(ctx, edge, pattern, anchor):
            continue
        if not _edge_alive(ctx, edge):
            continue
        yield edge


def dep_candidates(
    ctx: MatchContext,
    specs: Sequence[tuple[str, Optional[Sequence[str]]]],
    src: Optional[object] = None,
    dst: Optional[object] = None,
    anchor: Optional[object] = None,
) -> Iterator[DepEdge]:
    """Union of several dependence kinds' edge sets.

    Drives deps-first implementations of OR conditions like
    ``flow_dep(Sm, Sn, (<)) OR anti_dep(Sm, Sn, (<)) OR ...``: each
    ``(kind, pattern)`` spec enumerates as with :func:`deps_from` /
    :func:`deps_to` / :func:`dep_edges`, duplicates suppressed.
    """
    seen: set[DepEdge] = set()
    for kind, pattern in specs:
        if src is not None:
            edges = deps_from(ctx, kind, src, pattern, anchor)
        elif dst is not None:
            edges = deps_to(ctx, kind, dst, pattern, anchor)
        else:
            edges = dep_edges(ctx, kind, pattern, anchor)
        for edge in edges:
            if edge in seen:
                continue
            seen.add(edge)
            yield edge


def _edge_alive(ctx: MatchContext, edge: DepEdge) -> bool:
    """Both endpoints still exist (guards stale graphs when the user
    disables dependence recomputation between applications)."""
    return ctx.program.contains(edge.src) and ctx.program.contains(edge.dst)


def dep(
    ctx: MatchContext,
    search_type: str,
    kind: str,
    src: Optional[object],
    dst: Optional[object],
    pattern: Optional[Sequence[str]] = None,
) -> object:
    """A faithful port of the paper's Figure 7 ``dep`` routine.

    ``search_type`` is ``"IF"`` (both statements known: return 1/0) or
    ``"LST"`` (one endpoint known: return the first matching other
    endpoint's qid, or 0).
    """
    if search_type == "IF":
        return 1 if dep_exists(ctx, kind, src, dst, pattern) else 0
    if search_type == "LST":
        if src is not None:
            for edge in deps_from(ctx, kind, src, pattern):
                return edge.dst
            return 0
        if dst is not None:
            for edge in deps_to(ctx, kind, dst, pattern):
                return edge.src
            return 0
        raise GenesisRuntimeError("LST search needs one known endpoint")
    raise GenesisRuntimeError(f"unknown dep search type {search_type!r}")


# -- virtual fusion dependences ----------------------------------------
def _fused_edges(
    ctx: MatchContext,
    src: Optional[int],
    dst: Optional[int],
    pattern: Optional[Sequence[str]],
) -> list[tuple[int, int, tuple[str, ...]]]:
    """Dependences *as if* the loops containing src and dst were fused.

    Used by the FUS specification: its legality condition speaks about
    direction vectors in the fused loop, which do not exist in the
    unfused program.  Subscript tests run with the two loop control
    variables identified.
    """
    if src is None or dst is None:
        raise GenesisRuntimeError("fused_dep needs both statements")
    return fused_pair_directions(ctx.program, ctx.structure, src, dst, pattern)


def fused_pair_directions(
    program: Program,
    structure: StructureTable,
    src: int,
    dst: int,
    pattern: Optional[Sequence[str]],
) -> list[tuple[int, int, tuple[str, ...]]]:
    """Fused-loop dependence vectors for one statement pair.

    The per-pair legality core, shared with the hand-coded FUS baseline
    (:mod:`repro.opts.handcoded.loop`) so the two implementations'
    verdicts stay identical by construction.
    """
    # The loops being fused are the outermost ancestors on which the two
    # statements' loop chains diverge — not the innermost enclosing
    # loops, which may be nested inner loops with unrelated control
    # variables.
    src_chain = structure.loop_chain(src)
    dst_chain = structure.loop_chain(dst)
    src_loop: Optional[int] = None
    dst_loop: Optional[int] = None
    fork_depth = 0
    for depth in range(max(len(src_chain), len(dst_chain))):
        head_a = src_chain[depth] if depth < len(src_chain) else None
        head_b = dst_chain[depth] if depth < len(dst_chain) else None
        if head_a != head_b:
            src_loop, dst_loop, fork_depth = head_a, head_b, depth
            break
    if src_loop is None or dst_loop is None:
        return []
    src_head = program.quad(src_loop)
    dst_head = program.quad(dst_loop)
    src_lcv = src_head.result.name  # type: ignore[union-attr]
    dst_lcv = dst_head.result.name  # type: ignore[union-attr]

    def inner_lcvs(chain: Sequence[int]) -> set[str]:
        names = set()
        for head_qid in chain[fork_depth + 1 :]:
            result = program.quad(head_qid).result
            if isinstance(result, Var):
                names.add(result.name)
        return names

    # Variables of loops nested *inside* the fused loops vary within one
    # fused iteration; tagging them per side keeps the subscript tester
    # from identifying the two sides' unrelated instances (and from
    # treating them as loop-invariant symbols).
    src_varying = inner_lcvs(src_chain)
    dst_varying = inner_lcvs(dst_chain)

    results: list[tuple[int, int, tuple[str, ...]]] = []
    src_quad = program.quad(src)
    dst_quad = program.quad(dst)
    context = [LoopContext(var=src_lcv, trip_count=trip_count(src_head))]

    def rename(
        ref: ArrayRef, old: str, new: str, varying: set[str], tag: str
    ) -> ArrayRef:
        subs: list[Union[Affine, Var]] = []
        for sub in ref.subscripts:
            if isinstance(sub, Var) and sub.name == old:
                sub = Affine.var(new)
            if isinstance(sub, Affine):
                sub = sub.substitute(old, Affine.var(new))
                for name in varying:
                    sub = sub.substitute(name, Affine.var(name + tag))
            subs.append(sub)
        return ArrayRef(ref.name, tuple(subs))

    for src_ref, src_write in _element_accesses(src_quad):
        for dst_ref, dst_write in _element_accesses(dst_quad):
            if src_ref.name != dst_ref.name:
                continue
            if not (src_write or dst_write):
                continue
            aligned_src = rename(
                src_ref, src_lcv, src_lcv, src_varying, "#1"
            )
            aligned_dst = rename(
                dst_ref, dst_lcv, src_lcv, dst_varying, "#2"
            )
            per_level = test_access_pair(
                aligned_src.subscripts, aligned_dst.subscripts, context
            )
            if per_level is None:
                continue
            for vector in expand_direction_vectors(per_level):
                if matches_direction_pattern(vector, pattern):
                    results.append((src, dst, vector))
    # Scalars shared between the loop bodies also fuse into carried
    # dependences — in *any* of the three kinds: a value L1 computes and
    # L2 reads (flow), a value L1 reads and L2 overwrites (anti: the
    # original program finishes every L1 read before the first L2
    # write), or a value both redefine (output).  Direction unknown,
    # so all three are conservative matches.  The fused control
    # variables are exempt: L2's header reinitializes them.
    lcv_names = {src_lcv, dst_lcv}
    src_def = src_quad.defined_scalar()
    dst_def = dst_quad.defined_scalar()
    shared: set[str] = set()
    if src_def is not None and src_def in dst_quad.used_scalar_names():
        shared.add(src_def)
    if dst_def is not None and dst_def in src_quad.used_scalar_names():
        shared.add(dst_def)
    if src_def is not None and src_def == dst_def:
        shared.add(src_def)
    if shared - lcv_names:
        for vector_dir in ("<", "=", ">"):
            if matches_direction_pattern((vector_dir,), pattern):
                results.append((src, dst, (vector_dir,)))
                break
    return results


def _element_accesses(quad: Quad) -> list[tuple[ArrayRef, bool]]:
    accesses: list[tuple[ArrayRef, bool]] = []
    written = quad.defined_array()
    if written is not None:
        accesses.append((written, True))
    for _pos, ref in quad.used_array_refs():
        accesses.append((ref, False))
    return accesses


# ----------------------------------------------------------------------
# set operations
# ----------------------------------------------------------------------
def loop_body(ctx: MatchContext, loop: object) -> tuple[int, ...]:
    """The statements currently between a loop's head and end quads."""
    if isinstance(loop, LoopBinding):
        head_position = ctx.program.position(loop.head)
        end_position = ctx.program.position(loop.end)
        return tuple(
            ctx.program[i].qid for i in range(head_position + 1, end_position)
        )
    return tuple(ctx.structure.loop_of(_as_qid(loop)).body_qids)


def member(ctx: MatchContext, qid: object, elements: Sequence[int]) -> bool:
    """GOSpeL ``mem(S, Set)`` — counts one membership check."""
    ctx.counters.mem_checks += 1
    return _as_qid(qid) in set(elements)


def path_set(ctx: MatchContext, src: object, dst: object) -> tuple[int, ...]:
    """GOSpeL ``path(S, S')``: statements possibly executed between the
    two on some run.

    With structured control flow every acyclic path visits only
    statements between the two program positions; when the interval
    cuts *into* a loop, later iterations interleave the rest of that
    loop's body between the endpoints, so the interval is widened to
    whole loops before being returned.

    An endpoint that the widening pulled strictly inside the interval
    stays in the set: its other-iteration instances execute between
    the two endpoint executions (a use inside a loop that also kills
    the copied variable kills it for every later iteration).
    """
    src_position = ctx.program.position(_as_qid(src))
    dst_position = ctx.program.position(_as_qid(dst))
    low, high = sorted((src_position, dst_position))

    position = ctx.program.position
    intervals = [
        (position(loop.head_qid), position(loop.end_qid))
        for loop in ctx.structure.loops_in_order()
    ]
    changed = True
    while changed:
        changed = False
        for head_position, end_position in intervals:
            overlaps = head_position < high and end_position > low
            if not overlaps:
                continue
            if low > head_position and high < end_position:
                continue  # both endpoints inside the loop: no widening
            if head_position < low:
                low = head_position
                changed = True
            if end_position > high:
                high = end_position
                changed = True
    return tuple(
        ctx.program[i].qid for i in range(low + 1, high)
    )


def as_element_set(value: object) -> tuple[int, ...]:
    """Coerce a binding to a statement set.

    An ``all``-quantified clause binds its variable to a tuple of
    statements; a single statement coerces to a one-element set, so
    ``forall Sx in Sj`` works with either binding shape.
    """
    if isinstance(value, tuple):
        return value
    if isinstance(value, LoopBinding):
        raise GenesisRuntimeError(
            "a loop is not a statement set; use its .body"
        )
    if isinstance(value, int):
        return (value,)
    raise GenesisRuntimeError(f"not a statement set: {value!r}")


def region_set(ctx: MatchContext, start: object, stop: object) -> tuple[int, ...]:
    """GOSpeL ``region(S, S')``: statements textually strictly between.

    Unlike :func:`path_set` this is a *static* segment — no widening —
    used to name parts of a loop body (loop distribution's cut).
    """
    start_position = ctx.program.position(_as_qid(start))
    stop_position = ctx.program.position(_as_qid(stop))
    low, high = sorted((start_position, stop_position))
    return tuple(ctx.program[i].qid for i in range(low + 1, high))


def set_inter(left: Sequence[int], right: Sequence[int]) -> tuple[int, ...]:
    """GOSpeL ``inter(s1, s2)``, preserving the first set's order."""
    members = set(right)
    return tuple(qid for qid in left if qid in members)


def set_union(left: Sequence[int], right: Sequence[int]) -> tuple[int, ...]:
    """GOSpeL ``union(s1, s2)``, left order first."""
    seen = set(left)
    return tuple(left) + tuple(q for q in right if q not in seen)


def uses_in(
    ctx: MatchContext, operand: object, elements: Sequence[int]
) -> list[tuple[int, PosBinding]]:
    """Use sites of a scalar operand within a statement set.

    Yields ``(qid, PosBinding)`` for every operand position reading the
    variable — directly or inside an array subscript.
    """
    if isinstance(operand, Var):
        name = operand.name
    elif isinstance(operand, str):
        name = operand
    else:
        raise GenesisRuntimeError(f"uses() needs a variable, got {operand!r}")
    sites: list[tuple[int, PosBinding]] = []
    for qid in elements:
        quad = ctx.program.quad(qid)
        for pos, op in quad.use_positions():
            ctx.counters.mem_checks += 1
            if name in _operand_scalars(op):
                sites.append((qid, PosBinding(pos=pos, var=name)))
    return sites


def _operand_scalars(operand: object) -> frozenset[str]:
    from repro.ir.types import used_scalars

    return used_scalars(operand)


def range_values(
    ctx: MatchContext, init: object, final: object, step: object
) -> list[int]:
    """GOSpeL ``range(init, final, step)`` with DO-loop semantics."""
    start = _as_number(init)
    stop = _as_number(final)
    stride = _as_number(step)
    if stride == 0:
        raise GenesisRuntimeError("range() with zero step")
    values = []
    current = start
    while (stride > 0 and current <= stop) or (stride < 0 and current >= stop):
        values.append(int(current))
        current += stride
    return values


def _as_number(value: object) -> Union[int, float]:
    if isinstance(value, Const):
        return value.value
    if isinstance(value, (int, float)):
        return value
    raise GenesisRuntimeError(f"expected a constant, got {value!r}")


def arith(ctx: MatchContext, op: str, left: object, right: object) -> Const:
    """Action-time arithmetic over constants (folded immediately)."""
    left_num = _as_number(left)
    right_num = _as_number(right)
    if op == "+":
        result = left_num + right_num
    elif op == "-":
        result = left_num - right_num
    elif op == "*":
        result = left_num * right_num
    elif op == "/":
        if right_num == 0:
            raise GenesisRuntimeError("division by zero in action arithmetic")
        result = left_num / right_num
        if isinstance(left_num, int) and isinstance(right_num, int) and (
            left_num % right_num == 0
        ):
            result = left_num // right_num
    else:
        raise GenesisRuntimeError(f"unknown arithmetic operator {op!r}")
    return Const(result)


# ----------------------------------------------------------------------
# the five primitive actions
# ----------------------------------------------------------------------
def act_delete(ctx: MatchContext, target: object) -> None:
    """``Delete(a)``: delete a statement, a whole loop, or a block."""
    ctx.counters.action_ops += 1
    if isinstance(target, LoopBinding):
        head_position = ctx.program.position(target.head)
        end_position = ctx.program.position(target.end)
        doomed = [
            ctx.program[i].qid
            for i in range(head_position, end_position + 1)
        ]
        for qid in doomed:
            ctx.counters.action_ops += 1
            ctx.program.remove(qid)
    elif isinstance(target, int):
        ctx.program.remove(target)
    elif isinstance(target, (tuple, list)):
        for qid in list(target):
            ctx.counters.action_ops += 1
            if ctx.program.contains(qid):
                ctx.program.remove(qid)
    else:
        raise GenesisRuntimeError(f"cannot delete {target!r}")
    ctx.refresh_structure()


def act_move(ctx: MatchContext, target: object, after: object) -> None:
    """``Move(a, b)``: remove ``a`` and place it following ``b``."""
    ctx.counters.action_ops += 1
    ctx.program.move_after(_as_qid(target), _anchor_qid(ctx, after))
    ctx.refresh_structure()


def act_copy(ctx: MatchContext, source: object, after: object) -> object:
    """``Copy(a, b, c)``: copy ``a`` after ``b``; returns the new name's
    value (a qid, or a tuple of qids when copying a block)."""
    ctx.counters.action_ops += 1
    if isinstance(source, LoopBinding):
        head_position = ctx.program.position(source.head)
        end_position = ctx.program.position(source.end)
        source = tuple(
            ctx.program[i].qid for i in range(head_position, end_position + 1)
        )
    if isinstance(source, int):
        duplicate = ctx.program.quad(source).copy()
        placed = ctx.program.insert_after(_anchor_qid(ctx, after), duplicate)
        ctx.refresh_structure()
        return placed.qid
    if isinstance(source, (tuple, list)):
        anchor = _anchor_qid(ctx, after)
        new_qids: list[int] = []
        for qid in source:
            ctx.counters.action_ops += 1
            duplicate = ctx.program.quad(qid).copy()
            placed = ctx.program.insert_after(anchor, duplicate)
            anchor = placed.qid
            new_qids.append(placed.qid)
        ctx.refresh_structure()
        return tuple(new_qids)
    raise GenesisRuntimeError(f"cannot copy {source!r}")


def _anchor_qid(ctx: MatchContext, after: object) -> int:
    if isinstance(after, LoopBinding):
        return after.end
    if isinstance(after, int):
        return after
    if isinstance(after, (tuple, list)) and after:
        return after[-1]
    raise GenesisRuntimeError(f"bad placement target {after!r}")


def build_stmt(
    ctx: MatchContext,
    result: object,
    opcode_name: str,
    a: object,
    b: object = None,
) -> Quad:
    """Construct the quad described by an ``add`` template."""
    opcode = _opcode_by_name(opcode_name)
    return Quad(
        opcode,
        result=_as_operand_value(result),
        a=_as_operand_value(a),
        b=_as_operand_value(b) if b is not None else None,
    )


def _opcode_by_name(name: str) -> Opcode:
    canonical = _OPCODE_ALIASES.get(name, name)
    for opcode in Opcode:
        if opcode.value == canonical or opcode.name.lower() == canonical:
            return opcode
    raise GenesisRuntimeError(f"unknown opcode {name!r}")


def _as_operand_value(value: object) -> Optional[Operand]:
    if value is None or isinstance(value, Operand):
        return value
    if isinstance(value, (int, float)):
        return Const(value)
    if value == "none":
        return None
    raise GenesisRuntimeError(f"not an operand: {value!r}")


def act_add(ctx: MatchContext, after: object, quad: Quad) -> int:
    """``Add(a, description, b)``: insert a new statement after ``a``."""
    ctx.counters.action_ops += 1
    placed = ctx.program.insert_after(_anchor_qid(ctx, after), quad)
    ctx.refresh_structure()
    return placed.qid


def act_modify_operand(
    ctx: MatchContext,
    stmt: object,
    pos: Union[str, PosBinding],
    new_value: object,
) -> None:
    """``Modify(Operand(S, i), New_operand)``.

    When the existing operand is an array reference and the dependence
    position names a variable inside its subscripts, the variable is
    substituted within the subscript expressions; otherwise the whole
    operand is replaced.
    """
    ctx.counters.action_ops += 1
    quad = ctx.program.quad(_as_qid(stmt))
    before = quad.copy()
    before.qid = quad.qid  # pre-image: makes the touch undoable
    operand = _as_operand_value(new_value)
    position = pos.pos if isinstance(pos, PosBinding) else pos
    existing = quad.operand_at(position)
    if (
        isinstance(pos, PosBinding)
        and isinstance(existing, ArrayRef)
        and pos.var != existing.name
    ):
        quad.set_operand(
            position, _substitute_subscripts(existing, pos.var, operand)
        )
    elif (
        isinstance(pos, PosBinding)
        and isinstance(existing, Var)
        and existing.name != pos.var
    ):
        raise GenesisRuntimeError(
            f"position {pos} does not match operand {existing} of S{quad.qid}"
        )
    else:
        quad.set_operand(position, operand)
    ctx.program.touch(quad.qid, before=before)  # invalidates caches


def _substitute_subscripts(
    ref: ArrayRef, var: str, new_operand: Optional[Operand]
) -> ArrayRef:
    subscripts: list[Union[Affine, Var]] = []
    for sub in ref.subscripts:
        if isinstance(sub, Affine) and sub.coefficient(var) != 0:
            if isinstance(new_operand, Const) and isinstance(
                new_operand.value, int
            ):
                subscripts.append(
                    sub.substitute(var, Affine.constant(new_operand.value))
                )
            elif isinstance(new_operand, Var):
                subscripts.append(
                    sub.substitute(var, Affine.var(new_operand.name))
                )
            else:
                raise GenesisRuntimeError(
                    f"cannot substitute {new_operand!r} into a subscript"
                )
        elif isinstance(sub, Var) and sub.name == var:
            if isinstance(new_operand, Var):
                subscripts.append(new_operand)
            elif isinstance(new_operand, Const) and isinstance(
                new_operand.value, int
            ):
                subscripts.append(Affine.constant(new_operand.value))
            else:
                raise GenesisRuntimeError(
                    f"cannot substitute {new_operand!r} into a subscript"
                )
        else:
            subscripts.append(sub)
    return ArrayRef(ref.name, tuple(subscripts))


def act_modify_attr(
    ctx: MatchContext, stmt: object, attr: str, new_value: object
) -> None:
    """``Modify`` overloaded on statement/loop attributes (.opc, .init...)."""
    ctx.counters.action_ops += 1
    quad = ctx.program.quad(_as_qid(stmt))
    before = quad.copy()
    before.qid = quad.qid  # pre-image: makes the touch undoable
    if attr == "opc":
        if not isinstance(new_value, str):
            raise GenesisRuntimeError("new opcode must be a symbol")
        quad.opcode = _opcode_by_name(new_value)
    elif attr in ("init", "opr_2"):
        quad.set_operand("a", _as_operand_value(new_value))
    elif attr in ("final", "opr_3"):
        quad.set_operand("b", _as_operand_value(new_value))
    elif attr == "step":
        quad.set_operand("step", _as_operand_value(new_value))
    elif attr in ("lcv", "opr_1"):
        quad.set_operand("result", _as_operand_value(new_value))
    else:
        raise GenesisRuntimeError(f"cannot modify attribute .{attr}")
    ctx.program.touch(quad.qid, before=before)
