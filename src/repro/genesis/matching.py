"""Incremental pattern matching: candidate indexes + dirty-region worklist.

The paper's driver (Figure 5) restarts candidate enumeration from the
top of the program after every committed application; with PR 2's
incremental dependence analysis in place, that re-scan became the
dominant cost of multi-pass pipelines.  This module removes it with two
cooperating pieces:

* :class:`MatchIndex` — **candidate indexes** over the program,
  maintained from the :class:`~repro.ir.program.Program` change log
  under the :class:`~repro.analysis.manager.AnalysisManager` version
  key: statements bucketed by shape (``assign``, ``assign:const``,
  ``assign:var``, ``assign:array``, ``binop``, ...), the loop list, and
  the nested/tight/adjacent loop-pair tables.  Generated matchers pass
  a shape *hint* derived from the clause format
  (:func:`repro.genesis.codegen` emits it), so a constant-propagation
  seed scan enumerates only constant-RHS assignments instead of every
  quad.

* :class:`MatchEngine` — a **dirty-region worklist** over application
  points.  After a committed application only the quads its
  transaction touched (from the change log), the statements whose
  dependence neighborhood changed (from the manager's per-refresh
  deltas), and their dependence neighbors up to the specification's
  depend-clause depth can gain or lose application points.  The engine
  keeps the previous sweep's point set per optimizer, drops the points
  whose bound elements intersect that dirty region, re-enumerates
  candidates only from it (by arming a one-shot seed restriction on
  the :class:`~repro.genesis.library.MatchContext`), and serves the
  merged set.  Rollbacks need no special casing: the undo mutations
  are ordinary change-log entries, so the next sweep's dirty region
  covers exactly the rolled-back quads and the index is restored to
  the same state a fresh build would produce.

Falling back to a full sweep — mirroring the splice-vs-rebuild policy
of the analysis manager — happens whenever the incremental path cannot
be proven exact:

* the change log was trimmed (``changes_since`` returned ``None``) or
  contains an ``opaque`` touch;
* a structural marker (``DO``/``ENDDO``/``IF``/...) was touched;
* the specification is not *worklist-eligible* (see
  :func:`profile_spec`): its seed is not a single ``any``-quantified
  statement variable, it uses an ``all`` quantifier, or a depend
  clause's search variable is not anchored to a dependence atom;
* the specification is *position-sensitive* (``path``/``region``/
  ``uses``/``mem``/``pos()``/``.next``/``.prev``) and the interval
  contains structural (add/remove/move) changes;
* the analysis manager performed a full graph rebuild in the interval
  (no bounded dependence delta exists), or the graph in use is not the
  manager's current one (stale-graph mode, explicit graphs);
* dependence restrictions are overridden (``enforce_restrictions``
  off) — cached point sets only describe enforcing sweeps.

Set ``REPRO_MATCH_CHECK=1`` (or construct the engine with
``full_check=True``) to shadow every worklist sweep with a naive full
re-scan and assert point-set equality — the debug mode the property
tests and CI use to prove the two paths agree.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.analysis.manager import AnalysisManager
from repro.genesis.cost import CostCounters
from repro.genesis.library import (
    LoopBinding,
    MatchContext,
    PosBinding,
    statement_shapes,
)
from repro.gospel.ast import (
    Arith,
    BoolOp,
    Compare,
    Cond,
    DepCond,
    ElemType,
    FuncVal,
    MemCond,
    NotOp,
    Quant,
    Ref,
    Value,
)
from repro.gospel.sema import AnalyzedSpec
from repro.ir.loops import StructureTable
from repro.ir.program import Program
from repro.ir.quad import STRUCTURAL_OPS

#: Environment variable enabling the shadow full-rescan check.
ENV_MATCH_CHECK = "REPRO_MATCH_CHECK"

#: Shape tokens whose quads delimit control structure; touching one
#: invalidates the loop tables (and the worklist policy falls back).
_STRUCTURAL_SHAPES = frozenset({"loop_head", "if_stmt", "marker"})


class MatchMismatchError(AssertionError):
    """The shadow check found a worklist/full point-set divergence."""


# ----------------------------------------------------------------------
# robust point signatures (shared with the driver)
# ----------------------------------------------------------------------
def point_signature(bindings: dict[str, object]) -> tuple:
    """A hashable identity for one application point.

    Tolerates arbitrary binding values: hashable values key by value,
    anything else falls back to an identity-based key instead of
    raising — two points are then "the same" only when they carry the
    very same object.
    """
    items = []
    for name, value in sorted(bindings.items()):
        items.append((name, _signature_value(value)))
    return tuple(items)


def _signature_value(value: object) -> object:
    if isinstance(value, tuple):
        return tuple(_signature_value(item) for item in value)
    try:
        hash(value)
    except TypeError:
        return ("unhashable", type(value).__name__, id(value))
    return value


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------
@dataclass
class MatchStats:
    """Counters of the matching engine, exposed via ``stats``."""

    full_sweeps: int = 0
    worklist_sweeps: int = 0
    cached_sweeps: int = 0
    shadow_checks: int = 0
    points_survived: int = 0
    points_dropped: int = 0
    points_rediscovered: int = 0
    #: seed enumerations served from a shape bucket or worklist
    #: restriction instead of a full program scan
    index_hits: int = 0
    #: candidates enumerated across every engine sweep
    candidates_scanned: int = 0
    sweep_seconds: float = 0.0
    #: agendas served from the shared catalog network
    network_sweeps: int = 0
    #: current node count of the compiled discrimination trie
    network_nodes: int = 0
    #: classifier evaluations avoided at nodes shared by several specs
    network_shared_hits: int = 0
    #: candidate quads (re)classified against the network (the tokens
    #: reprocessed per delta — steady state stays near the change size)
    network_tokens: int = 0
    #: per-spec tail executions (match/pre runs under recording)
    network_tail_runs: int = 0
    #: standing entries served across refreshes without a re-run
    network_entries_reused: int = 0
    #: points served from network agendas, cumulative
    network_agenda_points: int = 0
    #: wall-clock spent maintaining the network (inside sweep_seconds)
    network_seconds: float = 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "full_sweeps": self.full_sweeps,
            "worklist_sweeps": self.worklist_sweeps,
            "cached_sweeps": self.cached_sweeps,
            "shadow_checks": self.shadow_checks,
            "points_survived": self.points_survived,
            "points_dropped": self.points_dropped,
            "points_rediscovered": self.points_rediscovered,
            "index_hits": self.index_hits,
            "candidates_scanned": self.candidates_scanned,
            "sweep_seconds": self.sweep_seconds,
            "network_sweeps": self.network_sweeps,
            "network_nodes": self.network_nodes,
            "network_shared_hits": self.network_shared_hits,
            "network_tokens": self.network_tokens,
            "network_tail_runs": self.network_tail_runs,
            "network_entries_reused": self.network_entries_reused,
            "network_agenda_points": self.network_agenda_points,
            "network_seconds": self.network_seconds,
        }

    def summary(self) -> str:
        text = (
            f"matching: {self.candidates_scanned} candidate(s) scanned, "
            f"{self.index_hits} index hit(s), "
            f"{self.worklist_sweeps} worklist sweep(s), "
            f"{self.full_sweeps} full sweep(s), "
            f"{self.cached_sweeps} cached sweep(s) "
            f"({self.points_survived} point(s) survived, "
            f"{self.points_dropped} dropped, "
            f"{self.points_rediscovered} rediscovered)"
        )
        if self.network_sweeps or self.network_nodes:
            text += (
                f"\nnetwork: {self.network_nodes} node(s), "
                f"{self.network_sweeps} network sweep(s), "
                f"{self.network_tokens} token(s) classified, "
                f"{self.network_shared_hits} shared-prefix hit(s), "
                f"{self.network_tail_runs} tail run(s), "
                f"{self.network_entries_reused} entr(ies) reused, "
                f"{self.network_agenda_points} agenda point(s) served"
            )
        return text


# ----------------------------------------------------------------------
# the candidate index
# ----------------------------------------------------------------------
class MatchIndex:
    """Shape buckets and loop tables, maintained from the change log.

    One index serves one program object.  :meth:`refresh` brings it up
    to the program's current version: per-statement shape buckets are
    maintained entry-by-entry from the change log; the loop tables are
    re-derived from the (version-cached) structure table only when a
    structural change occurred, and retained across pure operand
    modifications.  Marker or opaque touches, and a trimmed log, cause
    a full rebuild — the same policy the analysis manager applies to
    the dependence graph.
    """

    def __init__(self, program: Program):
        self.program = program
        self.stats: Optional[MatchStats] = None
        self._version = -1
        #: qid -> its shape tokens at the indexed version
        self._shapes: dict[int, tuple[str, ...]] = {}
        #: shape token -> set of qids
        self._buckets: dict[str, set[int]] = {}
        self._loops: list[tuple[int, int]] = []
        self._nested: list[tuple[tuple[int, int], tuple[int, int]]] = []
        self._tight: list[tuple[tuple[int, int], tuple[int, int]]] = []
        self._adjacent: list[tuple[tuple[int, int], tuple[int, int]]] = []
        #: loop tables are re-derived lazily, on the first loop query
        #: after a structural change — scalar optimizers never pay
        self._loops_stale = True
        self._structure: Optional[Callable[[], StructureTable]] = None
        self.full_rebuilds = 0
        self.incremental_updates = 0

    # -- maintenance ---------------------------------------------------
    def refresh(
        self, structure: Optional[Callable[[], StructureTable]] = None
    ) -> None:
        """Bring the index up to the program's current version."""
        program = self.program
        version = program.version
        self._structure = structure
        if version == self._version:
            return
        changes = (
            program.changes_since(self._version)
            if self._version >= 0
            else None
        )
        if changes is None or not self._apply_changes(changes, structure):
            self._rebuild(structure)
        self._version = version

    def _apply_changes(
        self,
        changes: Sequence[object],
        structure: Optional[Callable[[], StructureTable]],
    ) -> bool:
        """Maintain the buckets from the log; False forces a rebuild."""
        program = self.program
        structural = False
        pending: list[tuple[str, int]] = []
        for change in changes:
            kind = change.kind  # type: ignore[attr-defined]
            qid = change.qid  # type: ignore[attr-defined]
            if kind == "opaque":
                return False
            if kind in ("add", "remove", "move"):
                structural = True
            else:
                # a modified marker (e.g. rewritten loop bounds) leaves
                # bucket membership alone but may alter the loop tables
                old = self._shapes.get(qid)
                if old is not None and old[0] in _STRUCTURAL_SHAPES:
                    structural = True
                elif program.contains(qid) and (
                    statement_shapes(program.quad(qid))[0]
                    in _STRUCTURAL_SHAPES
                ):
                    structural = True
            pending.append((kind, qid))
        self.incremental_updates += 1
        for kind, qid in pending:
            if kind == "move":
                continue  # bucket membership is position-independent
            self._unindex(qid)
            if kind != "remove" and program.contains(qid):
                self._index_quad(qid)
        if structural:
            self._loops_stale = True
        return True

    def _rebuild(
        self, structure: Optional[Callable[[], StructureTable]]
    ) -> None:
        self.full_rebuilds += 1
        self._shapes.clear()
        self._buckets.clear()
        for quad in self.program:
            self._index_quad(quad.qid)
        self._loops_stale = True

    def _index_quad(self, qid: int) -> None:
        shapes = statement_shapes(self.program.quad(qid))
        self._shapes[qid] = shapes
        for token in shapes:
            self._buckets.setdefault(token, set()).add(qid)

    def _unindex(self, qid: int) -> None:
        shapes = self._shapes.pop(qid, ())
        for token in shapes:
            bucket = self._buckets.get(token)
            if bucket is not None:
                bucket.discard(qid)

    def _ensure_loop_tables(self) -> None:
        if not self._loops_stale:
            return
        self._rebuild_loop_tables(self._structure)
        self._loops_stale = False

    def _rebuild_loop_tables(
        self, structure: Optional[Callable[[], StructureTable]]
    ) -> None:
        table = (
            structure() if structure is not None
            else StructureTable(self.program)
        )
        by_head = {
            loop.head_qid: (loop.head_qid, loop.end_qid)
            for loop in table.loops_in_order()
        }
        self._loops = [
            (loop.head_qid, loop.end_qid) for loop in table.loops_in_order()
        ]
        self._nested = [
            (by_head[outer], by_head[inner])
            for outer, inner in table.nested_pairs()
        ]
        self._tight = [
            (by_head[outer], by_head[inner])
            for outer, inner in table.tight_pairs()
        ]
        self._adjacent = [
            (by_head[first], by_head[second])
            for first, second in table.adjacent_pairs()
        ]

    # -- queries (consumed by the library's enumerators) ---------------
    def statements_of(self, shapes: Sequence[str]) -> list[int]:
        """Statements in the named shape buckets, in program order."""
        return sorted(self.members_of(shapes), key=self.program.position)

    def members_of(self, shapes: Sequence[str]) -> set[int]:
        """The named shape buckets' members, unordered."""
        if self.stats is not None:
            self.stats.index_hits += 1
        qids: set[int] = set()
        for token in shapes:
            qids.update(self._buckets.get(token, ()))
        return qids

    def matches_shape(self, qid: int, shapes: Sequence[str]) -> bool:
        """Is ``qid`` in any of the named shape buckets?  O(1) — for
        filtering a small candidate set without building the union."""
        tokens = self._shapes.get(qid)
        if tokens is None:
            return False
        return any(token in shapes for token in tokens)

    def loops_in_order(self) -> list[tuple[int, int]]:
        self._ensure_loop_tables()
        return list(self._loops)

    def nested_pairs(self) -> list[tuple[tuple[int, int], tuple[int, int]]]:
        self._ensure_loop_tables()
        return list(self._nested)

    def tight_pairs(self) -> list[tuple[tuple[int, int], tuple[int, int]]]:
        self._ensure_loop_tables()
        return list(self._tight)

    def adjacent_pairs(self) -> list[tuple[tuple[int, int], tuple[int, int]]]:
        self._ensure_loop_tables()
        return list(self._adjacent)

    def fingerprint(self) -> str:
        """A deterministic, version-independent hash of the whole index
        state (the chaos tests compare it across rollbacks).

        The program-content component is the canonical
        :meth:`repro.ir.program.Program.fingerprint` — the same
        definition the ordering experiment and the service result
        cache use — extended with the index's own derived state
        (shape buckets and loop tables), so a stale index can never
        hash equal to a fresh one.
        """
        self._ensure_loop_tables()
        shapes = sorted(self._shapes.items())
        buckets = sorted(
            (token, sorted(qids)) for token, qids in self._buckets.items()
            if qids
        )
        payload = repr((shapes, buckets, self._loops, self._nested,
                        self._tight, self._adjacent))
        return (
            self.program.fingerprint()
            + ":"
            + hashlib.sha256(payload.encode()).hexdigest()
        )


# ----------------------------------------------------------------------
# specification profiling (worklist eligibility)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpecProfile:
    """Static facts about a specification the worklist policy needs."""

    #: the single ``any``-quantified statement seed, when eligible
    seed: Optional[str]
    #: the dirty-region worklist may serve this optimizer's sweeps
    eligible: bool
    #: conditions inspect program positions (``path``/``pos``/``.next``
    #: ...) — structural changes then force a full sweep
    position_sensitive: bool
    #: dependence-closure expansion depth for the dirty region
    dep_depth: int
    #: the dependence kinds the conditions traverse — the dirty-region
    #: ball only grows along these; ``None`` disables the filter
    dep_kinds: Optional[frozenset[str]] = None
    #: one entry per search variable: the exact ``(kind, var_is_dst)``
    #: dependence steps from that variable's binding back to the seed.
    #: When present, the dirty ball walks these directed chains instead
    #: of the undirected radius-``dep_depth`` expansion.
    var_paths: Optional[tuple[tuple[tuple[str, bool], ...], ...]] = None


def profile_spec(analyzed: AnalyzedSpec) -> SpecProfile:
    """Classify one specification for the worklist policy.

    Eligibility demands that every application point be *reachable*
    from its seed statement through dependence atoms: a single
    ``any``-quantified statement-typed seed, no ``all`` quantifier, and
    every depend clause introducing at most one search variable that is
    anchored to a dependence atom of its clause.  Everything else —
    loop-seeded specifications in particular — always takes the full
    sweep (their actions touch structural markers anyway).
    """
    spec = analyzed.spec
    seed: Optional[str] = None
    if len(spec.patterns) == 1 and spec.patterns[0].quant is Quant.ANY:
        plan = analyzed.pattern_plans[0]
        if len(plan.search_vars) == 1 and (
            analyzed.types.get(plan.search_vars[0]) is ElemType.STMT
        ):
            seed = plan.search_vars[0]
    eligible = seed is not None and seed in analyzed.action_names
    for clause in tuple(spec.patterns) + tuple(spec.depends):
        if clause.quant is Quant.ALL:
            eligible = False
    for clause, plan in zip(spec.depends, analyzed.depend_plans):
        if not plan.search_vars:
            continue
        if len(plan.search_vars) > 1:
            eligible = False
            continue
        if not _dep_anchored(clause.condition, plan.search_vars[0]):
            eligible = False
    sensitive = False
    for pattern in spec.patterns:
        if pattern.format is not None and _cond_sensitive(pattern.format):
            sensitive = True
    for depend in spec.depends:
        if depend.memberships:
            sensitive = True  # membership sets are position queries
        if depend.condition is not None and _cond_sensitive(depend.condition):
            sensitive = True
    kinds: set[str] = set()
    for pattern in spec.patterns:
        if pattern.format is not None:
            kinds |= _cond_dep_kinds(pattern.format)
    for depend in spec.depends:
        if depend.condition is not None:
            kinds |= _cond_dep_kinds(depend.condition)
    # an empty set is meaningful: no dependence atoms at all, so the
    # dirty ball never needs to expand past the changed quads
    dep_kinds: Optional[frozenset[str]] = None
    if kinds <= {"flow", "anti", "out", "ctrl"}:
        dep_kinds = frozenset(kinds)
    var_paths = _anchor_paths(analyzed, seed) if eligible else None
    return SpecProfile(
        seed=seed if eligible else None,
        eligible=eligible,
        position_sensitive=sensitive,
        dep_depth=max(1, len(spec.depends)),
        dep_kinds=dep_kinds,
        var_paths=var_paths,
    )


def _anchor_paths(
    analyzed: AnalyzedSpec, seed: Optional[str]
) -> Optional[tuple[tuple[tuple[str, bool], ...], ...]]:
    """The exact dependence chain from each search variable to the seed.

    Each depend clause binds its variable by walking one dependence
    atom from an already-bound anchor; concatenating those steps gives
    the only routes along which a changed quad can be bound during a
    seed's search.  When a variable's anchor cannot be pinned down (no
    dependence atom ties it to a known variable, an exotic edge kind,
    several candidate generator atoms of conflicting shape), ``None``
    tells the dirty-region policy to fall back to the undirected ball.
    """
    if seed is None:
        return None
    spec = analyzed.spec
    known: dict[str, tuple[tuple[str, bool], ...]] = {seed: ()}
    for clause, plan in zip(spec.depends, analyzed.depend_plans):
        if not plan.search_vars:
            continue
        var = plan.search_vars[0]
        links: list[tuple[str, bool, str]] = []
        for term in _conjuncts(clause.condition) if clause.condition else []:
            if not isinstance(term, DepCond):
                continue
            if term.kind not in ("flow", "anti", "out", "ctrl"):
                return None
            src, dst = term.src, term.dst
            if (
                isinstance(dst, Ref) and dst.base == var and not dst.attrs
                and isinstance(src, Ref) and not src.attrs
                and src.base in known
            ):
                links.append((term.kind, True, src.base))
            elif (
                isinstance(src, Ref) and src.base == var and not src.attrs
                and isinstance(dst, Ref) and not dst.attrs
                and dst.base in known
            ):
                links.append((term.kind, False, dst.base))
        if not links:
            return None
        # with several candidate generator atoms the binding may travel
        # any of their chains — only a single unambiguous route is safe
        paths = {
            ((kind, var_is_dst),) + known[anchor]
            for kind, var_is_dst, anchor in links
        }
        if len(paths) > 1:
            return None
        known[var] = next(iter(paths))
    return tuple(path for name, path in known.items() if name != seed)


def _dep_anchored(cond: Optional[Cond], name: str) -> bool:
    """Does some top-level conjunct tie ``name`` to a dependence atom?"""
    if cond is None:
        return False
    for term in _conjuncts(cond):
        if isinstance(term, DepCond):
            for value in (term.src, term.dst):
                if isinstance(value, Ref) and value.base == name and (
                    not value.attrs
                ):
                    return True
    return False


def _conjuncts(cond: Cond) -> list[Cond]:
    if isinstance(cond, BoolOp) and cond.op == "and":
        terms: list[Cond] = []
        for term in cond.terms:
            terms.extend(_conjuncts(term))
        return terms
    return [cond]


def _cond_dep_kinds(cond: Cond) -> set[str]:
    """Every dependence kind the condition's atoms may traverse."""
    if isinstance(cond, BoolOp):
        kinds: set[str] = set()
        for term in cond.terms:
            kinds |= _cond_dep_kinds(term)
        return kinds
    if isinstance(cond, NotOp):
        return _cond_dep_kinds(cond.term)
    if isinstance(cond, DepCond):
        return {cond.kind}
    return set()


def _cond_sensitive(cond: Cond) -> bool:
    if isinstance(cond, BoolOp):
        return any(_cond_sensitive(term) for term in cond.terms)
    if isinstance(cond, NotOp):
        return _cond_sensitive(cond.term)
    if isinstance(cond, Compare):
        return _value_sensitive(cond.left) or _value_sensitive(cond.right)
    if isinstance(cond, DepCond):
        return _value_sensitive(cond.src) or _value_sensitive(cond.dst)
    if isinstance(cond, MemCond):
        return True
    return True  # unknown condition node: assume the worst


def _value_sensitive(value: Value) -> bool:
    if isinstance(value, Ref):
        return any(attr in ("next", "prev", "body") for attr in value.attrs)
    if isinstance(value, FuncVal):
        if value.func == "pos":
            return True
        return any(_value_sensitive(arg) for arg in value.args)
    if isinstance(value, Arith):
        return _value_sensitive(value.left) or _value_sensitive(value.right)
    return False


# ----------------------------------------------------------------------
# the matching engine
# ----------------------------------------------------------------------
Point = tuple[tuple, dict[str, object]]

#: a cached point also pins down every statement its *search* (not just
#: its action) bound, so staleness can be decided against the exact
#: changed set instead of a dependence ball
_CachedPoint = tuple[tuple, dict[str, object], Optional[frozenset[int]]]


@dataclass
class SweepResult:
    """One sweep's outcome: the canonical point list and its cost."""

    points: list[Point]
    #: match-phase yields consumed (feeds the driver's fuel budget)
    attempts: int
    mode: str  # "full" | "worklist" | "cached" | "network"


def spec_fingerprint(optimizer) -> str:
    """Content identity of a generated optimizer: its emitted source.

    Cached on the optimizer object; two regenerations of the same spec
    hash equal, so fingerprint-keyed sweep caches and profiles survive
    object churn (the previous identity check silently discarded a
    valid cache whenever a spec was re-generated under the same name).
    """
    cached = getattr(optimizer, "_spec_fingerprint", None)
    if cached is None:
        cached = hashlib.sha256(optimizer.source.encode()).hexdigest()
        try:
            optimizer._spec_fingerprint = cached
        except AttributeError:
            pass  # slots/frozen object: recompute per call
    return cached


@dataclass
class _SweepCache:
    """The previous sweep's point set for one optimizer."""

    version: int
    points: list[_CachedPoint]
    #: spec fingerprint the points belong to (a re-generated spec with
    #: the same name but different source must not reuse them)
    fingerprint: str


class MatchEngine:
    """Worklist-driven sweeps over one manager's program.

    One engine serves one :class:`AnalysisManager` (use
    :func:`engine_for`); per-optimizer sweep caches and the candidate
    index live here, shared across ``run_optimizer`` calls.
    """

    def __init__(
        self,
        manager: AnalysisManager,
        full_check: Optional[bool] = None,
    ):
        self.manager = manager
        if full_check is None:
            full_check = os.environ.get(ENV_MATCH_CHECK, "") not in ("", "0")
        self.full_check = full_check
        self.stats = MatchStats()
        self.index = MatchIndex(manager.program)
        self.index.stats = self.stats
        self._caches: dict[str, _SweepCache] = {}
        self._profiles: dict[str, SpecProfile] = {}
        #: the shared catalog network (built lazily by ensure_network)
        self.network = None

    # -- public API ----------------------------------------------------
    def sweep(
        self,
        optimizer,
        ctx: MatchContext,
        allow_worklist: bool = True,
    ) -> SweepResult:
        """Enumerate every application point of ``optimizer``.

        Serves from the per-optimizer cache when the program is
        unchanged, from the dirty-region worklist when the interval
        since the cached sweep is provably local, and from a full
        (index-accelerated) sweep otherwise.  Points are returned in
        canonical order: by seed position, then the positions of the
        other bound elements.
        """
        program = self.manager.program
        started = time.perf_counter()
        candidates_before = ctx.counters.candidates
        self.index.refresh(self.manager.structure)
        ctx.match_index = self.index
        version = program.version
        profile = self._profile(optimizer)
        fingerprint = spec_fingerprint(optimizer)
        cache = self._caches.get(optimizer.name)
        if cache is not None and cache.fingerprint != fingerprint:
            cache = None
        points: Optional[list[_CachedPoint]] = None
        attempts = 0
        mode = "full"
        shadow = False
        if cache is not None and ctx.enforce_restrictions and allow_worklist:
            if cache.version == version:
                points = list(cache.points)
                mode = "cached"
                self.stats.cached_sweeps += 1
            else:
                dirty = self._dirty_region(profile, cache, ctx)
                if dirty is not None:
                    points, attempts = self._worklist_sweep(
                        optimizer, profile, ctx, cache, *dirty
                    )
                    mode = "worklist"
                    shadow = True
                    self.stats.worklist_sweeps += 1
        if points is None:
            points, attempts = self._enumerate(optimizer, ctx)
            points = self._dedup(points)
            mode = "full"
            self.stats.full_sweeps += 1
        points = _sort_points(points, program)
        result_points = [(sig, dict(bindings)) for sig, bindings, _ in points]
        if shadow and self.full_check:
            self._shadow_check(optimizer, ctx, result_points)
        if ctx.enforce_restrictions:
            self._caches[optimizer.name] = _SweepCache(
                version=version, points=points, fingerprint=fingerprint
            )
        self.stats.candidates_scanned += (
            ctx.counters.candidates - candidates_before
        )
        self.stats.sweep_seconds += time.perf_counter() - started
        return SweepResult(
            points=result_points, attempts=attempts, mode=mode
        )

    def invalidate(self) -> None:
        """Drop every sweep cache (next sweeps are full)."""
        self._caches.clear()
        if self.network is not None:
            self.network.invalidate()

    # -- the shared catalog network ------------------------------------
    def ensure_network(self, optimizers: Sequence = ()):
        """The catalog-wide discrimination network, built on first use.

        ``optimizers`` are registered (idempotently, by spec
        fingerprint) as catalog members; the pipeline registers the
        whole catalog up front so the compiled trie shares every
        prefix from the first sweep.
        """
        if self.network is None:
            from repro.genesis.network import CatalogNetwork

            self.network = CatalogNetwork(self)
        if optimizers:
            self.network.register(optimizers)
        return self.network

    def network_sweep(
        self, optimizer, ctx: MatchContext
    ) -> Optional[SweepResult]:
        """Serve one optimizer's points from the shared network agenda.

        Returns ``None`` when the network cannot soundly serve this
        context (foreign graph / restrictions off) — callers fall back
        to :meth:`sweep`.  Under ``full_check`` every served agenda is
        shadow-compared against a naive full re-scan.
        """
        started = time.perf_counter()
        candidates_before = ctx.counters.candidates
        self.index.refresh(self.manager.structure)
        ctx.match_index = self.index
        network = self.ensure_network((optimizer,))
        if not network.refresh(ctx):
            return None
        points, attempts = network.serve(optimizer.name)
        self.stats.network_sweeps += 1
        if self.full_check:
            self._shadow_check(optimizer, ctx, points)
        self.stats.candidates_scanned += (
            ctx.counters.candidates - candidates_before
        )
        self.stats.sweep_seconds += time.perf_counter() - started
        return SweepResult(
            points=points, attempts=attempts, mode="network"
        )

    def sweep_all(
        self, ctx: MatchContext, optimizers: Sequence = ()
    ) -> dict[str, SweepResult]:
        """The whole catalog's points from one shared network pass.

        One :meth:`CatalogNetwork.refresh` classifies every dirty quad
        once against the merged trie and re-runs only the tails whose
        recorded support the change touched; each registered spec's
        standing agenda is then served.  Falls back to per-spec
        :meth:`sweep` calls when the context cannot be served soundly.
        """
        started = time.perf_counter()
        candidates_before = ctx.counters.candidates
        self.index.refresh(self.manager.structure)
        ctx.match_index = self.index
        network = self.ensure_network(optimizers)
        if not network.refresh(ctx):
            return {
                optimizer.name: self.sweep(optimizer, ctx)
                for optimizer in network.members()
            }
        results: dict[str, SweepResult] = {}
        for optimizer in network.members():
            points, attempts = network.serve(optimizer.name)
            self.stats.network_sweeps += 1
            if self.full_check:
                self._shadow_check(optimizer, ctx, points)
            results[optimizer.name] = SweepResult(
                points=points, attempts=attempts, mode="network"
            )
        self.stats.candidates_scanned += (
            ctx.counters.candidates - candidates_before
        )
        self.stats.sweep_seconds += time.perf_counter() - started
        return results

    # -- internals -----------------------------------------------------
    def _profile(self, optimizer) -> SpecProfile:
        key = spec_fingerprint(optimizer)
        profile = self._profiles.get(key)
        if profile is None:
            profile = profile_spec(optimizer.analyzed)
            self._profiles[key] = profile
        return profile

    def _dirty_region(
        self,
        profile: SpecProfile,
        cache: _SweepCache,
        ctx: MatchContext,
    ) -> Optional[tuple[set[int], set[int]]]:
        """``(drop, seeds)`` for a worklist sweep, or ``None`` when
        only a full sweep is sound.

        ``drop`` is the exact changed set — statements whose fields or
        incident dependence edges differ since the cached sweep; a
        cached point is stale iff it binds one of them.  ``seeds`` is
        the dependence ball around the change (its radius the profile's
        depth) — every statement whose *search tree* can see the change
        and must therefore be re-enumerated as a candidate seed.
        """
        if not profile.eligible:
            return None
        program = self.manager.program
        if ctx.graph is not self.manager._graph:
            return None  # stale or foreign graph: deltas do not apply
        changes = program.changes_since(cache.version)
        if changes is None:
            return None
        touched: set[int] = set()
        structural = False
        for change in changes:
            if change.kind == "opaque":
                return None
            touched.add(change.qid)
            if change.kind in ("add", "remove", "move"):
                structural = True
            if not profile.position_sensitive:
                # field and edge diffs fully determine this profile's
                # points; marker touches need no special treatment
                continue
            before = change.before
            if before is not None and before.opcode in STRUCTURAL_OPS:
                return None
            if program.contains(change.qid):
                quad = program.quad(change.qid)
                if statement_shapes(quad)[0] in _STRUCTURAL_SHAPES:
                    return None
            elif before is None and change.kind != "remove":
                return None  # cannot classify the (now gone) quad
        if structural and profile.position_sensitive:
            return None
        deltas = self.manager.dependence_deltas_since(cache.version)
        if deltas is None:
            return None
        kinds = profile.dep_kinds
        if kinds is not None:
            # an edge of a kind no condition ever traverses can affect
            # neither a cached point nor a candidate seed
            deltas = frozenset(edge for edge in deltas if edge[0] in kinds)
        endpoints = {qid for edge in deltas for qid in edge[1:]}
        drop = touched | endpoints
        graph = ctx.graph

        def walk(start: set[int], steps) -> set[int]:
            cur = start
            for kind, var_is_dst in steps:
                grown: set[int] = set()
                for qid in cur:
                    if var_is_dst:
                        for edge in graph.deps_to(qid):
                            if edge.kind == kind:
                                grown.add(edge.src)
                    else:
                        for edge in graph.deps_from(qid):
                            if edge.kind == kind:
                                grown.add(edge.dst)
                cur = grown
                if not cur:
                    break
            return cur

        seeds = set(drop)
        if profile.var_paths is not None:
            # a changed quad flips a seed's search outcome only if it
            # can be *bound* during that search — i.e. the seed lies at
            # the end of some variable's exact anchor chain walked
            # backward from it.  A changed edge is traversed right at
            # the generator step of a variable of its kind, with the
            # seed at the end of the *anchor's* (suffix) chain from the
            # edge's anchor-side endpoint.  Interior stops of a chain
            # are covered by the anchoring variable's own, shorter
            # chain, so only the far ends are candidate seeds.
            for steps in profile.var_paths:
                seeds |= walk(set(touched), steps)
                kind0, var_is_dst0 = steps[0]
                anchor_side = {
                    edge[1] if var_is_dst0 else edge[2]
                    for edge in deltas
                    if edge[0] == kind0
                }
                if anchor_side:
                    seeds |= walk(anchor_side, steps[1:])
            return drop, seeds
        # fallback — no usable anchor chains: a changed field at
        # distance K flips a seed's search outcome; a changed edge is
        # traversed by seeds within K-1 hops of its endpoints — so
        # touched quads grow K hops, delta endpoints K-1, along the
        # edge kinds the spec's conditions actually traverse.
        visited = set(touched)
        frontier = set(touched)
        for hop in range(profile.dep_depth):
            grown = set()
            for qid in frontier:
                for edge in graph.deps_from(qid):
                    if kinds is None or edge.kind in kinds:
                        grown.add(edge.dst)
                for edge in graph.deps_to(qid):
                    if kinds is None or edge.kind in kinds:
                        grown.add(edge.src)
            if hop == 0:
                grown |= endpoints
            frontier = grown - visited
            if not frontier:
                break
            visited |= frontier
            seeds |= frontier
        return drop, seeds

    def _worklist_sweep(
        self,
        optimizer,
        profile: SpecProfile,
        ctx: MatchContext,
        cache: _SweepCache,
        drop: set[int],
        dirty_seeds: set[int],
    ) -> tuple[list[_CachedPoint], int]:
        """Drop stale cached points, re-enumerate from the dirty seeds,
        merge with the survivors."""
        program = self.manager.program
        survivors: list[_CachedPoint] = []
        dropped_seeds: set[int] = set()
        for sig, bindings, qids in cache.points:
            stale = qids is None or any(
                qid in drop or not program.contains(qid) for qid in qids
            )
            if stale:
                self.stats.points_dropped += 1
                seed_qid = bindings.get(profile.seed or "")
                if isinstance(seed_qid, int) and program.contains(seed_qid):
                    dropped_seeds.add(seed_qid)
            else:
                survivors.append((sig, bindings, qids))
        self.stats.points_survived += len(survivors)
        seeds = {
            qid for qid in dirty_seeds if program.contains(qid)
        } | dropped_seeds
        ordered = sorted(seeds, key=program.position)
        ctx.arm_seed_restriction(ordered)
        try:
            rediscovered, attempts = self._enumerate(optimizer, ctx)
        finally:
            ctx.take_seed_restriction()  # disarm if never consumed
        merged: dict[tuple, _CachedPoint] = {
            point[0]: point for point in survivors
        }
        fresh = 0
        for point in rediscovered:
            if point[0] not in merged:
                merged[point[0]] = point
                fresh += 1
        self.stats.points_rediscovered += fresh
        return list(merged.values()), attempts

    def _enumerate(
        self, optimizer, ctx: MatchContext
    ) -> tuple[list[_CachedPoint], int]:
        """Run the generated match/pre phases to exhaustion."""
        ctx.bindings.clear()
        optimizer.set_up(ctx)
        points: list[_CachedPoint] = []
        attempts = 0
        action_names = optimizer.action_names
        for _found in optimizer.match(ctx):
            attempts += 1
            for _ok in optimizer.pre(ctx):
                snapshot = ctx.snapshot_bindings()
                bindings = {
                    name: value
                    for name, value in snapshot.items()
                    if name in action_names
                }
                points.append(
                    (point_signature(bindings), bindings,
                     _bound_qids(snapshot))
                )
        return points, attempts

    @staticmethod
    def _dedup(points: list[_CachedPoint]) -> list[_CachedPoint]:
        unique: dict[tuple, _CachedPoint] = {}
        for point in points:
            unique.setdefault(point[0], point)
        return list(unique.values())

    def _shadow_check(
        self, optimizer, ctx: MatchContext, points: list[Point]
    ) -> None:
        """Assert a worklist sweep equals a naive full re-scan."""
        self.stats.shadow_checks += 1
        reference = MatchContext(
            self.manager.program, ctx.graph, counters=CostCounters()
        )
        reference.enforce_restrictions = ctx.enforce_restrictions
        naive, _ = self._enumerate(optimizer, reference)
        want = {point[0] for point in naive}
        got = {point[0] for point in points}
        if want == got:
            return
        missing = sorted(repr(sig) for sig in want - got)
        extra = sorted(repr(sig) for sig in got - want)
        raise MatchMismatchError(
            f"incremental sweep of {optimizer.name} diverged from the "
            f"full re-scan at program version "
            f"{self.manager.program.version}:\n"
            f"  missing ({len(missing)}): {missing[:5]}\n"
            f"  extra ({len(extra)}): {extra[:5]}"
        )


def _bound_qids(bindings: dict[str, object]) -> Optional[frozenset[int]]:
    """Every statement identity a point's bindings pin down, or None
    when a binding's shape is unknown (the point is then always
    considered dirty)."""
    qids: set[int] = set()
    for value in bindings.values():
        if isinstance(value, bool):
            return None
        if isinstance(value, int):
            qids.add(value)
        elif isinstance(value, LoopBinding):
            qids.update((value.head, value.end))
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, int) and not isinstance(item, bool):
                    qids.add(item)
                else:
                    return None
        elif isinstance(value, PosBinding):
            continue
        elif isinstance(value, (str, float)):
            continue
        else:
            return None
    return frozenset(qids)


def _sort_points(points: Iterable[Point], program: Program) -> list[Point]:
    """Canonical point order: positions of the bound elements in
    binding insertion order (the seed binds first)."""

    def value_key(value: object) -> tuple:
        if isinstance(value, bool):
            return (4, str(value))
        if isinstance(value, int):
            position = (
                program.position(value) if program.contains(value)
                else 1 << 30
            )
            return (0, position, value)
        if isinstance(value, LoopBinding):
            position = (
                program.position(value.head) if program.contains(value.head)
                else 1 << 30
            )
            return (1, position, value.head, value.end)
        if isinstance(value, PosBinding):
            return (2, value.pos, value.var)
        if isinstance(value, tuple):
            return (3, tuple(value_key(item) for item in value))
        try:
            return (4, str(value))
        except Exception:
            return (5, type(value).__name__)

    def key(point) -> tuple:
        bindings = point[1]
        return tuple(value_key(value) for value in bindings.values())

    return sorted(points, key=key)


def engine_for(
    manager: AnalysisManager, full_check: Optional[bool] = None
) -> MatchEngine:
    """The matching engine attached to ``manager`` (created on first
    use).  Keeping it on the manager shares the candidate index and
    sweep caches across every ``run_optimizer`` call that shares the
    manager — the pipeline and session do."""
    engine = getattr(manager, "_match_engine", None)
    if engine is None or engine.manager is not manager:
        engine = MatchEngine(manager, full_check=full_check)
        manager._match_engine = engine
    return engine
