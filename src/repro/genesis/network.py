"""Cross-spec shared matching: one discrimination network per catalog.

The per-spec engine (:mod:`repro.genesis.matching`) made a single
optimizer's sweeps incremental; a driver iteration over the whole
catalog still paid O(specs x candidates) because every spec was asked
separately, each re-running its own seed scan and precondition tail.
This module compiles *all* loaded GOSpeL specs into a single shared
Rete-style discrimination network:

* **Alpha layer** — each spec's seed constraints (the same shape hint
  :func:`repro.genesis.codegen.shape_hint` derives for the generated
  matchers, plus the seed-incident dependence-existence tests extracted
  from its ``any``-quantified depend clauses) are merged into a trie.
  Common prefixes are shared, so a candidate quad is classified once
  against the whole catalog instead of once per spec.  The trie is
  rendered as generated Python source by
  :func:`repro.genesis.codegen.emit_network` — the paper's "generator
  emits code" contract, lifted to the catalog level — and that module
  is ``exec``-ed and used for classification.

* **Beta layer** — per-spec *tails* (the generated ``match``/``pre``
  phases, i.e. PRECOND residue and binding completion) hang off the
  shared classification: a seed admitted for a spec runs that spec's
  tail under a *recording* context which captures exactly which quads,
  dependence-edge families, shape buckets, and position/structure
  facts the run consulted.  The resulting match points are
  materialized into per-spec agenda sets.

* **Delta maintenance** — :meth:`CatalogNetwork.refresh` consumes the
  same :class:`~repro.ir.program.Program` change log and the
  :class:`~repro.analysis.manager.AnalysisManager`'s changed-edge
  deltas the worklist engine already uses: a pass that touches *k*
  quads re-tokenizes only those quads and re-runs only the tails whose
  recorded support intersects the change.  Everything else serves from
  the standing agendas.  Rollbacks need no special casing — undo
  mutations are ordinary change-log entries.

Specs whose seed is not a single ``any``-quantified statement variable
(the loop-seeded specs: fusion, interchange, circulation, ...) keep a
single *spec-granular* entry: their tail re-runs whenever its recorded
support is touched, and serves from cache otherwise — which is what
makes the catalog sweep cheap in steady state, where scalar edits leave
loop structure and loop-carried dependences alone.

Soundness leans on two invariants, both asserted by the shadow mode
(``REPRO_MATCH_CHECK=1``, reusing the per-spec full re-scan check):

1. every network test is a *necessary* condition for its subscribing
   specs (shape tokens and one-sided edge-existence probes are superset
   filters; the generated tail still decides), and
2. an entry's recorded support is a *closure* over everything its tail
   run consulted, so "support untouched" implies "same points".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.genesis.codegen import shape_hint
from repro.genesis.library import statement_shapes
from repro.gospel.ast import BoolOp, Cond, DepCond, ElemType, Quant, Ref

#: dependence kinds with first-class edge stores (``fused`` is derived
#: structurally and cannot be probed by a one-sided existence test)
_EDGE_KINDS = frozenset({"flow", "anti", "out", "ctrl"})

#: shape tokens whose quads delimit control structure (mirrors
#: ``matching._STRUCTURAL_SHAPES``; duplicated to avoid a cycle)
_STRUCTURAL_SHAPES = frozenset({"loop_head", "if_stmt", "marker"})


# ----------------------------------------------------------------------
# spec compilation: seed tests + tail granularity
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DepTest:
    """One alpha-network test: an OR over edge-existence probes.

    Each atom is ``(kind, seed_is_src, pattern)``: does some ``kind``
    edge with the candidate seed on the named side (and matching the
    direction ``pattern``, when safe to check unanchored) exist?  A
    single-atom test is a plain conjunct; a multi-atom test mirrors a
    top-level OR whose terms all qualify.
    """

    atoms: tuple[tuple[str, bool, Optional[tuple[str, ...]]], ...]


@dataclass(frozen=True)
class TailPlan:
    """How one spec hangs off the network."""

    name: str
    #: "seed" — per-candidate entries keyed by seed qid;
    #: "spec" — one whole-spec entry (loop-seeded / multi-pattern)
    granularity: str
    #: the seed variable, for seed-granular specs
    seed: Optional[str] = None
    #: shape buckets covering every seed candidate (None: no constraint)
    shapes: Optional[tuple[str, ...]] = None
    #: necessary dependence tests on the seed, in clause order
    dep_tests: tuple[DepTest, ...] = ()

    def static_edge_keys(
        self, qid: int
    ) -> frozenset[tuple[str, Optional[int], Optional[int]]]:
        """Edge families the classifier consulted for seed ``qid``.

        These are support even when classification *fails*: a new edge
        in one of these families can resurrect the seed.
        """
        keys = set()
        for test in self.dep_tests:
            for kind, seed_is_src, _pattern in test.atoms:
                if seed_is_src:
                    keys.add((kind, qid, None))
                else:
                    keys.add((kind, None, qid))
        return frozenset(keys)


def compile_plan(optimizer) -> TailPlan:
    """Extract one spec's network plan from its analyzed form.

    Seed granularity is *broader* than worklist eligibility: it only
    requires that arming a one-seed restriction yields exactly that
    seed's points — a single ``any``-quantified pattern clause whose
    one statement-typed variable is the seed.  Loop-typed co-variables
    are fine (e.g. ICM's ``any L1, Si``): ``lib.loops`` ignores the
    restriction, so the tail enumerates every loop against just the
    restricted seed.  (No dependence-anchoring requirement:
    support-recorded staleness does not need anchor chains.)

    The restriction is armed *sticky* for the whole tail run (see
    :func:`_recording_context`), which is sound exactly when the
    spec's one ``lib.statements`` enumeration is the seed scan —
    Depend clauses never enumerate statements (their strategies are
    deps/members/check), and the single-STMT-binder requirement rules
    out a second pattern scan; the source check below is the
    belt-and-braces guard on that generator invariant.
    """
    analyzed = optimizer.analyzed
    spec = analyzed.spec
    types = analyzed.types
    seed: Optional[str] = None
    if len(spec.patterns) == 1 and spec.patterns[0].quant is Quant.ANY:
        plan0 = analyzed.pattern_plans[0]
        stmt_vars = [
            var
            for var in plan0.search_vars
            if types.get(var) is ElemType.STMT
        ]
        loop_only = all(
            types.get(var) is ElemType.LOOP
            for var in plan0.search_vars
            if var not in stmt_vars
        )
        if len(stmt_vars) == 1 and loop_only and (
            optimizer.source.count("lib.statements(") == 1
        ):
            seed = stmt_vars[0]
    if seed is None:
        return TailPlan(name=optimizer.name, granularity="spec")
    shapes = shape_hint(types, spec.patterns[0].format, seed)
    return TailPlan(
        name=optimizer.name,
        granularity="seed",
        seed=seed,
        shapes=shapes,
        dep_tests=_seed_dep_tests(analyzed, seed),
    )


def _seed_dep_tests(analyzed, seed: str) -> tuple[DepTest, ...]:
    """Necessary edge-existence tests on the seed, from depend clauses.

    Only ``any``-quantified clauses yield tests (an ``any`` clause must
    produce at least one binding, so each of its top-level conjuncts
    must hold for *some* edge — a one-sided existence probe is then
    necessary).  Direction patterns ride along only for clauses with no
    loop memberships: membership-anchored clauses interpret vectors
    relative to a nest level the classifier cannot reproduce.
    """
    types = analyzed.types
    tests: list[DepTest] = []
    for clause in analyzed.spec.depends:
        if clause.quant is not Quant.ANY or clause.condition is None:
            continue
        pattern_ok = not clause.memberships
        for term in _conjuncts(clause.condition):
            atoms = _test_atoms(term, seed, types, pattern_ok)
            if atoms:
                tests.append(DepTest(atoms=tuple(atoms)))
    unique: dict[frozenset, DepTest] = {}
    for test in tests:
        unique.setdefault(frozenset(test.atoms), test)
    return tuple(unique.values())


def _test_atoms(
    term: Cond, seed: str, types: dict, pattern_ok: bool
) -> Optional[list[tuple[str, bool, Optional[tuple[str, ...]]]]]:
    if isinstance(term, DepCond):
        atom = _seed_atom(term, seed, types, pattern_ok)
        return [atom] if atom is not None else None
    if isinstance(term, BoolOp) and term.op == "or":
        atoms = []
        for sub in term.terms:
            if not isinstance(sub, DepCond):
                return None
            atom = _seed_atom(sub, seed, types, pattern_ok)
            if atom is None:
                return None
            atoms.append(atom)
        return atoms
    return None


def _seed_atom(
    dep: DepCond, seed: str, types: dict, pattern_ok: bool
) -> Optional[tuple[str, bool, Optional[tuple[str, ...]]]]:
    if dep.kind not in _EDGE_KINDS:
        return None

    def bare(value: object) -> Optional[str]:
        if isinstance(value, Ref) and not value.attrs:
            return value.base
        return None

    src, dst = bare(dep.src), bare(dep.dst)
    pattern = (
        tuple(dep.direction)
        if pattern_ok and dep.direction is not None
        else None
    )
    if src == seed and dst is not None and (
        types.get(dst) is ElemType.STMT
    ):
        return (dep.kind, True, pattern)
    if dst == seed and src is not None and (
        types.get(src) is ElemType.STMT
    ):
        return (dep.kind, False, pattern)
    return None


def _conjuncts(cond: Cond) -> list[Cond]:
    if isinstance(cond, BoolOp) and cond.op == "and":
        terms: list[Cond] = []
        for term in cond.terms:
            terms.extend(_conjuncts(term))
        return terms
    return [cond]


# ----------------------------------------------------------------------
# the trie (rendered by codegen.emit_network)
# ----------------------------------------------------------------------
@dataclass
class TrieNode:
    """One shared node: specs accepted here, further tests below."""

    children: dict[DepTest, "TrieNode"] = field(default_factory=dict)
    accepts: list[str] = field(default_factory=list)
    #: distinct specs whose classification passes through this node
    subscribers: int = 0


@dataclass
class NetworkTrie:
    """The compiled alpha network over every seed-granular spec."""

    #: shape token -> subtree; key None collects shape-free seeds
    roots: dict[Optional[str], TrieNode]
    nodes: int
    #: nodes traversed by more than one spec (the sharing the network
    #: exists for)
    shared_nodes: int


def build_trie(plans: Sequence[TailPlan]) -> NetworkTrie:
    """Merge every seed plan's test chain into one trie.

    A plan with several shape tokens subscribes under each (shape
    tokens on one quad are near-disjoint; the classifier dedups).  Dep
    tests chain in clause order below the shape root, merging with any
    other spec that shares the same prefix.
    """
    roots: dict[Optional[str], TrieNode] = {}
    for plan in plans:
        if plan.granularity != "seed":
            continue
        tokens: Sequence[Optional[str]] = plan.shapes or (None,)
        for token in tokens:
            node = roots.setdefault(token, TrieNode())
            node.subscribers += 1
            for test in plan.dep_tests:
                node = node.children.setdefault(test, TrieNode())
                node.subscribers += 1
            node.accepts.append(plan.name)
    nodes = 0
    shared = 0
    stack = list(roots.values())
    while stack:
        node = stack.pop()
        nodes += 1
        if node.subscribers > 1:
            shared += 1
        stack.extend(node.children.values())
    return NetworkTrie(roots=roots, nodes=nodes, shared_nodes=shared)


# ----------------------------------------------------------------------
# support recording: what did a tail run consult?
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Support:
    """The closed-over read set of one tail run."""

    qids: frozenset[int]
    #: ``(kind, src|None, dst|None)`` edge families queried
    edge_keys: frozenset[tuple[str, Optional[int], Optional[int]]]
    #: shape buckets enumerated (membership changes invalidate)
    buckets: frozenset[str]
    whole_program: bool
    positions: bool
    structure: bool
    all_edges: bool


class _SupportRecorder:
    """Mutable accumulator the wrappers write into."""

    def __init__(self) -> None:
        self.qids: set[int] = set()
        self.edge_keys: set[
            tuple[str, Optional[int], Optional[int]]
        ] = set()
        self.buckets: set[str] = set()
        self.whole_program = False
        self.positions = False
        self.structure = False
        self.all_edges = False

    def freeze(self) -> _Support:
        return _Support(
            qids=frozenset(self.qids),
            edge_keys=frozenset(self.edge_keys),
            buckets=frozenset(self.buckets),
            whole_program=self.whole_program,
            positions=self.positions,
            structure=self.structure,
            all_edges=self.all_edges,
        )


class _RecordingProgram:
    """Program proxy logging the identities and facts a tail reads.

    Reads that name a statement record its qid; ordering reads
    additionally set the ``positions`` flag; whole-program enumerations
    set ``whole_program``.  Unknown attribute access is conservatively
    whole-program.
    """

    def __init__(self, program, rec: _SupportRecorder):
        self._program = program
        self._rec = rec

    @property
    def version(self) -> int:
        return self._program.version

    def quad(self, qid: int):
        self._rec.qids.add(qid)
        return self._program.quad(qid)

    def contains(self, qid: int) -> bool:
        self._rec.qids.add(qid)
        return self._program.contains(qid)

    def position(self, qid: int) -> int:
        self._rec.qids.add(qid)
        self._rec.positions = True
        return self._program.position(qid)

    def next_qid_of(self, qid: int) -> Optional[int]:
        self._rec.qids.add(qid)
        self._rec.positions = True
        result = self._program.next_qid_of(qid)
        if result is not None:
            self._rec.qids.add(result)
        return result

    def prev_qid_of(self, qid: int) -> Optional[int]:
        self._rec.qids.add(qid)
        self._rec.positions = True
        result = self._program.prev_qid_of(qid)
        if result is not None:
            self._rec.qids.add(result)
        return result

    def __getitem__(self, position: int):
        # interval reads (path/region/body): position-dependent, but
        # only through the returned quads — record them, not the world
        self._rec.positions = True
        quad = self._program[position]
        self._rec.qids.add(quad.qid)
        return quad

    def __len__(self) -> int:
        self._rec.positions = True
        return len(self._program)

    def __iter__(self) -> Iterator:
        self._rec.whole_program = True
        return iter(self._program)

    def qids(self):
        self._rec.whole_program = True
        return self._program.qids()

    def scalar_names(self):
        self._rec.whole_program = True
        return self._program.scalar_names()

    def __getattr__(self, name: str):
        self._rec.whole_program = True
        return getattr(self._program, name)


class _RecordingGraph:
    """Dependence-graph proxy logging the edge families queried."""

    def __init__(self, graph, rec: _SupportRecorder):
        self._graph = graph
        self._rec = rec

    def query(self, kind, src=None, dst=None, **kwargs):
        self._rec.edge_keys.add((kind, src, dst))
        return self._graph.query(kind, src=src, dst=dst, **kwargs)

    def __getattr__(self, name: str):
        self._rec.all_edges = True
        return getattr(self._graph, name)


class _RecordingIndex:
    """Candidate-index proxy logging bucket and structure reads."""

    def __init__(self, index, rec: _SupportRecorder):
        self._index = index
        self._rec = rec

    @property
    def stats(self):
        return self._index.stats

    def statements_of(self, shapes):
        self._rec.buckets.update(shapes)
        return self._index.statements_of(shapes)

    def members_of(self, shapes):
        self._rec.buckets.update(shapes)
        return self._index.members_of(shapes)

    def matches_shape(self, qid, shapes):
        self._rec.qids.add(qid)
        return self._index.matches_shape(qid, shapes)

    def loops_in_order(self):
        self._rec.structure = True
        return self._index.loops_in_order()

    def nested_pairs(self):
        self._rec.structure = True
        return self._index.nested_pairs()

    def tight_pairs(self):
        self._rec.structure = True
        return self._index.tight_pairs()

    def adjacent_pairs(self):
        self._rec.structure = True
        return self._index.adjacent_pairs()


#: the one twin class, built on first use (lazy matching-layer import)
_twin_class = None


def _recording_context(ctx, manager, index, rec: _SupportRecorder):
    """A MatchContext twin whose reads feed the recorder."""
    global _twin_class
    if _twin_class is None:
        from repro.genesis.library import MatchContext

        class _NetworkContext(MatchContext):
            def __init__(self, ctx, manager, index, rec) -> None:
                super().__init__(
                    _RecordingProgram(manager.program, rec),
                    _RecordingGraph(ctx.graph, rec),
                    counters=ctx.counters,
                    structure_provider=manager.structure,
                )
                self._rec = rec
                self.enforce_restrictions = True
                self.match_index = _RecordingIndex(index, rec)

            @property
            def structure(self):
                self._rec.structure = True
                return MatchContext.structure.fget(self)

            def take_seed_restriction(self):
                # sticky: a tail whose seed scan sits under a loop
                # enumeration (ICM's ``any L1, Si``) re-reads the
                # restriction once per loop.  Sound because admission
                # to seed granularity (compile_plan) guarantees the
                # spec's only ``lib.statements`` call is the seed scan.
                return self._seed_restriction

        _twin_class = _NetworkContext
    return _twin_class(ctx, manager, index, rec)


# ----------------------------------------------------------------------
# refresh environment: one interval's change classification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _RefreshEnv:
    """The change-log interval, digested for staleness checks."""

    touched: frozenset[int]
    structural: bool
    loops_dirty: bool
    touched_tokens: frozenset[str]
    #: a touched quad's bucket tokens could not be determined
    tokens_unknown: bool
    deltas: frozenset[tuple[str, int, int]]

    @property
    def any_change(self) -> bool:
        return bool(self.touched or self.deltas)


def _classify_interval(program, changes, deltas) -> Optional[_RefreshEnv]:
    """Digest a change-log interval; None demands a full repass."""
    touched: set[int] = set()
    structural = False
    loops_dirty = False
    tokens: set[str] = set()
    tokens_unknown = False
    for change in changes:
        if change.kind == "opaque":
            return None
        touched.add(change.qid)
        if change.kind in ("add", "remove", "move"):
            structural = True
            loops_dirty = True
        before = getattr(change, "before", None)
        before_shapes = None if before is None else statement_shapes(before)
        current_shapes = (
            statement_shapes(program.quad(change.qid))
            if program.contains(change.qid)
            else None
        )
        for shapes in (before_shapes, current_shapes):
            if shapes and shapes[0] in _STRUCTURAL_SHAPES:
                loops_dirty = True
        if before_shapes is None and current_shapes is None:
            # e.g. modified in place (no pre-image) then removed later
            # in the log: its old buckets are unknowable
            tokens_unknown = True
            loops_dirty = True
        elif change.kind == "modify" and before_shapes == current_shapes:
            # a shape-preserving in-place edit moves no quad between
            # buckets; tails that read its *contents* recorded the qid
            pass
        else:
            tokens.update(before_shapes or ())
            tokens.update(current_shapes or ())
    return _RefreshEnv(
        touched=frozenset(touched),
        structural=structural,
        loops_dirty=loops_dirty,
        touched_tokens=frozenset(tokens),
        tokens_unknown=tokens_unknown,
        deltas=frozenset(deltas),
    )


def _support_stale(support: _Support, env: _RefreshEnv) -> bool:
    """Could this interval change what the recorded run observed?"""
    if support.whole_program and env.any_change:
        return True
    if support.positions and env.structural:
        return True
    if support.structure and env.loops_dirty:
        return True
    if support.all_edges and env.deltas:
        return True
    if not env.touched.isdisjoint(support.qids):
        return True
    if support.buckets and (
        env.tokens_unknown
        or not env.touched_tokens.isdisjoint(support.buckets)
    ):
        return True
    keys = support.edge_keys
    if keys:
        for kind, src, dst in env.deltas:
            if (
                (kind, src, dst) in keys
                or (kind, src, None) in keys
                or (kind, None, dst) in keys
                or (kind, None, None) in keys
            ):
                return True
    return False


# ----------------------------------------------------------------------
# the catalog network
# ----------------------------------------------------------------------
@dataclass
class _TailEntry:
    """Materialized points of one tail run plus their support."""

    points: tuple  # of _CachedPoint triples
    support: _Support


class _SpecState:
    """One spec's standing state inside the network."""

    def __init__(self, plan: TailPlan, optimizer, fingerprint: str):
        self.plan = plan
        self.optimizer = optimizer
        self.fingerprint = fingerprint
        #: seed qid -> entry (seed granular); {None: entry} (spec
        #: granular).  Absent key: never yet evaluated.
        self.entries: dict[Optional[int], _TailEntry] = {}
        #: version the entries describe; -1 forces a full build
        self.version = -1
        #: sorted, deduplicated agenda (None: needs re-sort)
        self.agenda: Optional[list] = None
        #: tail match-phase yields since the last serve (driver fuel)
        self.pending_attempts = 0


class CatalogNetwork:
    """The shared discrimination network over one engine's catalog.

    Owned by a :class:`~repro.genesis.matching.MatchEngine`; reach it
    through ``engine.ensure_network(optimizers)`` /
    ``engine.sweep_all(ctx)`` rather than constructing directly.
    """

    def __init__(self, engine):
        self.engine = engine
        self.manager = engine.manager
        self.stats = engine.stats
        self._specs: dict[str, _SpecState] = {}
        #: the exec-ed generated classifier module's namespace
        self._classifier = None
        self._classifier_source = None
        self._classifier_stale = True
        #: per-version classification memo: qid -> admitted spec names
        self._classified_version = -1
        self._classify_cache: dict[int, tuple[str, ...]] = {}
        self._shared_hits = {"shared_prefix_hits": 0}

    # -- registration --------------------------------------------------
    def register(self, optimizers: Sequence) -> None:
        """Adopt (or re-adopt) catalog members by spec fingerprint."""
        from repro.genesis.matching import spec_fingerprint

        for optimizer in optimizers:
            fingerprint = spec_fingerprint(optimizer)
            state = self._specs.get(optimizer.name)
            if state is not None and state.fingerprint == fingerprint:
                state.optimizer = optimizer  # same spec, newer object
                continue
            self._specs[optimizer.name] = _SpecState(
                plan=compile_plan(optimizer),
                optimizer=optimizer,
                fingerprint=fingerprint,
            )
            self._classifier_stale = True

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._specs))

    def members(self) -> list:
        """Registered optimizer objects, in name order."""
        return [self._specs[name].optimizer for name in self.names()]

    @property
    def source(self):
        """The generated classifier module (for inspection/tests)."""
        self._ensure_classifier()
        return self._classifier_source

    # -- the generated classifier --------------------------------------
    def _ensure_classifier(self):
        if self._classifier is None or self._classifier_stale:
            from repro.genesis.codegen import emit_network

            ordered = [
                self._specs[name].optimizer for name in self.names()
            ]
            generated = emit_network(ordered)
            namespace: dict = {}
            code = compile(
                generated.source, "<genesis:NETWORK>", "exec"
            )
            exec(code, namespace)  # noqa: S102 - same as generator._execute
            self._classifier = namespace
            self._classifier_source = generated
            self._classifier_stale = False
            self._classify_cache.clear()
            self._classified_version = -1
            self.stats.network_nodes = namespace["NETWORK_NODES"]
        return self._classifier

    def _classify(self, ctx, qid: int) -> tuple[str, ...]:
        """Admitted spec names for one candidate seed (memoized per
        program version across every spec's refresh)."""
        cached = self._classify_cache.get(qid)
        if cached is not None:
            return cached
        namespace = self._ensure_classifier()
        shapes = statement_shapes(self.manager.program.quad(qid))
        admitted = namespace["classify_network"](
            ctx, qid, shapes, self._shared_hits
        )
        self._classify_cache[qid] = admitted
        self.stats.network_tokens += 1
        self.stats.network_shared_hits = (
            self._shared_hits["shared_prefix_hits"]
        )
        return admitted

    # -- maintenance ---------------------------------------------------
    def refresh(self, ctx) -> bool:
        """Bring every spec's agenda up to the program version.

        Returns False when this context cannot be served soundly (a
        foreign/stale graph, or restrictions overridden) — the caller
        then falls back to per-spec sweeps.
        """
        manager = self.manager
        program = manager.program
        if not getattr(ctx, "enforce_restrictions", True):
            return False
        if ctx.graph is not manager._graph:
            return False
        base = getattr(ctx, "program", None)
        if base is not None and base is not program:
            return False
        started = time.perf_counter()
        version = program.version
        if version != self._classified_version:
            self._classify_cache.clear()
            self._classified_version = version
        env_cache: dict[int, Optional[_RefreshEnv]] = {}
        for name in self.names():
            state = self._specs[name]
            if state.version == version:
                continue
            env = self._interval_env(state.version, env_cache)
            self._refresh_spec(state, ctx, env)
            state.version = version
        self.stats.network_seconds += time.perf_counter() - started
        return True

    def _interval_env(
        self,
        from_version: int,
        cache: dict[int, Optional[_RefreshEnv]],
    ) -> Optional[_RefreshEnv]:
        if from_version < 0:
            return None
        if from_version in cache:
            return cache[from_version]
        program = self.manager.program
        env: Optional[_RefreshEnv] = None
        changes = program.changes_since(from_version)
        if changes is not None:
            deltas = self.manager.dependence_deltas_since(from_version)
            if deltas is not None:
                env = _classify_interval(program, changes, deltas)
        cache[from_version] = env
        return env

    def _refresh_spec(
        self, state: _SpecState, ctx, env: Optional[_RefreshEnv]
    ) -> None:
        if state.plan.granularity == "seed":
            self._refresh_seed_spec(state, ctx, env)
        else:
            self._refresh_whole_spec(state, ctx, env)

    def _refresh_whole_spec(
        self, state: _SpecState, ctx, env: Optional[_RefreshEnv]
    ) -> None:
        entry = state.entries.get(None)
        if entry is not None and env is not None and not _support_stale(
            entry.support, env
        ):
            self.stats.network_entries_reused += 1
            return
        points, support, attempts = self._run_tail(state, ctx, None)
        state.entries = {None: _TailEntry(points, support)}
        state.agenda = None
        state.pending_attempts += attempts

    def _refresh_seed_spec(
        self, state: _SpecState, ctx, env: Optional[_RefreshEnv]
    ) -> None:
        program = self.manager.program
        index = self.engine.index
        plan = state.plan
        if plan.shapes is not None:
            bucket = index.members_of(plan.shapes)
        else:
            bucket = set(program.qids())
        entries = state.entries
        changed = False
        if env is None:
            entries.clear()
            dirty = set(bucket)
            changed = True
        else:
            for seed in [s for s in entries if s not in bucket]:
                del entries[seed]
                changed = True
            dirty = {
                seed
                for seed, entry in entries.items()
                if seed in env.touched
                or _support_stale(entry.support, env)
            }
            dirty |= bucket - entries.keys()
            self.stats.network_entries_reused += (
                len(entries) - len(dirty & entries.keys())
            )
        for seed in sorted(dirty, key=program.position):
            admitted = self._classify(ctx, seed)
            static = plan.static_edge_keys(seed)
            if plan.name in admitted:
                points, support, attempts = self._run_tail(
                    state, ctx, seed
                )
                support = _Support(
                    qids=support.qids | {seed},
                    edge_keys=support.edge_keys | static,
                    buckets=support.buckets,
                    whole_program=support.whole_program,
                    positions=support.positions,
                    structure=support.structure,
                    all_edges=support.all_edges,
                )
                state.pending_attempts += attempts
            else:
                points = ()
                support = _Support(
                    qids=frozenset({seed}),
                    edge_keys=static,
                    buckets=frozenset(),
                    whole_program=False,
                    positions=False,
                    structure=False,
                    all_edges=False,
                )
            entries[seed] = _TailEntry(points, support)
            changed = True
        if changed:
            state.agenda = None

    def _run_tail(
        self, state: _SpecState, ctx, seed: Optional[int]
    ) -> tuple[tuple, _Support, int]:
        """Run one spec's generated match/pre tail under recording.

        ``seed`` restricts the spec's only statement enumeration to
        that quad (sticky, so a seed scan nested under a loop
        enumeration stays restricted on every loop); ``None`` runs the
        full enumeration (whole-spec entries only — seed specs always
        run per-seed)."""
        rec = _SupportRecorder()
        twin = _recording_context(ctx, self.manager, self.engine.index, rec)
        if seed is not None:
            twin.arm_seed_restriction((seed,))  # sticky on the twin
        raw, attempts = self.engine._enumerate(state.optimizer, twin)
        unique: dict = {}
        for point in raw:
            unique.setdefault(point[0], point)
        self.stats.network_tail_runs += 1
        return tuple(unique.values()), rec.freeze(), attempts

    # -- serving -------------------------------------------------------
    def serve(self, name: str):
        """One spec's standing agenda: ``(points, attempts)``.

        Points are independent copies in the engine's canonical order;
        ``attempts`` drains the tail yields accumulated since the last
        serve (the driver's fuel accounting).
        """
        from repro.genesis.matching import _sort_points

        state = self._specs[name]
        if state.agenda is None:
            merged: dict = {}
            for entry in state.entries.values():
                for point in entry.points:
                    merged.setdefault(point[0], point)
            state.agenda = _sort_points(
                list(merged.values()), self.manager.program
            )
        attempts = state.pending_attempts
        state.pending_attempts = 0
        points = [
            (sig, dict(bindings)) for sig, bindings, _ in state.agenda
        ]
        self.stats.network_agenda_points += len(points)
        return points, attempts

    def invalidate(self) -> None:
        """Drop every standing entry (next refresh rebuilds)."""
        for state in self._specs.values():
            state.entries.clear()
            state.agenda = None
            state.version = -1
