"""The end-to-end optimization pipeline of paper Figure 3.

``source code -> intermediate code + data dependences -> OPT ->
optimized intermediate code``: a convenience layer over the session for
batch (non-interactive) use, as a conventional compiler phase would
drive it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.analysis.manager import AnalysisManager, AnalysisStats
from repro.frontend.lower import parse_program
from repro.genesis.driver import DriverOptions, DriverResult, run_optimizer
from repro.genesis.generator import GeneratedOptimizer
from repro.genesis.matching import MatchStats, engine_for
from repro.genesis.transaction import ApplicationFailure, HealthLedger
from repro.ir.program import Program


@dataclass
class PipelineReport:
    """What one pipeline run did."""

    program: Program
    results: list[DriverResult] = field(default_factory=list)
    #: analysis cache/incremental-update counters for the whole run
    analysis_stats: Optional[AnalysisStats] = None
    #: match-engine counters (candidates scanned, index hits,
    #: worklist vs full sweeps) for the whole run
    match_stats: Optional[MatchStats] = None
    #: per-optimizer health ledger (rollbacks, quarantine state)
    health: Optional[HealthLedger] = None

    @property
    def total_applications(self) -> int:
        return sum(result.applied for result in self.results)

    @property
    def total_rollbacks(self) -> int:
        return sum(result.rollbacks for result in self.results)

    @property
    def quarantined(self) -> list[str]:
        """Optimizers the circuit breaker took out of the run."""
        return self.health.quarantined() if self.health else []

    def failures(self) -> list[ApplicationFailure]:
        """Every contained failure across the run, in order."""
        collected: list[ApplicationFailure] = []
        for result in self.results:
            collected.extend(result.failures)
        return collected

    def applications_by_optimizer(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for result in self.results:
            counts[result.optimizer] = counts.get(result.optimizer, 0) + (
                result.applied
            )
        return counts

    def __str__(self) -> str:
        lines = [f"pipeline: {self.total_applications} application(s)"]
        if self.total_rollbacks:
            lines[0] += f", {self.total_rollbacks} rolled-back failure(s)"
        if self.quarantined:
            lines[0] += f", quarantined: {', '.join(self.quarantined)}"
        lines.extend(f"  {result}" for result in self.results)
        return "\n".join(lines)


def optimize(
    program: Program,
    optimizers: Sequence[GeneratedOptimizer],
    options: Optional[DriverOptions] = None,
    in_place: bool = False,
    verify: bool = False,
    manager: Optional[AnalysisManager] = None,
    health: Optional[HealthLedger] = None,
    quarantine_after: int = 5,
) -> PipelineReport:
    """Run a sequence of optimizers over a program (Figure 3's OPT box).

    Optimizers run in the given order, each to exhaustion by default;
    dependences are refreshed between applications through one shared
    :class:`AnalysisManager`, which updates the graph incrementally
    from the program's change log.  Returns the transformed program (a
    copy unless ``in_place``) and the per-optimizer driver results.

    With ``verify`` every single application is differential-tested
    in-line against the equivalence oracle; under the default
    containment policy a behaviour change rolls the application back
    and records an
    :class:`~repro.genesis.transaction.ApplicationFailure` (with
    ``options.on_failure="raise"`` it raises
    :class:`repro.verify.VerificationError` instead).

    Failures feed one :class:`HealthLedger` shared across the whole
    run: an optimizer that keeps rolling back (``quarantine_after``
    consecutive failures) is quarantined and skipped for the rest of
    the pipeline, and the report lists it.
    """
    options = options or DriverOptions(apply_all=True)
    if verify and not options.verify:
        options = replace(options, verify=True)
    working = program if in_place else program.clone()
    if manager is None or manager.program is not working:
        manager = AnalysisManager(working)
    if health is None:
        health = HealthLedger(quarantine_after=quarantine_after)
    engine = engine_for(manager)
    if options.match_mode == "network":
        # register the whole catalog up front: the shared trie then
        # merges every spec's prefix before the first driver sweep
        engine.ensure_network(optimizers)
    report = PipelineReport(
        program=working,
        analysis_stats=manager.stats,
        match_stats=engine.stats,
        health=health,
    )
    for optimizer in optimizers:
        report.results.append(
            run_optimizer(
                optimizer, working, options, manager=manager, health=health
            )
        )
    return report


def optimize_source(
    source: str,
    optimizers: Sequence[GeneratedOptimizer],
    options: Optional[DriverOptions] = None,
    verify: bool = False,
) -> PipelineReport:
    """Parse mini-Fortran source and optimize it (the full Figure 3)."""
    return optimize(
        parse_program(source), optimizers, options, in_place=True,
        verify=verify,
    )


def optimize_searched(
    program: Program,
    opt_names: Sequence[str],
    options: Optional[DriverOptions] = None,
    in_place: bool = False,
    client=None,
    certify_result: bool = True,
    oracle_trials: int = 3,
    **search_knobs,
):
    """Search for the best pass ordering, then run it (Figure 3 with
    the OPT box's order chosen by :mod:`repro.search`).

    Searches orderings of ``opt_names`` with the configured strategy
    (``search_knobs`` are :class:`repro.search.SearchConfig` fields:
    ``strategy``, ``depth``, ``beam_width``, ``budget``, ``seed``,
    ``objective``, ``prune``), oracle-certifies the winner unless
    ``certify_result=False``, and applies the winning sequence through
    the ordinary pipeline.  Returns ``(PipelineReport, SearchResult)``.
    A ``client`` routes candidate evaluation through the optimization
    service (process-pool parallelism + fingerprint-keyed caching).
    """
    from repro.opts.catalog import build_optimizer, standard_optimizers
    from repro.opts.specs import STANDARD_SPECS
    from repro.search import SearchConfig, certify, search_program
    from repro.search.space import canonical_source

    config = SearchConfig(
        opt_names=tuple(opt_names), options=options, **search_knobs
    )
    source = canonical_source(program)
    result = search_program(source, config, client=client,
                            name=program.name)
    if certify_result:
        certify(
            result,
            source,
            trials=oracle_trials,
            seed=config.seed,
            options=config.driver_options(),
        )
    winners = [
        standard_optimizers((name,))[name]
        if name in STANDARD_SPECS
        else build_optimizer(name)
        for name in result.best_sequence
    ]
    report = optimize(
        program, winners, options=config.driver_options(),
        in_place=in_place,
    )
    return report, result
