"""The constructed optimizer's interactive interface.

Paper Figure 4, step 3: "the constructor packages all of the produced
code and the library routines within an interface, which prompts
interaction with the user": read the source, convert to intermediate
code, compute dependences, then repeatedly let the user

1. select optimization(s) to perform,
2. select application points,
3. override dependence restrictions,

perform the optimization, and optionally recompute dependences between
executions.  :class:`OptimizerSession` is that interface in scriptable
form; :meth:`OptimizerSession.execute_command` adds a tiny textual
command language so the CLI (and tests) can drive it like the paper's
prompt-driven tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.graph import DependenceGraph
from repro.analysis.manager import AnalysisManager, AnalysisStats
from repro.frontend.lower import parse_program
from repro.genesis.cost import ApplicationRecord
from repro.genesis.driver import (
    DriverOptions,
    DriverResult,
    apply_at_point,
    find_application_points,
    run_optimizer,
)
from repro.genesis.generator import GeneratedOptimizer
from repro.genesis.matching import MatchStats, engine_for
from repro.genesis.transaction import HealthLedger
from repro.ir.printer import format_program
from repro.ir.program import Program


class SessionError(Exception):
    """Raised for bad interactive requests (unknown optimizer, point)."""


@dataclass
class SessionEvent:
    """One entry of the session history.

    Failed requests are history too: ``error`` carries the diagnostic
    of a rejected or malformed command, so an interactive transcript
    shows what was *attempted*, not only what succeeded.
    """

    command: str
    result: Optional[DriverResult] = None
    error: Optional[str] = None
    note: Optional[str] = None

    def __str__(self) -> str:
        if self.error is not None:
            return f"{self.command} -> error: {self.error}"
        text = self.command
        if self.result is not None:
            text += f" -> {self.result}"
        if self.note is not None:
            text += f" ({self.note})"
        return text


@dataclass
class OptimizerSession:
    """A constructed optimizer: program + generated optimizations.

    The session owns a working copy of the program; the original is
    kept for before/after comparisons.
    """

    program: Program
    optimizers: dict[str, GeneratedOptimizer] = field(default_factory=dict)
    #: recompute dependences between optimizer executions (step 3.b.vi)
    recompute_dependences: bool = True
    #: differential-test every application against the equivalence
    #: oracle (``verify on`` in the command language)
    verify: bool = False
    #: consecutive rolled-back failures before an optimizer is
    #: quarantined for the rest of the session
    quarantine_after: int = 5
    history: list[SessionEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.original = self.program.clone()
        self._manager = AnalysisManager(self.program)
        #: per-optimizer circuit breaker shared across the session
        self.health = HealthLedger(quarantine_after=self.quarantine_after)
        #: the graph most recently handed out — kept so "recompute off"
        #: can deliberately serve a stale graph
        self._last_graph: Optional[DependenceGraph] = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_source(
        cls,
        source: str,
        optimizers: Sequence[GeneratedOptimizer] = (),
        quarantine_after: int = 5,
    ) -> "OptimizerSession":
        """Read source code and convert it to intermediate code
        (interface steps i and ii)."""
        session = cls(
            program=parse_program(source),
            quarantine_after=quarantine_after,
        )
        for optimizer in optimizers:
            session.register(optimizer)
        return session

    def register(self, optimizer: GeneratedOptimizer) -> None:
        """Add a generated optimization to the session.

        Registration also enrols the spec in the session engine's
        shared discrimination network, so the compiled trie merges
        every registered spec's prefix before the first sweep.
        """
        self.optimizers[optimizer.name] = optimizer
        engine_for(self._manager).ensure_network((optimizer,))

    # ------------------------------------------------------------------
    # state access
    # ------------------------------------------------------------------
    @property
    def dependences(self) -> DependenceGraph:
        """The dependence graph of the current program version.

        Served by the session's :class:`AnalysisManager`: cached per
        program version and refreshed incrementally from the change
        log rather than rebuilt from scratch.
        """
        self._last_graph = self._manager.graph()
        return self._last_graph

    @property
    def analysis_stats(self) -> AnalysisStats:
        """Cache/incremental-update counters of the session's manager."""
        return self._manager.stats

    @property
    def match_stats(self) -> MatchStats:
        """Match-engine counters: candidates scanned, index hits,
        worklist-served vs full sweeps."""
        return engine_for(self._manager).stats

    def _maybe_graph(self) -> Optional[DependenceGraph]:
        """Graph to hand to the driver: stale is allowed when the user
        disabled recomputation."""
        if self.recompute_dependences:
            return self.dependences
        if self._last_graph is None:
            return self.dependences
        return self._last_graph

    def list_optimizations(self) -> list[str]:
        """Names of the registered optimizations."""
        return sorted(self.optimizers)

    def _optimizer(self, name: str) -> GeneratedOptimizer:
        optimizer = self.optimizers.get(name)
        if optimizer is None:
            raise SessionError(
                f"no optimization named {name!r}; registered: "
                f"{self.list_optimizations()}"
            )
        return optimizer

    def points(self, name: str) -> list[dict[str, object]]:
        """Application points of one optimization on the current code."""
        return find_application_points(
            self._optimizer(name), self.program, self._maybe_graph()
        )

    # ------------------------------------------------------------------
    # applying optimizations
    # ------------------------------------------------------------------
    def apply(
        self,
        name: str,
        point: Optional[int] = None,
        all_points: bool = False,
        override_dependences: bool = False,
    ) -> DriverResult:
        """Perform an optimization (interface step v).

        ``point`` selects the N-th application point; ``all_points``
        applies everywhere; neither applies at the first point.
        ``override_dependences`` ignores the Depend section's ``no``
        restrictions (step 3.b.iii.3 — the user takes responsibility
        for safety).

        Every application is transactional: a failing ``act`` (or a
        validation/verification failure) rolls the program back and is
        recorded on the returned result, never corrupting the session.
        An optimizer the circuit breaker has quarantined is refused
        with :class:`SessionError` until ``revive`` clears it.
        """
        command = f"apply {name}"
        try:
            optimizer = self._optimizer(name)
            if self.health.is_quarantined(name):
                entry = self.health.entry(name)
                raise SessionError(
                    f"{name} is quarantined ({entry.reason}); "
                    f"'revive {name}' to re-enable it"
                )
            graph = self._maybe_graph()
        except SessionError as error:
            self.history.append(
                SessionEvent(command=command, error=str(error))
            )
            raise
        if point is not None:
            result = apply_at_point(
                optimizer,
                self.program,
                point,
                graph=graph,
                enforce_restrictions=not override_dependences,
                verify=self.verify,
                manager=self._manager,
            )
        else:
            options = DriverOptions(
                apply_all=all_points,
                recompute_dependences=self.recompute_dependences,
                enforce_restrictions=not override_dependences,
                verify=self.verify,
            )
            result = run_optimizer(
                optimizer, self.program, options, graph,
                manager=self._manager, health=self.health,
            )
        note = None
        if point is not None:
            for failure in result.failures:
                self.health.record_rollback(name, failure)
            if result.applied:
                self.health.record_success(name)
            elif not result.failures:
                note = (
                    f"no application point {point} (the program may "
                    f"have changed since 'points')"
                )
        self.history.append(
            SessionEvent(command=command, result=result, note=note)
        )
        return result

    def apply_sequence(
        self, names: Sequence[str], all_points: bool = True
    ) -> list[DriverResult]:
        """Run several optimizations in the given order.

        "For a sequence of optimizations to be applied to program code,
        the various optimizers are called in the desired sequence."
        """
        return [self.apply(name, all_points=all_points) for name in names]

    def search(
        self,
        strategy: str = "beam",
        depth: int = 3,
        budget: int = 60,
        beam_width: int = 4,
        seed: int = 0,
        apply_winner: bool = False,
    ):
        """Search pass orderings of the registered optimizations.

        Runs a seeded phase-ordering search (:mod:`repro.search`) over
        the *current* program, oracle-certifies the winning pipeline,
        and — with ``apply_winner`` — applies the winning sequence to
        the session program through :meth:`apply_sequence`.  Returns
        the :class:`repro.search.SearchResult`.
        """
        from repro.search import (
            SearchConfig,
            SearchError,
            certify,
            search_program,
        )

        command = f"search {strategy} depth={depth} budget={budget}"
        names = tuple(self.list_optimizations())
        try:
            if not names:
                raise SessionError(
                    "no optimizations registered to search over"
                )
            try:
                config = SearchConfig(
                    opt_names=names,
                    strategy=strategy,
                    depth=depth,
                    budget=budget,
                    beam_width=beam_width,
                    seed=seed,
                )
                source = self.source_text()
                result = search_program(
                    source, config, name=self.program.name
                )
                certify(
                    result, source, seed=seed,
                    options=config.driver_options(),
                )
            except SearchError as error:
                raise SessionError(str(error)) from error
        except SessionError as error:
            self.history.append(
                SessionEvent(command=command, error=str(error))
            )
            raise
        self.history.append(
            SessionEvent(
                command=command,
                note=f"best {result.pipeline_text()}",
            )
        )
        if apply_winner and result.best_sequence:
            self.apply_sequence(result.best_sequence)
        return result

    def infer(self, pairs: int = 18, seed: int = 0):
        """Mine and admission-certify new specs; register the winners.

        Runs the spec-inference harness (:mod:`repro.synth`) with its
        seeded pair generator, registers every admitted optimizer into
        this session (so ``points``/``apply``/``search`` see them
        immediately), and returns the
        :class:`repro.synth.infer.InferenceResult`.  The trace-mining
        arm is left off here — a session wants fast turnaround; use
        ``genesis infer`` for full campaigns.
        """
        from repro.synth.infer import InferenceConfig, run_inference

        command = f"infer pairs={pairs} seed={seed}"
        try:
            result = run_inference(
                InferenceConfig(
                    seed=seed, pairs=pairs, trace_programs=0
                )
            )
        except Exception as error:
            raise self._record_error(command, str(error)) from error
        for admitted in result.admitted:
            self.register(admitted.optimizer())
        self.history.append(
            SessionEvent(
                command=command,
                note=(
                    f"admitted {len(result.admitted)} spec(s): "
                    + ", ".join(s.name for s in result.admitted)
                    if result.admitted
                    else "admitted 0 specs"
                ),
            )
        )
        return result

    def reset(self) -> None:
        """Restore the original program (fresh experiment)."""
        self.program = self.original.clone()
        self._manager = AnalysisManager(self.program)
        self._last_graph = None
        self.history.append(SessionEvent(command="reset"))

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def applications(self) -> list[ApplicationRecord]:
        """Every application performed this session, in order."""
        records: list[ApplicationRecord] = []
        for event in self.history:
            if event.result is not None:
                records.extend(event.result.applications)
        return records

    def show(self) -> str:
        """The current intermediate code, printed."""
        return format_program(self.program)

    def source_text(self) -> str:
        """The current program as compilable mini-Fortran source."""
        from repro.frontend.unparse import unparse_program

        return unparse_program(self.program, name=self.program.name)

    # ------------------------------------------------------------------
    # the textual command interface
    # ------------------------------------------------------------------
    def execute_command(self, command: str) -> str:
        """One interactive command; returns the printable response.

        Commands::

            list                      registered optimizations
            points <OPT>              application points of <OPT>
            apply <OPT>               apply at the first point
            apply <OPT> all           apply at all points
            apply <OPT> <N>           apply at point N
            override <OPT> <N>        apply at point N ignoring 'no' deps
            recompute on|off          toggle dependence recomputation
            verify on|off             oracle-check every application
            deps                      dependence summary
            stats                     analysis + matching + health counters
            health                    per-optimizer rollback/quarantine
            revive <OPT>              clear <OPT>'s quarantine
            search [STRAT] [D] [B]    search pass orderings (certified)
            search apply [STRAT] ...  ...and apply the winning sequence
            infer [PAIRS] [SEED]      mine + certify new specs; register
                                      the admitted optimizers
            show                      print the intermediate code
            save <file>               write the program as source text
            history                   session history
            reset                     restore the original program

        A malformed or rejected command never aborts the session: it
        is recorded in the history as a failed :class:`SessionEvent`
        and reported as :class:`SessionError`.
        """
        try:
            return self._dispatch_command(command)
        except SessionError as error:
            # guarantee the failed attempt is in the history exactly
            # once (apply/revive record their own richer events)
            last = self.history[-1] if self.history else None
            if last is None or last.error != str(error):
                self.history.append(
                    SessionEvent(command=command, error=str(error))
                )
            raise
        except ValueError as error:
            failure = SessionError(f"malformed command {command!r}: {error}")
            self.history.append(
                SessionEvent(command=command, error=str(failure))
            )
            raise failure from error

    def _dispatch_command(self, command: str) -> str:
        words = command.split()
        if not words:
            return ""
        verb = words[0].lower()
        if verb == "list":
            return "\n".join(self.list_optimizations())
        if verb == "points" and len(words) == 2:
            points = self.points(words[1])
            lines = [
                f"{index}: "
                + ", ".join(f"{k}={v}" for k, v in sorted(point.items()))
                for index, point in enumerate(points)
            ]
            return "\n".join(lines) if lines else "(no application points)"
        if verb == "apply" and len(words) >= 2:
            name = words[1]
            if len(words) == 2:
                return str(self.apply(name))
            if words[2].lower() == "all":
                return str(self.apply(name, all_points=True))
            return str(self.apply(name, point=int(words[2])))
        if verb == "override" and len(words) == 3:
            return str(
                self.apply(words[1], point=int(words[2]),
                           override_dependences=True)
            )
        if verb == "recompute" and len(words) == 2:
            self.recompute_dependences = words[1].lower() == "on"
            return f"recompute_dependences = {self.recompute_dependences}"
        if verb == "verify" and len(words) == 2:
            self.verify = words[1].lower() == "on"
            return f"verify = {self.verify}"
        if verb == "deps":
            summary = self.dependences.summary()
            return ", ".join(f"{k}: {v}" for k, v in summary.items())
        if verb == "stats":
            return (
                self.analysis_stats.summary()
                + "\n" + self.match_stats.summary()
                + "\n" + self.health.summary()
            )
        if verb == "health":
            return self.health.summary()
        if verb == "revive" and len(words) == 2:
            name = words[1]
            if name not in self.optimizers:
                raise self._record_error(
                    command, f"no optimization named {name!r}"
                )
            self.health.revive(name)
            self.history.append(SessionEvent(command=command))
            return f"{name} revived"
        if verb == "search":
            rest = list(words[1:])
            apply_winner = bool(rest) and rest[0].lower() == "apply"
            if apply_winner:
                rest = rest[1:]
            strategy = rest[0] if len(rest) >= 1 else "beam"
            depth = int(rest[1]) if len(rest) >= 2 else 3
            budget = int(rest[2]) if len(rest) >= 3 else 60
            result = self.search(
                strategy=strategy, depth=depth, budget=budget,
                apply_winner=apply_winner,
            )
            return result.summary()
        if verb == "infer":
            pairs = int(words[1]) if len(words) >= 2 else 18
            seed = int(words[2]) if len(words) >= 3 else 0
            result = self.infer(pairs=pairs, seed=seed)
            return result.summary()
        if verb == "show":
            return self.show()
        if verb == "save" and len(words) == 2:
            from pathlib import Path

            Path(words[1]).write_text(self.source_text())
            return f"wrote {words[1]}"
        if verb == "history":
            return "\n".join(str(event) for event in self.history) or "(empty)"
        if verb == "reset":
            self.reset()
            return "program restored"
        raise self._record_error(command, f"unknown command {command!r}")

    def _record_error(self, command: str, message: str) -> SessionError:
        """Log a failed command to the history; returns the error."""
        self.history.append(SessionEvent(command=command, error=message))
        return SessionError(message)
