"""Implementation-strategy selection for Depend clauses.

The paper (Section 4) describes "two straightforward ways" to implement
membership-qualified dependence checking:

1. **members-then-deps** — "determine statements that are members and
   then check for the desired dependence";
2. **deps-then-membership** — "consider the dependences of one
   statement and check the corresponding dependent statements for
   membership".

"We found that the cost of implementing the optimizations using these
approaches varies tremendously and is not consistently better for one
method over the other.  Using heuristics, GENesis was changed to select
the least expensive method on a case by case basis."

This module is that selector.  :func:`choose_strategy` runs once per
clause at generation time; the chosen method changes the shape of the
generated code (experiment E6b compares all three policies).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.gospel.ast import (
    BoolOp,
    Cond,
    DepCond,
    DependClause,
    ElemType,
    Ref,
)
from repro.gospel.sema import ClausePlan


class StrategyPolicy(enum.Enum):
    """Generation-time policy for Depend-clause implementation."""

    HEURISTIC = "heuristic"  # the paper's cost heuristic (default)
    FORCE_MEMBERS = "members"  # always method (1)
    FORCE_DEPS = "deps"  # always method (2) when expressible


@dataclass
class ClauseStrategy:
    """The chosen implementation for one Depend clause.

    ``primary_group`` holds the dependence atoms that drive a
    deps-first implementation: a single atom, or several (an OR over
    dependence kinds with identical endpoints, enumerated as the union
    of their edge sets).
    """

    method: str  # "deps" | "members" | "check"
    primary_group: tuple[DepCond, ...] = ()
    reason: str = ""

    @property
    def primary_dep(self) -> Optional[DepCond]:
        return self.primary_group[0] if self.primary_group else None

    def __str__(self) -> str:
        return f"{self.method} ({self.reason})"


def _and_terms(cond: Optional[Cond]) -> list[Cond]:
    """Flatten the top-level AND chain of a condition."""
    if cond is None:
        return []
    if isinstance(cond, BoolOp) and cond.op == "and":
        terms: list[Cond] = []
        for term in cond.terms:
            terms.extend(_and_terms(term))
        return terms
    return [cond]


def _endpoint_names(dep: DepCond) -> set[str]:
    names = set()
    for value in (dep.src, dep.dst):
        if isinstance(value, Ref):
            names.add(value.base)
    return names


def usable_primary_groups(
    clause: DependClause, plan: ClausePlan
) -> list[tuple[DepCond, ...]]:
    """Dependence atom groups that can drive a deps-first implementation.

    A usable *atom* sits in the clause's top-level AND chain, is not a
    virtual ``fused`` dependence, and its endpoints cover every search
    variable of the clause (so enumerating its edges binds them all).
    A usable *group* is a top-level OR whose terms are all usable atoms
    with identical endpoints — implemented as the union of the terms'
    edge sets (e.g. ``flow_dep(...) OR anti_dep(...) OR out_dep(...)``).
    """
    search = set(plan.search_vars)

    def usable_atom(term: Cond) -> bool:
        if not isinstance(term, DepCond) or term.kind == "fused":
            return False
        endpoints = _endpoint_names(term)
        return not (search and not search <= endpoints)

    groups: list[tuple[DepCond, ...]] = []
    for term in _and_terms(clause.condition):
        if usable_atom(term):
            groups.append((term,))  # type: ignore[arg-type]
            continue
        if isinstance(term, BoolOp) and term.op == "or":
            atoms = term.terms
            if all(usable_atom(atom) for atom in atoms):
                endpoints = {
                    (str(atom.src), str(atom.dst))  # type: ignore[union-attr]
                    for atom in atoms
                }
                if len(endpoints) == 1:
                    groups.append(tuple(atoms))  # type: ignore[arg-type]
    return groups


def usable_primary_deps(
    clause: DependClause, plan: ClausePlan
) -> list[DepCond]:
    """Single dependence atoms usable as a deps-first driver."""
    return [
        group[0]
        for group in usable_primary_groups(clause, plan)
        if len(group) == 1
    ]


def _has_selective_direction(dep: DepCond) -> bool:
    """Direction patterns containing '<' or '>' match few edges."""
    if dep.direction is None:
        return False
    return any(direction in ("<", ">") for direction in dep.direction)


def _has_bound_endpoint(dep: DepCond, plan: ClausePlan) -> bool:
    search = set(plan.search_vars)
    for value in (dep.src, dep.dst):
        if isinstance(value, Ref) and (
            value.base in plan.bound_before
            or (value.base not in search and value.attrs)
        ):
            return True
        if isinstance(value, Ref) and value.attrs:
            # attribute chains like L1.head resolve to bound loops
            return True
    return False


def choose_strategy(
    clause: DependClause,
    plan: ClausePlan,
    types: dict[str, ElemType],
    policy: StrategyPolicy = StrategyPolicy.HEURISTIC,
) -> ClauseStrategy:
    """Pick the implementation method for one Depend clause.

    The heuristic: drive from the dependence graph (method 2) when a
    usable atom has a bound endpoint (its adjacency list is short) or a
    selective direction vector (few edges match ``<``/``>`` patterns);
    otherwise enumerate members and verify dependences (method 1).
    Clauses that bind a dependence *position* must use method 2 — only
    edge enumeration produces the position.
    """
    if not plan.search_vars and not plan.new_pos_vars:
        return ClauseStrategy(method="check", reason="no free variables")

    groups = usable_primary_groups(clause, plan)
    needs_pos = any(b.pos_name is not None for b in clause.binders)

    if needs_pos:
        if not groups:
            raise ValueError(
                "a position-binding clause needs an enumerable dependence "
                f"condition (clause at line {clause.line})"
            )
        return ClauseStrategy(
            method="deps",
            primary_group=groups[0],
            reason="position capture requires edge enumeration",
        )

    if policy is StrategyPolicy.FORCE_MEMBERS or not groups:
        reason = (
            "forced members-first"
            if policy is StrategyPolicy.FORCE_MEMBERS
            else "no enumerable dependence condition"
        )
        return ClauseStrategy(method="members", reason=reason)

    if policy is StrategyPolicy.FORCE_DEPS:
        return ClauseStrategy(
            method="deps", primary_group=groups[0],
            reason="forced deps-first",
        )

    for group in groups:
        if any(_has_bound_endpoint(atom, plan) for atom in group):
            return ClauseStrategy(
                method="deps",
                primary_group=group,
                reason="dependence has a bound endpoint (short adjacency)",
            )
    # Both endpoints free: enumerating edges scans the whole dependence
    # graph per candidate clause evaluation, while membership domains
    # (loop bodies) are small — the measured winner on the suite.
    return ClauseStrategy(
        method="members",
        reason="no bound endpoint; membership domain is smaller",
    )
