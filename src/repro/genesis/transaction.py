"""Transactional optimization application and failure containment.

GENesis runs *generated* code: every GOSpeL spec compiles to
``set_up``/``match``/``pre``/``act`` procedures that mutate the program
in place, and the interactive interface even lets users override the
dependence restrictions — so a buggy (or deliberately overridden)
optimizer is an expected failure mode, not an exceptional one.  This
module keeps one bad application from corrupting a whole run:

* :class:`ProgramTransaction` wraps one ``act`` (plus its post-apply
  validation and equivalence verification) so that any exception,
  IR-validation failure or oracle divergence restores the program to
  its pre-apply state.  The restore prefers the change log
  (:meth:`repro.ir.program.Program.rollback_to` — cheap, and analysis
  managers follow along incrementally); when the log cannot cover the
  damage (an untagged in-place ``touch``) it falls back to the deep
  snapshot taken at transaction begin.

* :class:`ApplicationFailure` is the structured record of one
  contained failure — which optimizer, at which bindings, in which
  phase, and how the program was restored.

* :class:`HealthLedger` is the per-optimizer circuit breaker: after
  ``quarantine_after`` *consecutive* rollbacks an optimizer is
  quarantined for the rest of the run, reported through
  :class:`~repro.genesis.pipeline.PipelineReport` and the session's
  ``stats``/``health`` commands.

The driver's budgets (``max_rollbacks``, ``deadline_seconds``,
``max_match_attempts``) live in
:class:`~repro.genesis.driver.DriverOptions`; the fault-injection
harness that exercises all of this is :mod:`repro.verify.chaos`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.ir.program import Program, RollbackUnavailable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.genesis.generator import GeneratedOptimizer


class ContainmentError(RuntimeError):
    """A failed application could not be rolled back.

    Raised only when the change log cannot undo the damage *and* the
    transaction was opened without a deep snapshot
    (``snapshot=False``); the program may be left half-transformed.
    """


class BudgetExceeded(RuntimeError):
    """A driver budget (deadline, fuel, rollback cap) was exhausted."""


@dataclass
class ApplicationFailure:
    """One contained optimization-application failure.

    ``phase`` names where the failure surfaced: ``"act"`` (the
    generated action raised), ``"validate"`` (the transformed program
    failed IR validation), or ``"verify"`` (the equivalence oracle
    found a behaviour change).  ``restored`` says how the pre-apply
    state came back: ``"log"`` (change-log undo), ``"snapshot"``
    (deep-clone fallback), or ``"none"`` (containment itself failed).
    """

    optimizer: str
    phase: str
    error_type: str
    error: str
    bindings: dict[str, object] = field(default_factory=dict)
    restored: str = "log"

    def __str__(self) -> str:
        where = ", ".join(
            f"{name}={value}" for name, value in sorted(
                self.bindings.items(), key=lambda item: item[0]
            )
        )
        return (
            f"{self.optimizer} failed in {self.phase}"
            + (f" at [{where}]" if where else "")
            + f": {self.error_type}: {self.error} (restored via "
            f"{self.restored})"
        )


class ProgramTransaction:
    """Snapshot/restore scope around one optimization application.

    Usage::

        txn = ProgramTransaction(program)
        txn.begin()
        try:
            optimizer.act(ctx)
            ...validation / verification...
        except Exception:
            restored = txn.rollback()   # "log" | "snapshot"
            ...record ApplicationFailure...
        else:
            txn.commit()

    ``begin`` pins the change log (no trimming while the transaction
    is open) and, unless ``snapshot=False``, takes a deep clone as the
    fallback restore source.  The log-based restore is preferred: it
    replays inverse mutations through the ordinary mutation API, so a
    shared :class:`~repro.analysis.manager.AnalysisManager` follows
    the rollback *incrementally* instead of rebuilding its dependence
    graph from scratch.
    """

    def __init__(self, program: Program, snapshot: bool = True):
        self.program = program
        self.take_snapshot = snapshot
        self._mark: Optional[int] = None
        self._snapshot: Optional[Program] = None
        #: how the last rollback restored state ("log" or "snapshot")
        self.restored: Optional[str] = None

    @property
    def active(self) -> bool:
        return self._mark is not None

    @property
    def snapshot(self) -> Optional[Program]:
        """The deep clone taken at begin (also the oracle's baseline)."""
        return self._snapshot

    def begin(self, snapshot: Optional[Program] = None) -> int:
        """Open the transaction; returns the pinned version.

        ``snapshot`` lets the caller donate an already-made clone
        (the verification gate clones the program anyway) instead of
        paying for a second copy.
        """
        if self.active:
            raise RuntimeError("transaction already open")
        if snapshot is not None:
            self._snapshot = snapshot
        elif self.take_snapshot:
            self._snapshot = self.program.clone()
        self._mark = self.program.pin()
        return self._mark

    def commit(self) -> None:
        """Close the transaction, keeping the mutations."""
        self._close()

    def rollback(self) -> str:
        """Restore the pre-``begin`` program state; how it was done.

        Tries the change-log undo first; falls back to the deep
        snapshot when the log cannot reach the mark.  Raises
        :class:`ContainmentError` when neither path is available.
        """
        if self._mark is None:
            raise RuntimeError("no open transaction to roll back")
        try:
            self.program.rollback_to(self._mark)
            self.restored = "log"
        except RollbackUnavailable as error:
            if self._snapshot is None:
                self.restored = "none"
                self._close()
                raise ContainmentError(
                    f"cannot restore program to version {self._mark}: "
                    f"{error} (and no snapshot was taken)"
                ) from error
            self.program.restore_from(self._snapshot)
            self.restored = "snapshot"
            self._mark = None  # restore_from cleared the pins
        self._close()
        return self.restored

    def _close(self) -> None:
        if self._mark is not None:
            self.program.unpin(self._mark)
        self._mark = None
        self._snapshot = None


@dataclass
class OptimizerHealth:
    """Per-optimizer ledger entry."""

    name: str
    applications: int = 0
    rollbacks: int = 0
    consecutive_rollbacks: int = 0
    quarantined: bool = False
    reason: Optional[str] = None

    def __str__(self) -> str:
        state = "QUARANTINED" if self.quarantined else "healthy"
        text = (
            f"{self.name}: {state}, {self.applications} application(s), "
            f"{self.rollbacks} rollback(s)"
        )
        if self.reason:
            text += f" [{self.reason}]"
        return text


class HealthLedger:
    """The circuit breaker: quarantine optimizers that keep failing.

    ``quarantine_after`` consecutive rollbacks (successes reset the
    count) trip the breaker; a quarantined optimizer is skipped by the
    pipeline and refused by the session until :meth:`revive` is
    called.
    """

    def __init__(self, quarantine_after: int = 5):
        if quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        self.quarantine_after = quarantine_after
        self._entries: dict[str, OptimizerHealth] = {}

    def entry(self, name: str) -> OptimizerHealth:
        health = self._entries.get(name)
        if health is None:
            health = self._entries[name] = OptimizerHealth(name=name)
        return health

    def record_success(self, name: str) -> None:
        health = self.entry(name)
        health.applications += 1
        health.consecutive_rollbacks = 0

    def record_rollback(self, name: str, failure: ApplicationFailure) -> bool:
        """Record one contained failure; True when it trips the breaker."""
        health = self.entry(name)
        health.rollbacks += 1
        health.consecutive_rollbacks += 1
        if (
            not health.quarantined
            and health.consecutive_rollbacks >= self.quarantine_after
        ):
            health.quarantined = True
            health.reason = (
                f"{health.consecutive_rollbacks} consecutive rollback(s); "
                f"last: {failure.phase}: {failure.error_type}"
            )
            return True
        return health.quarantined

    def is_quarantined(self, name: str) -> bool:
        health = self._entries.get(name)
        return health is not None and health.quarantined

    def revive(self, name: str) -> None:
        """Clear an optimizer's quarantine (the user takes the risk)."""
        health = self.entry(name)
        health.quarantined = False
        health.consecutive_rollbacks = 0
        health.reason = None

    def quarantined(self) -> list[str]:
        return sorted(
            name
            for name, health in self._entries.items()
            if health.quarantined
        )

    def entries(self) -> list[OptimizerHealth]:
        return [self._entries[name] for name in sorted(self._entries)]

    def summary(self) -> str:
        if not self._entries:
            return "health: no applications recorded"
        lines = ["health:"]
        lines.extend(f"  {health}" for health in self.entries())
        return "\n".join(lines)

    def as_dict(self) -> dict[str, object]:
        return {
            "quarantine_after": self.quarantine_after,
            "optimizers": {
                health.name: {
                    "applications": health.applications,
                    "rollbacks": health.rollbacks,
                    "quarantined": health.quarantined,
                    "reason": health.reason,
                }
                for health in self.entries()
            },
        }
