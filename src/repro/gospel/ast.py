"""Abstract syntax for GOSpeL specifications.

A specification has three sections::

    TYPE        variable declarations over code-element types
    PRECOND     Code_Pattern (syntactic format) then Depend (dependences)
    ACTION      sequence of primitive transformations

The AST mirrors the paper's structure directly; GENesis's code
generator walks it to emit the four per-optimization procedures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union


class ElemType(enum.Enum):
    """GOSpeL code-element types."""

    STMT = "Stmt"
    LOOP = "Loop"
    NESTED_LOOPS = "Nested Loops"
    TIGHT_LOOPS = "Tight Loops"
    ADJACENT_LOOPS = "Adjacent Loops"


#: Pair types declare two loop variables at once.
PAIR_TYPES = frozenset(
    {ElemType.NESTED_LOOPS, ElemType.TIGHT_LOOPS, ElemType.ADJACENT_LOOPS}
)


class Quant(enum.Enum):
    """Quantifiers over code elements."""

    ANY = "any"
    ALL = "all"
    NO = "no"


@dataclass(frozen=True)
class Declaration:
    """One TYPE-section declaration: a variable (or pair) and its type."""

    elem_type: ElemType
    names: tuple[str, ...]  # one name, or a pair for the loop-pair types
    line: int = 0


# ----------------------------------------------------------------------
# value expressions (shared by patterns, conditions and actions)
# ----------------------------------------------------------------------
class Value:
    """Base class for value expressions (marker)."""

    __slots__ = ()


@dataclass(frozen=True)
class Ref(Value):
    """An attribute reference chain: ``Si``, ``Si.opr_2``, ``L1.head.prev``."""

    base: str
    attrs: tuple[str, ...] = ()

    def __str__(self) -> str:
        return ".".join((self.base,) + self.attrs)


@dataclass(frozen=True)
class NumberLit(Value):
    """A numeric literal."""

    value: Union[int, float]

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class SymbolLit(Value):
    """A bare symbolic constant: ``assign``, ``const``, ``var``, ``doall``..."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FuncVal(Value):
    """A builtin value function: ``type(x)``, ``class(S)``, ``trip(L)``,
    ``operand(S, pos)``."""

    func: str
    args: tuple[Value, ...]

    def __str__(self) -> str:
        return f"{self.func}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class Arith(Value):
    """Arithmetic over values, evaluated at match/action time."""

    op: str  # + - * /
    left: Value
    right: Value

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class NewTemp(Value):
    """A fresh temporary variable operand (action templates only)."""

    def __str__(self) -> str:
        return "newtemp"


# ----------------------------------------------------------------------
# boolean conditions
# ----------------------------------------------------------------------
class Cond:
    """Base class for boolean conditions (marker)."""

    __slots__ = ()


@dataclass(frozen=True)
class BoolOp(Cond):
    """AND/OR over conditions (evaluated left-to-right, short-circuit —
    conjunct order is observable in the cost model, experiment E6)."""

    op: str  # "and" | "or"
    terms: tuple[Cond, ...]

    def __str__(self) -> str:
        joiner = f" {self.op.upper()} "
        return "(" + joiner.join(str(t) for t in self.terms) + ")"


@dataclass(frozen=True)
class NotOp(Cond):
    """NOT(condition)."""

    term: Cond

    def __str__(self) -> str:
        return f"NOT({self.term})"


@dataclass(frozen=True)
class Compare(Cond):
    """``value relop value`` with relop in ``== != < <= > >=``."""

    relop: str
    left: Value
    right: Value

    def __str__(self) -> str:
        return f"{self.left} {self.relop} {self.right}"


@dataclass(frozen=True)
class DepCond(Cond):
    """A dependence atom: ``flow_dep(Si, Sj, (=))``.

    ``kind`` is flow/anti/out/ctrl/fused; ``direction`` is None when the
    vector is omitted (any loop-carried relation acceptable).
    """

    kind: str
    src: Value
    dst: Value
    direction: Optional[tuple[str, ...]] = None

    def __str__(self) -> str:
        vector = (
            f", ({','.join(self.direction)})" if self.direction is not None else ""
        )
        return f"{self.kind}_dep({self.src}, {self.dst}{vector})"


@dataclass(frozen=True)
class MemCond(Cond):
    """A membership qualification ``mem(Element, Set)``."""

    element: Ref
    set_expr: "SetExpr"

    def __str__(self) -> str:
        return f"mem({self.element}, {self.set_expr})"


# ----------------------------------------------------------------------
# set expressions
# ----------------------------------------------------------------------
class SetExpr:
    """Base class for set expressions (marker)."""

    __slots__ = ()


@dataclass(frozen=True)
class SetRef(SetExpr):
    """A named set: a loop variable (its body) or an attribute chain."""

    ref: Ref

    def __str__(self) -> str:
        return str(self.ref)


@dataclass(frozen=True)
class PathSet(SetExpr):
    """``path(Si, Sj)``: statements on paths between two statements."""

    start: Value
    stop: Value

    def __str__(self) -> str:
        return f"path({self.start}, {self.stop})"


@dataclass(frozen=True)
class RegionSet(SetExpr):
    """``region(S, S')``: statements textually strictly between two
    statements (no path widening — a static program segment)."""

    start: Value
    stop: Value

    def __str__(self) -> str:
        return f"region({self.start}, {self.stop})"


@dataclass(frozen=True)
class SetOp(SetExpr):
    """``inter(s1, s2)`` / ``union(s1, s2)``."""

    op: str  # "inter" | "union"
    left: SetExpr
    right: SetExpr

    def __str__(self) -> str:
        return f"{self.op}({self.left}, {self.right})"


@dataclass(frozen=True)
class UsesSet(SetExpr):
    """``uses(operand_value, set)``: (statement, position) use sites of
    an operand within a set of statements (action ``forall`` domain)."""

    operand: Value
    within: SetExpr

    def __str__(self) -> str:
        return f"uses({self.operand}, {self.within})"


@dataclass(frozen=True)
class RangeSet(SetExpr):
    """``range(init, final, step)``: integer iteration values (action
    ``forall`` domain, used by loop unrolling)."""

    init: Value
    final: Value
    step: Value

    def __str__(self) -> str:
        return f"range({self.init}, {self.final}, {self.step})"


# ----------------------------------------------------------------------
# precondition clauses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Binder:
    """One bound name in a clause: ``Si`` or ``(Sj, pos)``.

    The second form also binds (or, if already bound, *constrains*) the
    operand position of the matched dependence — the paper's
    ``(Sj,pos)`` notation with unification semantics.
    """

    name: str
    pos_name: Optional[str] = None
    line: int = 0

    def __str__(self) -> str:
        if self.pos_name:
            return f"({self.name}, {self.pos_name})"
        return self.name


@dataclass(frozen=True)
class PatternClause:
    """A Code_Pattern clause: ``quant binders : format ;``."""

    quant: Quant
    binders: tuple[Binder, ...]
    format: Optional[Cond]  # None for bare ``any(L1, L2);``
    line: int = 0

    def __str__(self) -> str:
        binders = ", ".join(str(b) for b in self.binders)
        if self.format is None:
            return f"{self.quant.value} {binders};"
        return f"{self.quant.value} {binders}: {self.format};"


@dataclass(frozen=True)
class DependClause:
    """A Depend clause: ``quant binders : memberships, conditions ;``.

    ``binders`` may be empty — the clause then merely tests the
    condition over already-bound elements (Figure 2's
    ``no L1.head flow_dep(L1.head, L2.head)``).
    """

    quant: Quant
    binders: tuple[Binder, ...]
    memberships: tuple[MemCond, ...]
    condition: Optional[Cond]
    line: int = 0

    def __str__(self) -> str:
        binders = ", ".join(str(b) for b in self.binders)
        parts = [str(m) for m in self.memberships]
        if self.condition is not None:
            parts.append(str(self.condition))
        return f"{self.quant.value} {binders}: {', '.join(parts)};"


# ----------------------------------------------------------------------
# actions
# ----------------------------------------------------------------------
class Action:
    """Base class for actions (marker)."""

    __slots__ = ()


@dataclass(frozen=True)
class StmtTemplate:
    """An element description for ``add``: ``stmt(result, opc, a [, b])``."""

    result: Value
    opcode: str
    a: Value
    b: Optional[Value] = None

    def __str__(self) -> str:
        operands = f"{self.result}, {self.opcode}, {self.a}"
        if self.b is not None:
            operands += f", {self.b}"
        return f"stmt({operands})"


@dataclass(frozen=True)
class DeleteAction(Action):
    """``delete(a)``: delete element ``a``."""

    target: Value

    def __str__(self) -> str:
        return f"delete({self.target});"


@dataclass(frozen=True)
class MoveAction(Action):
    """``move(a, b)``: remove ``a``, place it following ``b``."""

    target: Value
    after: Value

    def __str__(self) -> str:
        return f"move({self.target}, {self.after});"


@dataclass(frozen=True)
class CopyAction(Action):
    """``copy(a, b, c)``: copy ``a``, place it following ``b``, name it
    ``c``.  When ``a`` is a loop body the copy is the whole block."""

    source: Value
    after: Value
    name: str

    def __str__(self) -> str:
        return f"copy({self.source}, {self.after}, {self.name});"


@dataclass(frozen=True)
class AddAction(Action):
    """``add(a, description, b)``: create the described element after
    ``a`` and name it ``b``."""

    after: Value
    template: StmtTemplate
    name: str

    def __str__(self) -> str:
        return f"add({self.after}, {self.template}, {self.name});"


@dataclass(frozen=True)
class ModifyAction(Action):
    """``modify(lvalue, new_value)``: overwrite an operand or attribute."""

    lvalue: Value
    new_value: Value

    def __str__(self) -> str:
        return f"modify({self.lvalue}, {self.new_value});"


@dataclass(frozen=True)
class ForallAction(Action):
    """``forall binder in set [where cond] { actions }``."""

    binder: Binder
    domain: SetExpr
    where: Optional[Cond]
    body: tuple[Action, ...]

    def __str__(self) -> str:
        where = f" where {self.where}" if self.where is not None else ""
        inner = " ".join(str(a) for a in self.body)
        return f"forall {self.binder} in {self.domain}{where} {{ {inner} }}"


# ----------------------------------------------------------------------
# the whole specification
# ----------------------------------------------------------------------
@dataclass
class Specification:
    """A complete GOSpeL specification for one optimization."""

    name: str
    declarations: tuple[Declaration, ...]
    patterns: tuple[PatternClause, ...]
    depends: tuple[DependClause, ...]
    actions: tuple[Action, ...]
    source: str = ""

    def declared_names(self) -> dict[str, ElemType]:
        """Mapping from every declared variable to its element type."""
        names: dict[str, ElemType] = {}
        for decl in self.declarations:
            for name in decl.names:
                names[name] = decl.elem_type
        return names

    def loop_pairs(self) -> list[tuple[str, str, ElemType]]:
        """The declared loop-pair variables with their pair types.

        A pair declaration lists names two at a time; reused names
        chain the pairs (``(L1, L2), (L2, L3)`` declares a triple).
        """
        pairs = []
        for decl in self.declarations:
            if decl.elem_type in PAIR_TYPES:
                for i in range(0, len(decl.names) - 1, 2):
                    pairs.append(
                        (decl.names[i], decl.names[i + 1], decl.elem_type)
                    )
        return pairs
