"""Diagnostics for GOSpeL specifications."""

from __future__ import annotations


class GospelError(Exception):
    """A lexical, syntactic or semantic error in a GOSpeL specification."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.message = message
        self.line = line
        self.column = column
        super().__init__(self._render())

    def _render(self) -> str:
        if self.line:
            return f"GOSpeL {self.line}:{self.column}: {self.message}"
        return f"GOSpeL: {self.message}"


class GospelSyntaxError(GospelError):
    """Malformed specification text."""


class GospelSemanticError(GospelError):
    """Well-formed text violating GOSpeL's static rules."""
