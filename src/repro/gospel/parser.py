"""Recursive-descent parser for GOSpeL.

Accepts the concrete syntax of the paper's figures (Figure 1 and 2) and
the Appendix BNF, extended with the action-language conveniences the
prototype restricted (arithmetic in action arguments, ``forall`` over
expression domains with ``where`` filters).

Grammar sketch::

    spec      := "TYPE" decl* "PRECOND" "Code_Pattern" pattern*
                 "Depend" depend* "ACTION" action*
    decl      := type_name ":" declarator ("," declarator)* ";"
    type_name := "Stmt" | "Loop" | "Nested Loops" | "Tight Loops"
               | "Adjacent Loops"
    pattern   := quant binders [":" cond] ";"
    depend    := quant [binders] ":" [mems ","] cond ";"
               | quant ref cond ";"          (bound-element form, Fig. 2)
    action    := prim ";" | "forall" binder "in" setexpr
                 ["where" cond] "{" action* "}"
"""

from __future__ import annotations

from typing import Optional

from repro.gospel.ast import (
    PAIR_TYPES,
    Action,
    AddAction,
    Arith,
    Binder,
    BoolOp,
    Compare,
    Cond,
    CopyAction,
    Declaration,
    DeleteAction,
    DepCond,
    DependClause,
    ElemType,
    ForallAction,
    FuncVal,
    MemCond,
    ModifyAction,
    MoveAction,
    NewTemp,
    NotOp,
    NumberLit,
    PatternClause,
    PathSet,
    Quant,
    RangeSet,
    Ref,
    RegionSet,
    SetExpr,
    SetOp,
    SetRef,
    Specification,
    StmtTemplate,
    UsesSet,
    Value,
)
from repro.gospel.errors import GospelSyntaxError
from repro.gospel.tokens import GTok, Token, tokenize

#: Dependence-atom names accepted in conditions.
DEP_KINDS = {
    "flow_dep": "flow",
    "anti_dep": "anti",
    "out_dep": "out",
    "ctrl_dep": "ctrl",
    "fused_dep": "fused",
}

#: Attribute names allowed in reference chains (case-folded).
ATTRS = frozenset(
    {
        "opc",
        "opr_1",
        "opr_2",
        "opr_3",
        "head",
        "end",
        "body",
        "lcv",
        "init",
        "final",
        "step",
        "next",
        "prev",
        "nxt",
        "label",
    }
)

_ATTR_CANON = {"nxt": "next"}

RELOPS = ("==", "!=", "<=", ">=", "<", ">")

DIRECTION_TOKENS = {"<": "<", ">": ">", "=": "=", "*": "*", "any": "*"}


class GospelParser:
    """Parses one specification's text."""

    def __init__(self, source: str, name: str = "OPT"):
        self.source = source
        self.name = name
        self.tokens = tokenize(source)
        self.position = 0
        self.declared: dict[str, ElemType] = {}

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not GTok.EOF:
            self.position += 1
        return token

    def expect_op(self, text: str) -> Token:
        if not self.current.is_op(text):
            self._fail(f"expected {text!r}, found {self.current}")
        return self.advance()

    def expect_keyword(self, text: str) -> Token:
        if not self.current.is_keyword(text):
            self._fail(f"expected {text!r}, found {self.current}")
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind is not GTok.IDENT:
            self._fail(f"expected identifier, found {self.current}")
        return self.advance()

    def _fail(self, message: str) -> None:
        raise GospelSyntaxError(message, self.current.line,
                                self.current.column)

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------
    def parse(self) -> Specification:
        self.expect_keyword("type")
        declarations = []
        while not self.current.is_keyword("precond"):
            declarations.append(self.parse_declaration())
        self.expect_keyword("precond")

        self.expect_keyword("code_pattern")
        patterns = []
        while not self.current.is_keyword("depend"):
            patterns.append(self.parse_pattern_clause())
        self.expect_keyword("depend")

        depends = []
        while not self.current.is_keyword("action"):
            depends.append(self.parse_depend_clause())
        self.expect_keyword("action")

        actions = []
        while self.current.kind is not GTok.EOF:
            actions.append(self.parse_action())

        return Specification(
            name=self.name,
            declarations=tuple(declarations),
            patterns=tuple(patterns),
            depends=tuple(depends),
            actions=tuple(actions),
            source=self.source,
        )

    # ------------------------------------------------------------------
    # TYPE section
    # ------------------------------------------------------------------
    def parse_declaration(self) -> Declaration:
        line = self.current.line
        elem_type = self.parse_type_name()
        self.expect_op(":")
        names: list[str] = []
        pair = elem_type in (
            ElemType.NESTED_LOOPS,
            ElemType.TIGHT_LOOPS,
            ElemType.ADJACENT_LOOPS,
        )
        while True:
            if pair:
                self.expect_op("(")
                first = self.expect_ident().text
                self.expect_op(",")
                second = self.expect_ident().text
                self.expect_op(")")
                names.extend((first, second))
            else:
                names.append(self.expect_ident().text)
            if self.current.is_op(","):
                self.advance()
                continue
            break
        self.expect_op(";")
        for name in names:
            if name in self.declared and self.declared[name] is not elem_type:
                self._fail(f"{name!r} declared twice with different types")
            # repeating a name inside pair declarations chains the
            # pairs: ``Tight Loops: (L1, L2), (L2, L3);`` names a
            # perfect triple nest
            self.declared[name] = elem_type
        return Declaration(elem_type=elem_type, names=tuple(names), line=line)

    def parse_type_name(self) -> ElemType:
        token = self.current
        if token.is_keyword("stmt"):
            self.advance()
            return ElemType.STMT
        if token.is_keyword("loop"):
            self.advance()
            return ElemType.LOOP
        if token.is_keyword("nested"):
            self.advance()
            self.expect_keyword("loops")
            return ElemType.NESTED_LOOPS
        if token.is_keyword("tight"):
            self.advance()
            self.expect_keyword("loops")
            return ElemType.TIGHT_LOOPS
        if token.is_keyword("adjacent"):
            self.advance()
            self.expect_keyword("loops")
            return ElemType.ADJACENT_LOOPS
        self._fail(f"expected a type name, found {token}")
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------
    # PRECOND: Code_Pattern
    # ------------------------------------------------------------------
    def parse_pattern_clause(self) -> PatternClause:
        line = self.current.line
        quant = self.parse_quant()
        binders = self.parse_binder_list()
        format_cond: Optional[Cond] = None
        if self.current.is_op(":"):
            self.advance()
            format_cond = self.parse_cond()
        self.expect_op(";")
        return PatternClause(
            quant=quant, binders=tuple(binders), format=format_cond, line=line
        )

    def parse_quant(self) -> Quant:
        token = self.current
        for quant in Quant:
            if token.is_keyword(quant.value):
                self.advance()
                return quant
        self._fail(f"expected a quantifier (any/all/no), found {token}")
        raise AssertionError("unreachable")

    def parse_binder_list(self) -> list[Binder]:
        binders = [self.parse_binder()]
        while self.current.is_op(","):
            self.advance()
            binders.append(self.parse_binder())
        return binders

    def parse_binder(self) -> Binder:
        line = self.current.line
        if self.current.is_op("("):
            self.advance()
            first = self.expect_ident().text
            self.expect_op(",")
            second = self.expect_ident().text
            self.expect_op(")")
            second_type = self.declared.get(second)
            if second_type is not None and second_type in PAIR_TYPES:
                # a loop-pair occurrence like ``any(L1, L2)``: two
                # element binders rather than a position capture; encode
                # as one binder here, split by _split_pair_binders
                return Binder(name=f"{first}\0{second}", line=line)
            return Binder(name=first, pos_name=second, line=line)
        name = self.expect_ident().text
        return Binder(name=name, line=line)

    # ------------------------------------------------------------------
    # PRECOND: Depend
    # ------------------------------------------------------------------
    def parse_depend_clause(self) -> DependClause:
        line = self.current.line
        quant = self.parse_quant()
        binders: list[Binder] = []

        if self.current.is_op(":"):
            self.advance()  # ``no : cond ;`` — bare condition
        elif self._looks_like_bound_ref():
            # Figure 2 form: ``no L1.head flow_dep(L1.head, L2.head)``
            self.parse_ref()  # informational; the condition repeats it
            if self.current.is_op(":"):
                self.advance()
        else:
            binders = self.parse_binder_list()
            self.expect_op(":")

        memberships: list[MemCond] = []
        condition: Optional[Cond] = None
        while True:
            if self.current.is_keyword("mem"):
                memberships.append(self.parse_mem_cond())
                if self.current.is_keyword("and"):
                    self.advance()
                    continue
                if self.current.is_op(","):
                    self.advance()
                    continue
                break
            condition = self.parse_cond()
            break
        if self.current.is_op(";"):
            self.advance()
        else:
            # the paper omits the ';' after the Fig. 2 first clause —
            # accept a missing separator right before the next clause
            if not (
                self.current.is_keyword("no")
                or self.current.is_keyword("any")
                or self.current.is_keyword("all")
                or self.current.is_keyword("action")
            ):
                self._fail(f"expected ';', found {self.current}")
        return DependClause(
            quant=quant,
            binders=tuple(binders),
            memberships=tuple(memberships),
            condition=condition,
            line=line,
        )

    def _looks_like_bound_ref(self) -> bool:
        return (
            self.current.kind is GTok.IDENT
            and self.peek().is_op(".")
        )

    def parse_mem_cond(self) -> MemCond:
        self.expect_keyword("mem")
        self.expect_op("(")
        element = self.parse_ref()
        self.expect_op(",")
        set_expr = self.parse_set_expr()
        self.expect_op(")")
        return MemCond(element=element, set_expr=set_expr)

    def parse_set_expr(self) -> SetExpr:
        token = self.current
        if token.is_keyword("path"):
            self.advance()
            self.expect_op("(")
            start = self.parse_value()
            self.expect_op(",")
            stop = self.parse_value()
            self.expect_op(")")
            return PathSet(start=start, stop=stop)
        if token.is_keyword("region"):
            self.advance()
            self.expect_op("(")
            start = self.parse_value()
            self.expect_op(",")
            stop = self.parse_value()
            self.expect_op(")")
            return RegionSet(start=start, stop=stop)
        if token.is_keyword("inter") or token.is_keyword("union"):
            op = self.advance().text
            self.expect_op("(")
            left = self.parse_set_expr()
            self.expect_op(",")
            right = self.parse_set_expr()
            self.expect_op(")")
            return SetOp(op=op, left=left, right=right)
        if token.is_keyword("uses"):
            self.advance()
            self.expect_op("(")
            operand = self.parse_value()
            self.expect_op(",")
            within = self.parse_set_expr()
            self.expect_op(")")
            return UsesSet(operand=operand, within=within)
        if token.is_keyword("range"):
            self.advance()
            self.expect_op("(")
            init = self.parse_value()
            self.expect_op(",")
            final = self.parse_value()
            self.expect_op(",")
            step = self.parse_value()
            self.expect_op(")")
            return RangeSet(init=init, final=final, step=step)
        return SetRef(ref=self.parse_ref())

    # ------------------------------------------------------------------
    # conditions
    # ------------------------------------------------------------------
    def parse_cond(self) -> Cond:
        terms = [self.parse_cond_and()]
        while self.current.is_keyword("or"):
            self.advance()
            terms.append(self.parse_cond_and())
        if len(terms) == 1:
            return terms[0]
        return BoolOp(op="or", terms=tuple(terms))

    def parse_cond_and(self) -> Cond:
        terms = [self.parse_cond_atom()]
        while self.current.is_keyword("and"):
            self.advance()
            terms.append(self.parse_cond_atom())
        if len(terms) == 1:
            return terms[0]
        return BoolOp(op="and", terms=tuple(terms))

    def parse_cond_atom(self) -> Cond:
        token = self.current
        if token.is_keyword("not"):
            self.advance()
            self.expect_op("(")
            inner = self.parse_cond()
            self.expect_op(")")
            return NotOp(term=inner)
        if token.kind is GTok.IDENT and token.text.lower() in DEP_KINDS:
            return self.parse_dep_cond()
        if token.is_keyword("mem"):
            return self.parse_mem_cond()
        if token.is_op("("):
            # could be a parenthesized condition or a parenthesized
            # value comparison; backtrack on failure
            saved = self.position
            self.advance()
            try:
                inner = self.parse_cond()
                self.expect_op(")")
                return inner
            except GospelSyntaxError:
                self.position = saved
        left = self.parse_value()
        for relop in RELOPS:
            if self.current.is_op(relop):
                self.advance()
                right = self.parse_value()
                return Compare(relop=relop, left=left, right=right)
        self._fail(f"expected a relational operator, found {self.current}")
        raise AssertionError("unreachable")

    def parse_dep_cond(self) -> DepCond:
        kind = DEP_KINDS[self.advance().text.lower()]
        self.expect_op("(")
        src = self.parse_value()
        self.expect_op(",")
        dst = self.parse_value()
        direction: Optional[tuple[str, ...]] = None
        if self.current.is_op(","):
            self.advance()
            direction = self.parse_direction_vector()
        self.expect_op(")")
        return DepCond(kind=kind, src=src, dst=dst, direction=direction)

    def parse_direction_vector(self) -> tuple[str, ...]:
        self.expect_op("(")
        directions = []
        while True:
            token = self.current
            key = token.text.lower() if token.kind is GTok.KEYWORD else token.text
            if key in DIRECTION_TOKENS:
                directions.append(DIRECTION_TOKENS[key])
                self.advance()
            else:
                self._fail(f"expected a direction (<,>,=,*), found {token}")
            if self.current.is_op(","):
                self.advance()
                continue
            break
        self.expect_op(")")
        return tuple(directions)

    # ------------------------------------------------------------------
    # values
    # ------------------------------------------------------------------
    def parse_value(self) -> Value:
        return self.parse_additive()

    def parse_additive(self) -> Value:
        left = self.parse_multiplicative()
        while self.current.is_op("+") or self.current.is_op("-"):
            op = self.advance().text
            right = self.parse_multiplicative()
            left = Arith(op=op, left=left, right=right)
        return left

    def parse_multiplicative(self) -> Value:
        left = self.parse_value_atom()
        while self.current.is_op("*") or self.current.is_op("/"):
            op = self.advance().text
            right = self.parse_value_atom()
            left = Arith(op=op, left=left, right=right)
        return left

    def parse_value_atom(self) -> Value:
        token = self.current
        if token.kind is GTok.NUMBER:
            self.advance()
            return NumberLit(value=token.value)
        if token.is_op("("):
            self.advance()
            inner = self.parse_value()
            self.expect_op(")")
            return inner
        if token.is_op("-"):
            self.advance()
            inner = self.parse_value_atom()
            return Arith(op="-", left=NumberLit(0), right=inner)
        if token.is_keyword("newtemp"):
            self.advance()
            if self.current.is_op("("):
                self.advance()
                self.expect_op(")")
            return NewTemp()
        if token.is_keyword("operand"):
            self.advance()
            self.expect_op("(")
            stmt = self.parse_value()
            self.expect_op(",")
            pos = self.parse_value()
            self.expect_op(")")
            return FuncVal(func="operand", args=(stmt, pos))
        if token.kind in (GTok.IDENT, GTok.KEYWORD) and token.text.lower() in (
            "type",
            "class",
            "trip",
            "value",
            "pos",
        ) and self.peek().is_op("("):
            func = self.advance().text.lower()
            self.expect_op("(")
            arg = self.parse_value()
            self.expect_op(")")
            return FuncVal(func=func, args=(arg,))
        if token.kind is GTok.IDENT:
            return self.parse_ref()
        if token.kind is GTok.KEYWORD and token.text in ("add",):
            # the 'add' action keyword doubles as the + opcode's symbol
            self.advance()
            return Ref(base=token.text)
        self._fail(f"expected a value, found {token}")
        raise AssertionError("unreachable")

    def parse_ref(self) -> Ref:
        base = self.expect_ident().text
        attrs: list[str] = []
        while self.current.is_op("."):
            self.advance()
            token = self.current
            text = token.text.lower()
            if token.kind not in (GTok.IDENT, GTok.KEYWORD) or text not in ATTRS:
                self._fail(f"unknown attribute {token.text!r}")
            self.advance()
            attrs.append(_ATTR_CANON.get(text, text))
        return Ref(base=base, attrs=tuple(attrs))

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    def parse_action(self) -> Action:
        token = self.current
        if token.is_keyword("forall"):
            return self.parse_forall()
        if token.is_keyword("delete"):
            self.advance()
            self.expect_op("(")
            target = self.parse_value()
            self.expect_op(")")
            self.expect_op(";")
            return DeleteAction(target=target)
        if token.is_keyword("move"):
            self.advance()
            self.expect_op("(")
            target = self.parse_value()
            self.expect_op(",")
            after = self.parse_value()
            self.expect_op(")")
            self.expect_op(";")
            return MoveAction(target=target, after=after)
        if token.is_keyword("copy"):
            self.advance()
            self.expect_op("(")
            source = self.parse_value()
            self.expect_op(",")
            after = self.parse_value()
            self.expect_op(",")
            name = self.expect_ident().text
            self.expect_op(")")
            self.expect_op(";")
            return CopyAction(source=source, after=after, name=name)
        if token.is_keyword("add"):
            self.advance()
            self.expect_op("(")
            after = self.parse_value()
            self.expect_op(",")
            template = self.parse_template()
            self.expect_op(",")
            name = self.expect_ident().text
            self.expect_op(")")
            self.expect_op(";")
            return AddAction(after=after, template=template, name=name)
        if token.is_keyword("modify"):
            self.advance()
            self.expect_op("(")
            lvalue = self.parse_value()
            self.expect_op(",")
            new_value = self.parse_value()
            self.expect_op(")")
            self.expect_op(";")
            return ModifyAction(lvalue=lvalue, new_value=new_value)
        self._fail(f"expected an action, found {token}")
        raise AssertionError("unreachable")

    def parse_forall(self) -> ForallAction:
        self.expect_keyword("forall")
        binder = self.parse_binder()
        self.expect_keyword("in")
        domain = self.parse_set_expr()
        where: Optional[Cond] = None
        if self.current.is_keyword("where"):
            self.advance()
            where = self.parse_cond()
        self.expect_op("{")
        body: list[Action] = []
        while not self.current.is_op("}"):
            body.append(self.parse_action())
        self.expect_op("}")
        return ForallAction(binder=binder, domain=domain, where=where,
                            body=tuple(body))

    def parse_template(self) -> StmtTemplate:
        self.expect_keyword("stmt")
        self.expect_op("(")
        result = self.parse_value()
        self.expect_op(",")
        opcode = self.parse_opcode_name()
        self.expect_op(",")
        a = self.parse_value()
        b: Optional[Value] = None
        if self.current.is_op(","):
            self.advance()
            b = self.parse_value()
        self.expect_op(")")
        return StmtTemplate(result=result, opcode=opcode, a=a, b=b)

    def parse_opcode_name(self) -> str:
        token = self.current
        if token.kind in (GTok.IDENT, GTok.KEYWORD):
            self.advance()
            return token.text.lower()
        if token.kind is GTok.OP and token.text in ("+", "-", "*", "/"):
            self.advance()
            return token.text
        self._fail(f"expected an opcode name, found {token}")
        raise AssertionError("unreachable")


def parse_spec(source: str, name: str = "OPT") -> Specification:
    """Parse GOSpeL text into a :class:`Specification` AST."""
    parser = GospelParser(source, name=name)
    spec = parser.parse()
    # split loop-pair occurrence binders encoded by parse_binder
    spec = _split_pair_binders(spec)
    return spec


def _split_pair_binders(spec: Specification) -> Specification:
    """Expand ``(L1, L2)`` occurrence binders into two binders."""
    new_patterns = []
    for clause in spec.patterns:
        binders: list[Binder] = []
        for binder in clause.binders:
            if "\0" in binder.name:
                first, second = binder.name.split("\0")
                binders.append(Binder(name=first, line=binder.line))
                binders.append(Binder(name=second, line=binder.line))
            else:
                binders.append(binder)
        new_patterns.append(
            PatternClause(
                quant=clause.quant,
                binders=tuple(binders),
                format=clause.format,
                line=clause.line,
            )
        )
    new_depends = []
    for clause in spec.depends:
        binders = []
        for binder in clause.binders:
            if "\0" in binder.name:
                first, second = binder.name.split("\0")
                binders.append(Binder(name=first, line=binder.line))
                binders.append(Binder(name=second, line=binder.line))
            else:
                binders.append(binder)
        new_depends.append(
            DependClause(
                quant=clause.quant,
                binders=tuple(binders),
                memberships=clause.memberships,
                condition=clause.condition,
                line=clause.line,
            )
        )
    spec.patterns = tuple(new_patterns)
    spec.depends = tuple(new_depends)
    return spec
