"""Static checking of GOSpeL specifications.

Verifies the rules the paper's generator relies on:

* every element name used is declared in the TYPE section;
* Code_Pattern clauses precede Depend clauses (enforced by the grammar,
  re-checked here for programmatically built ASTs);
* attribute chains are valid for the element's type (``.opc`` on
  statements, ``.head`` on loops, ...);
* each clause's *search variables* (declared names not yet bound by an
  earlier clause) are identified — the generated matcher enumerates
  exactly these;
* ``no``-quantified clauses bind nothing; ``any``/``all`` bind their
  search variables for later clauses and the ACTION section;
* names introduced by ``copy``/``add``/``forall`` are tracked through
  the action sequence.

The result, :class:`AnalyzedSpec`, carries the binding plan consumed by
:mod:`repro.genesis.codegen`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.gospel.ast import (
    Action,
    AddAction,
    Arith,
    BoolOp,
    Compare,
    Cond,
    CopyAction,
    DeleteAction,
    DepCond,
    DependClause,
    ElemType,
    ForallAction,
    FuncVal,
    MemCond,
    ModifyAction,
    MoveAction,
    NewTemp,
    NotOp,
    NumberLit,
    PathSet,
    PatternClause,
    Quant,
    RangeSet,
    Ref,
    RegionSet,
    SetExpr,
    SetOp,
    SetRef,
    Specification,
    SymbolLit,
    UsesSet,
    Value,
)
from repro.gospel.errors import GospelSemanticError

#: Attributes valid on statement-typed references.
STMT_ATTRS = frozenset({"opc", "opr_1", "opr_2", "opr_3", "next", "prev"})

#: Attributes valid on loop-typed references.  ``head``/``end`` yield
#: statements; ``body`` yields a set; the rest yield operands.
LOOP_ATTRS = frozenset(
    {"head", "end", "body", "lcv", "init", "final", "step", "next", "prev",
     "label"}
)

#: Loop attributes producing a statement-typed value.
LOOP_STMT_ATTRS = frozenset({"head", "end"})

#: Symbolic constants usable in comparisons.
KNOWN_SYMBOLS = frozenset(
    {
        # operand kinds (``type()``)
        "const", "var", "array", "none",
        # statement classes (``class()``)
        "assign", "binop", "unop", "compute", "loop_head", "if_stmt",
        "io", "marker",
        # opcode names (``.opc`` comparisons and PAR's retargeting)
        "add", "sub", "mul", "div", "mod", "pow", "do", "doall", "read",
        "write", "neg", "abs", "sqrt", "sin", "cos", "exp", "log",
    }
)


@dataclass
class ClausePlan:
    """Binding plan for one precondition clause."""

    search_vars: tuple[str, ...]  # enumerated by the generated matcher
    new_pos_vars: tuple[str, ...]  # freshly bound dependence positions
    bound_before: frozenset[str]  # names already bound entering the clause


@dataclass
class AnalyzedSpec:
    """A checked specification plus its binding plan."""

    spec: Specification
    types: dict[str, ElemType]
    pattern_plans: list[ClausePlan]
    depend_plans: list[ClausePlan]
    action_names: frozenset[str]  # names visible to the ACTION section
    warnings: list[str] = field(default_factory=list)


class SemanticChecker:
    """Walks a specification and validates it."""

    def __init__(self, spec: Specification):
        self.spec = spec
        self.types = spec.declared_names()
        self.bound: set[str] = set()
        self.pos_vars: set[str] = set()
        self.warnings: list[str] = []

    # ------------------------------------------------------------------
    def check(self) -> AnalyzedSpec:
        if not self.spec.patterns:
            raise GospelSemanticError(
                "a specification needs at least one Code_Pattern clause"
            )
        pattern_plans = [self._check_pattern(p) for p in self.spec.patterns]
        depend_plans = [self._check_depend(d) for d in self.spec.depends]
        action_names = self._check_actions()
        return AnalyzedSpec(
            spec=self.spec,
            types=self.types,
            pattern_plans=pattern_plans,
            depend_plans=depend_plans,
            action_names=action_names,
            warnings=self.warnings,
        )

    # ------------------------------------------------------------------
    # clause checking
    # ------------------------------------------------------------------
    def _check_pattern(self, clause: PatternClause) -> ClausePlan:
        bound_before = frozenset(self.bound)
        search: list[str] = []
        for binder in clause.binders:
            if binder.pos_name is not None:
                raise GospelSemanticError(
                    "position captures are only valid in Depend clauses",
                    clause.line,
                )
            self._require_declared(binder.name, clause.line)
            if binder.name not in self.bound and binder.name not in search:
                search.append(binder.name)
        if clause.format is not None:
            for name in _element_names(clause.format):
                if name in self.types and name not in self.bound and (
                    name not in search
                ):
                    search.append(name)
            self._check_cond(clause.format, clause.line, allow_dep=False)
        if clause.quant is Quant.NO:
            self.warnings.append(
                f"line {clause.line}: 'no' in Code_Pattern matches nothing "
                "and only warns (paper semantics)"
            )
        else:
            self.bound.update(search)
        return ClausePlan(
            search_vars=tuple(search),
            new_pos_vars=(),
            bound_before=bound_before,
        )

    def _check_depend(self, clause: DependClause) -> ClausePlan:
        bound_before = frozenset(self.bound)
        search: list[str] = []
        new_pos: list[str] = []
        for binder in clause.binders:
            self._require_declared(binder.name, clause.line)
            if binder.name not in self.bound and binder.name not in search:
                search.append(binder.name)
            if binder.pos_name is not None:
                if binder.pos_name in self.types:
                    raise GospelSemanticError(
                        f"position name {binder.pos_name!r} collides with a "
                        "declared element",
                        clause.line,
                    )
                if binder.pos_name not in self.pos_vars:
                    new_pos.append(binder.pos_name)

        referenced: set[str] = set()
        for membership in clause.memberships:
            referenced.update(_element_names(membership))
            self._check_set_expr(membership.set_expr, clause.line)
        if clause.condition is not None:
            referenced.update(_element_names(clause.condition))
            self._check_cond(clause.condition, clause.line, allow_dep=True)
        for name in sorted(referenced):
            if name in self.types and name not in self.bound and (
                name not in search
            ):
                # implicitly existential (section 2.2's unbound Sj)
                search.append(name)

        if clause.quant is not Quant.NO:
            self.bound.update(search)
            self.pos_vars.update(new_pos)
        return ClausePlan(
            search_vars=tuple(search),
            new_pos_vars=tuple(new_pos),
            bound_before=bound_before,
        )

    # ------------------------------------------------------------------
    # conditions / values
    # ------------------------------------------------------------------
    def _check_cond(self, cond: Cond, line: int, allow_dep: bool) -> None:
        if isinstance(cond, BoolOp):
            for term in cond.terms:
                self._check_cond(term, line, allow_dep)
        elif isinstance(cond, NotOp):
            self._check_cond(cond.term, line, allow_dep)
        elif isinstance(cond, Compare):
            self._check_value(cond.left, line)
            self._check_value(cond.right, line)
        elif isinstance(cond, DepCond):
            if not allow_dep:
                raise GospelSemanticError(
                    "dependence conditions belong in the Depend section "
                    "(the paper orders Code_Pattern before Depend)",
                    line,
                )
            self._check_value(cond.src, line, want_stmt=True)
            self._check_value(cond.dst, line, want_stmt=True)
            if cond.direction is not None:
                for direction in cond.direction:
                    if direction not in ("<", ">", "=", "*"):
                        raise GospelSemanticError(
                            f"bad direction {direction!r}", line
                        )
        elif isinstance(cond, MemCond):
            self._check_value(cond.element, line, want_stmt=True)
            self._check_set_expr(cond.set_expr, line)
        else:
            raise GospelSemanticError(f"unknown condition {cond!r}", line)

    def _check_set_expr(self, set_expr: SetExpr, line: int) -> None:
        if isinstance(set_expr, SetRef):
            ref = set_expr.ref
            self._require_declared(ref.base, line)
            base_type = self.types[ref.base]
            if base_type is ElemType.STMT:
                raise GospelSemanticError(
                    f"{ref.base!r} is a statement, not a set", line
                )
            for attr in ref.attrs:
                if attr not in ("body",):
                    raise GospelSemanticError(
                        f"attribute .{attr} does not produce a set", line
                    )
        elif isinstance(set_expr, (PathSet, RegionSet)):
            self._check_value(set_expr.start, line, want_stmt=True)
            self._check_value(set_expr.stop, line, want_stmt=True)
        elif isinstance(set_expr, SetOp):
            self._check_set_expr(set_expr.left, line)
            self._check_set_expr(set_expr.right, line)
        elif isinstance(set_expr, UsesSet):
            self._check_value(set_expr.operand, line)
            self._check_set_expr(set_expr.within, line)
        elif isinstance(set_expr, RangeSet):
            for value in (set_expr.init, set_expr.final, set_expr.step):
                self._check_value(value, line)
        else:
            raise GospelSemanticError(f"unknown set {set_expr!r}", line)

    def _check_value(
        self, value: Value, line: int, want_stmt: bool = False
    ) -> None:
        if isinstance(value, (NumberLit, NewTemp)):
            return
        if isinstance(value, Arith):
            self._check_value(value.left, line)
            self._check_value(value.right, line)
            return
        if isinstance(value, FuncVal):
            for arg in value.args:
                self._check_value(arg, line)
            return
        if isinstance(value, SymbolLit):
            if value.name not in KNOWN_SYMBOLS:
                raise GospelSemanticError(
                    f"unknown symbolic constant {value.name!r}", line
                )
            return
        if isinstance(value, Ref):
            self._check_ref(value, line, want_stmt)
            return
        raise GospelSemanticError(f"unknown value {value!r}", line)

    def _check_ref(self, ref: Ref, line: int, want_stmt: bool) -> None:
        base = ref.base
        if base not in self.types:
            # bare identifiers that aren't declared elements are either
            # symbolic constants or dependence-position names
            if not ref.attrs and (
                base.lower() in KNOWN_SYMBOLS or base in self.pos_vars
                or base.lower() in ("pos",)
            ):
                return
            if not ref.attrs and _is_probable_pos_name(base):
                return
            raise GospelSemanticError(f"undeclared name {base!r}", line)
        elem_type = self.types[base]
        current = "stmt" if elem_type is ElemType.STMT else "loop"
        for attr in ref.attrs:
            if current == "stmt":
                if attr not in STMT_ATTRS:
                    raise GospelSemanticError(
                        f".{attr} is not a statement attribute", line
                    )
                current = "stmt" if attr in ("next", "prev") else "operand"
            elif current == "loop":
                if attr not in LOOP_ATTRS:
                    raise GospelSemanticError(
                        f".{attr} is not a loop attribute", line
                    )
                if attr in LOOP_STMT_ATTRS:
                    current = "stmt"
                elif attr in ("next", "prev"):
                    current = "loop"
                elif attr == "body":
                    current = "set"
                else:
                    current = "operand"
            elif current == "operand":
                raise GospelSemanticError(
                    f"cannot take .{attr} of an operand", line
                )
            elif current == "set":
                raise GospelSemanticError(
                    f"cannot take .{attr} of a set", line
                )

    def _require_declared(self, name: str, line: int) -> None:
        if name not in self.types:
            raise GospelSemanticError(f"undeclared element {name!r}", line)

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    def _check_actions(self) -> frozenset[str]:
        visible = set(self.bound) | set(self.pos_vars)
        for action in self.spec.actions:
            self._check_action(action, visible)
        return frozenset(visible)

    def _check_action(self, action: Action, visible: set[str]) -> None:
        if isinstance(action, DeleteAction):
            self._check_action_value(action.target, visible)
        elif isinstance(action, MoveAction):
            self._check_action_value(action.target, visible)
            self._check_action_value(action.after, visible)
        elif isinstance(action, CopyAction):
            self._check_action_value(action.source, visible)
            self._check_action_value(action.after, visible)
            visible.add(action.name)
        elif isinstance(action, AddAction):
            self._check_action_value(action.after, visible)
            for value in (action.template.result, action.template.a,
                          action.template.b):
                if value is not None:
                    self._check_action_value(value, visible)
            visible.add(action.name)
        elif isinstance(action, ModifyAction):
            self._check_action_value(action.lvalue, visible)
            self._check_action_value(action.new_value, visible)
        elif isinstance(action, ForallAction):
            inner = set(visible)
            inner.add(action.binder.name)
            if action.binder.pos_name is not None:
                inner.add(action.binder.pos_name)
            self._check_action_set(action.domain, visible)
            for sub in action.body:
                self._check_action(sub, inner)
        else:
            raise GospelSemanticError(f"unknown action {action!r}")

    def _check_action_value(self, value: Value, visible: set[str]) -> None:
        if isinstance(value, Ref):
            if value.base not in visible and value.base not in self.types:
                if not value.attrs and (
                    value.base.lower() in KNOWN_SYMBOLS
                    or _is_probable_pos_name(value.base)
                ):
                    return
                raise GospelSemanticError(
                    f"action references unbound name {value.base!r}"
                )
            return
        if isinstance(value, Arith):
            self._check_action_value(value.left, visible)
            self._check_action_value(value.right, visible)
        elif isinstance(value, FuncVal):
            for arg in value.args:
                self._check_action_value(arg, visible)

    def _check_action_set(self, set_expr: SetExpr, visible: set[str]) -> None:
        if isinstance(set_expr, SetRef):
            if set_expr.ref.base not in visible and (
                set_expr.ref.base not in self.types
            ):
                raise GospelSemanticError(
                    f"forall domain references unbound {set_expr.ref.base!r}"
                )
        elif isinstance(set_expr, UsesSet):
            self._check_action_value(set_expr.operand, visible)
            self._check_action_set(set_expr.within, visible)
        elif isinstance(set_expr, RangeSet):
            for value in (set_expr.init, set_expr.final, set_expr.step):
                self._check_action_value(value, visible)
        elif isinstance(set_expr, SetOp):
            self._check_action_set(set_expr.left, visible)
            self._check_action_set(set_expr.right, visible)
        elif isinstance(set_expr, (PathSet, RegionSet)):
            self._check_action_value(set_expr.start, visible)
            self._check_action_value(set_expr.stop, visible)


def _is_probable_pos_name(name: str) -> bool:
    """Heuristic for dependence-position names (``pos``, ``pos2``...)."""
    return name.lower().startswith("pos")


def _element_names(node: object) -> set[str]:
    """All base identifiers appearing in a condition/value tree."""
    names: set[str] = set()

    def walk(item: object) -> None:
        if isinstance(item, Ref):
            names.add(item.base)
        elif isinstance(item, BoolOp):
            for term in item.terms:
                walk(term)
        elif isinstance(item, NotOp):
            walk(item.term)
        elif isinstance(item, Compare):
            walk(item.left)
            walk(item.right)
        elif isinstance(item, DepCond):
            walk(item.src)
            walk(item.dst)
        elif isinstance(item, MemCond):
            walk(item.element)
            walk(item.set_expr)
        elif isinstance(item, Arith):
            walk(item.left)
            walk(item.right)
        elif isinstance(item, FuncVal):
            for arg in item.args:
                walk(arg)
        elif isinstance(item, SetRef):
            walk(item.ref)
        elif isinstance(item, (PathSet, RegionSet)):
            walk(item.start)
            walk(item.stop)
        elif isinstance(item, (SetOp,)):
            walk(item.left)
            walk(item.right)
        elif isinstance(item, UsesSet):
            walk(item.operand)
            walk(item.within)
        elif isinstance(item, RangeSet):
            walk(item.init)
            walk(item.final)
            walk(item.step)

    walk(node)
    return names


def analyze_spec(spec: Specification) -> AnalyzedSpec:
    """Run all static checks and compute the binding plan."""
    return SemanticChecker(spec).check()
