"""Tokens and lexer for GOSpeL.

GOSpeL keywords are case-insensitive (the paper writes ``PRECOND`` and
``Code_Pattern``; users wrote ``any``/``ANY`` interchangeably).
Comments are C-style ``/* ... */`` as in the paper's figures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.gospel.errors import GospelSyntaxError


class GTok(enum.Enum):
    """GOSpeL token kinds."""

    IDENT = "ident"
    NUMBER = "number"
    KEYWORD = "keyword"
    OP = "op"
    EOF = "eof"


#: Keywords, stored lowercase; the lexer folds case.
KEYWORDS = frozenset(
    {
        "type",
        "precond",
        "code_pattern",
        "depend",
        "action",
        "any",
        "all",
        "no",
        "and",
        "or",
        "not",
        "mem",
        "path",
        "region",
        "inter",
        "union",
        "forall",
        "in",
        "where",
        "stmt",
        "loop",
        "nested",
        "tight",
        "adjacent",
        "loops",
        "delete",
        "copy",
        "move",
        "add",
        "modify",
        "operand",
        "uses",
        "range",
        "newtemp",
    }
)

#: Multi-character operators, longest first.
MULTI_OPS = ("==", "!=", "<=", ">=")
SINGLE_OPS = ";:,.(){}<>=*+-/"


@dataclass(frozen=True)
class Token:
    """One GOSpeL token."""

    kind: GTok
    text: str
    line: int
    column: int
    value: Union[int, float, None] = None

    def is_op(self, text: str) -> bool:
        return self.kind is GTok.OP and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is GTok.KEYWORD and self.text == text

    def __str__(self) -> str:
        return f"{self.kind.value}({self.text!r})"


def tokenize(source: str) -> list[Token]:
    """Tokenize GOSpeL specification text."""
    tokens: list[Token] = []
    line = 1
    column = 1
    position = 0
    length = len(source)

    while position < length:
        char = source[position]
        if char == "\n":
            position += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            position += 1
            column += 1
            continue
        if source.startswith("/*", position):
            end = source.find("*/", position + 2)
            if end == -1:
                raise GospelSyntaxError("unterminated comment", line, column)
            skipped = source[position : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            position = end + 2
            continue

        if char.isdigit():
            start = position
            start_column = column
            seen_dot = False
            while position < length and (
                source[position].isdigit()
                or (source[position] == "." and not seen_dot
                    and source[position + 1 : position + 2].isdigit())
            ):
                if source[position] == ".":
                    seen_dot = True
                position += 1
            text = source[start:position]
            column = start_column + len(text)
            value: Union[int, float] = float(text) if seen_dot else int(text)
            tokens.append(Token(GTok.NUMBER, text, line, start_column, value))
            continue

        if char.isalpha() or char == "_":
            start = position
            start_column = column
            while position < length and (
                source[position].isalnum() or source[position] in "_$"
            ):
                position += 1
            text = source[start:position]
            column = start_column + len(text)
            lowered = text.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(GTok.KEYWORD, lowered, line, start_column))
            else:
                tokens.append(Token(GTok.IDENT, text, line, start_column))
            continue

        matched = None
        for op in MULTI_OPS:
            if source.startswith(op, position):
                matched = op
                break
        if matched is not None:
            tokens.append(Token(GTok.OP, matched, line, column))
            position += len(matched)
            column += len(matched)
            continue
        if char in SINGLE_OPS:
            tokens.append(Token(GTok.OP, char, line, column))
            position += 1
            column += 1
            continue

        raise GospelSyntaxError(f"unexpected character {char!r}", line, column)

    tokens.append(Token(GTok.EOF, "", line, column))
    return tokens
