"""GOSpeL unparser: :class:`~repro.gospel.ast.Specification` -> source.

The spec-inference subsystem (``repro.synth``) builds candidate
specifications as ASTs; persisting an admitted candidate means turning
the AST back into concrete GOSpeL text that the normal
parser -> sema -> codegen path accepts.  The contract is a strict
round trip::

    parse_spec(unparse_spec(spec), spec.name) == normalize_spec(spec)

where :func:`normalize_spec` erases the representation details that
cannot survive a print/parse cycle (token line numbers, the original
source text, and two value spellings the parser never produces —
``SymbolLit`` and negative ``NumberLit``).  ``tests/gospel/test_unparse.py``
enforces the round trip with hypothesis over the full shipped catalog
and synthesized ASTs.

Unparsing choices that keep the cycle exact:

* every ``Arith`` is parenthesized (the parser's parenthesized-value
  production is transparent, so grouping survives re-parsing);
* symbolic constants print as bare identifiers, which the parser reads
  back as single-segment :class:`Ref` nodes — it *never* constructs
  ``SymbolLit``;
* loop-pair occurrence binders, already split into two plain binders
  by the parser, print as ``L1, L2`` (the ``(L1, L2)`` sugar is
  optional on input and ambiguous with position capture on output);
* a binder-free Depend clause prints in the ``quant : cond ;`` form.
"""

from __future__ import annotations

import dataclasses
from typing import Union

from repro.gospel.ast import (
    Action,
    AddAction,
    Arith,
    Binder,
    Cond,
    CopyAction,
    Declaration,
    DeleteAction,
    DependClause,
    ElemType,
    ForallAction,
    ModifyAction,
    MoveAction,
    NumberLit,
    PatternClause,
    Ref,
    Specification,
    SymbolLit,
    PAIR_TYPES,
)


class GospelUnparseError(ValueError):
    """An AST node the concrete syntax cannot express."""


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _number(lit: NumberLit) -> str:
    text = str(lit.value)
    if "e" in text or "E" in text or "inf" in text or "nan" in text:
        raise GospelUnparseError(
            f"number {lit.value!r} has no GOSpeL literal spelling"
        )
    return text


def _value(node) -> str:
    """Values and conditions share the AST ``__str__`` forms, which were
    written to match the concrete grammar; the unparser routes through
    them so there is exactly one rendering of each node, but re-checks
    the few nodes whose ``__str__`` could print something unparsable."""
    if isinstance(node, NumberLit):
        if isinstance(node.value, (int, float)) and node.value < 0:
            # the lexer has no negative literals; print as unary minus,
            # which parses to Arith('-', 0, x) — normalize_spec folds
            # both spellings to the same node
            return f"-{_number(NumberLit(-node.value))}"
        return _number(node)
    return str(node)


def _binders(binders: tuple[Binder, ...]) -> str:
    for binder in binders:
        if "\0" in binder.name:
            raise GospelUnparseError(
                "unsplit loop-pair occurrence binder "
                f"{binder.name.replace(chr(0), '/')!r} (parse through "
                "parse_spec, which splits them)"
            )
    return ", ".join(str(b) for b in binders)


def _declaration(decl: Declaration) -> str:
    if decl.elem_type in PAIR_TYPES:
        if len(decl.names) % 2:
            raise GospelUnparseError(
                f"pair declaration {decl.names!r} has an odd name count"
            )
        pairs = [
            f"({decl.names[i]}, {decl.names[i + 1]})"
            for i in range(0, len(decl.names), 2)
        ]
        names = ", ".join(pairs)
    else:
        names = ", ".join(decl.names)
    if not names:
        raise GospelUnparseError("declaration with no names")
    return f"  {decl.elem_type.value}: {names};"


def _pattern_clause(clause: PatternClause) -> str:
    binders = _binders(clause.binders)
    if clause.format is None:
        return f"    {clause.quant.value} {binders};"
    return f"    {clause.quant.value} {binders}: {clause.format};"


def _depend_clause(clause: DependClause) -> str:
    binders = _binders(clause.binders)
    parts = [str(m) for m in clause.memberships]
    if clause.condition is not None:
        parts.append(str(clause.condition))
    if not parts:
        raise GospelUnparseError(
            f"Depend clause {clause.quant.value!r} has neither "
            "memberships nor a condition"
        )
    head = f"{clause.quant.value} {binders}".rstrip()
    return f"    {head}: {', '.join(parts)};"


def _action(action: Action, indent: str = "  ") -> str:
    # primitive actions end with ';' in their __str__; forall does not
    # take one (and its __str__ matches the braced grammar)
    return f"{indent}{action}"


def _check_literals(node) -> None:
    """Reject literal spellings the lexer cannot read back.

    Conditions and actions print through the AST ``__str__`` forms, so
    an ``inf``/``nan``/exponent float nested inside one would silently
    re-parse as a bare identifier; walk the tree and refuse instead.
    """
    if isinstance(node, NumberLit):
        _number(NumberLit(abs(node.value)))
        return
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        for field in dataclasses.fields(node):
            value = getattr(node, field.name)
            if isinstance(value, tuple):
                for item in value:
                    _check_literals(item)
            else:
                _check_literals(value)


def unparse_spec(spec: Specification) -> str:
    """Render a specification as parseable GOSpeL source."""
    _check_literals(spec)
    lines = ["TYPE"]
    lines.extend(_declaration(d) for d in spec.declarations)
    lines.append("PRECOND")
    lines.append("  Code_Pattern")
    lines.extend(_pattern_clause(c) for c in spec.patterns)
    lines.append("  Depend")
    lines.extend(_depend_clause(c) for c in spec.depends)
    lines.append("ACTION")
    lines.extend(_action(a) for a in spec.actions)
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# round-trip normalization
# ----------------------------------------------------------------------
def _normalize_node(node):
    """Recursively erase print/parse-variant details from an AST node."""
    if isinstance(node, Specification):
        return Specification(
            name=node.name,
            declarations=tuple(
                _normalize_node(d) for d in node.declarations
            ),
            patterns=tuple(_normalize_node(p) for p in node.patterns),
            depends=tuple(_normalize_node(d) for d in node.depends),
            actions=tuple(_normalize_node(a) for a in node.actions),
            source="",
        )
    if isinstance(node, SymbolLit):
        # the parser reads bare symbols as single-segment Refs
        return Ref(base=node.name)
    if isinstance(node, Arith):
        left = _normalize_node(node.left)
        right = _normalize_node(node.right)
        if (
            node.op == "-"
            and isinstance(left, NumberLit)
            and left.value == 0
            and isinstance(right, NumberLit)
        ):
            # unary minus: '-3' parses as (0 - 3); fold both spellings
            return NumberLit(value=-right.value)
        return Arith(op=node.op, left=left, right=right)
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        updates = {}
        for field in dataclasses.fields(node):
            value = getattr(node, field.name)
            if field.name == "line":
                updates[field.name] = 0
            elif isinstance(value, tuple):
                updates[field.name] = tuple(
                    _normalize_node(item) for item in value
                )
            elif dataclasses.is_dataclass(value) and not isinstance(
                value, type
            ):
                updates[field.name] = _normalize_node(value)
        if updates:
            return dataclasses.replace(node, **updates)
        return node
    return node


def normalize_spec(spec: Specification) -> Specification:
    """Canonical form for comparing a spec across a print/parse cycle.

    Zeroes every ``line``, drops ``source``, reads ``SymbolLit`` as the
    equivalent bare :class:`Ref`, and folds the two spellings of a
    negative literal (``NumberLit(-n)`` vs ``Arith('-', 0, n)``) into
    one node.  Semantics-preserving: sema and codegen treat both
    members of each folded pair identically.
    """
    return _normalize_node(spec)


def roundtrips(spec: Specification) -> bool:
    """Does ``spec`` survive unparse -> parse exactly (normalized)?"""
    from repro.gospel.parser import parse_spec

    reparsed = parse_spec(unparse_spec(spec), name=spec.name)
    return normalize_spec(reparsed) == normalize_spec(spec)
