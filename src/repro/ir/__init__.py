"""Quad intermediate representation with retained loop structure."""

from repro.ir.builder import IRBuilder, as_operand, as_subscript
from repro.ir.interp import (
    BoundsError,
    InterpError,
    Interpreter,
    UninitializedError,
    run_program,
    same_behaviour,
)
from repro.ir.loops import Loop, StructureTable, loop_attributes, trip_count
from repro.ir.printer import format_program, format_side_by_side
from repro.ir.program import IRError, Program
from repro.ir.quad import (
    BINARY_OPS,
    COMPUTE_OPS,
    LOOP_HEADS,
    RELOPS,
    STRUCTURAL_OPS,
    UNARY_OPS,
    Opcode,
    Quad,
    assign,
    binop,
)
from repro.ir.types import (
    Affine,
    ArrayRef,
    Const,
    Operand,
    Var,
    is_array,
    is_const,
    is_var,
    operand_kind,
    used_scalars,
)

__all__ = [
    "Affine",
    "ArrayRef",
    "BINARY_OPS",
    "BoundsError",
    "COMPUTE_OPS",
    "Const",
    "IRBuilder",
    "IRError",
    "InterpError",
    "Interpreter",
    "LOOP_HEADS",
    "Loop",
    "Opcode",
    "Operand",
    "Program",
    "Quad",
    "RELOPS",
    "STRUCTURAL_OPS",
    "StructureTable",
    "UNARY_OPS",
    "UninitializedError",
    "Var",
    "as_operand",
    "as_subscript",
    "assign",
    "binop",
    "format_program",
    "format_side_by_side",
    "is_array",
    "is_const",
    "is_var",
    "loop_attributes",
    "operand_kind",
    "run_program",
    "same_behaviour",
    "trip_count",
    "used_scalars",
]
