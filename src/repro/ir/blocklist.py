"""Blocked order-maintenance storage for :class:`~repro.ir.program.Program`.

The seed ``Program`` kept its quads in one Python list plus a dense
``qid -> position`` dict that was rebuilt from the edit point (or from
position 0, for moves) after every mutation.  That makes every
``insert_at``/``remove``/``move_*`` O(n) in *Python-level* work, which
turns a k-edit pass over a 10^5–10^6-quad program into an O(k·n) wall.

:class:`QuadStore` replaces the dense index with a blocked list (an
unrolled list): quads live in contiguous blocks of roughly
:data:`TARGET_BLOCK` elements, a ``qid -> block`` map gives O(1)
membership, per-block ``qid -> offset`` mini-indexes are rebuilt lazily
(O(B) once after a block mutates), and the block start positions are a
lazily rebuilt prefix array (O(n/B) once after a structural change).
Every operation therefore costs O(B + n/B) amortized — ~O(sqrt n)
Python work with list-slice constants — instead of O(n):

===================  =====================================
operation            amortized cost
===================  =====================================
``append``           O(1)
``insert``           O(B + n/B)
``pop_qid``          O(B + n/B)
``replace_qid``      O(B) first lookup, then O(1)
``position``         O(B + n/B) after an edit, then O(1)
``get`` (by index)   O(log(n/B)) after an edit
iteration            O(n) at C speed (``chain``)
===================  =====================================

The store also owns the **fingerprint segments**: each block caches the
concatenation of its quads' 16-byte content hashes
(:meth:`repro.ir.quad.Quad.content_hash`), invalidated exactly when the
block mutates, so ``Program.fingerprint()`` after k edits re-hashes
only the k dirty blocks and streams the cached rest.  Segments are a
pure function of the quad *sequence* — block boundaries never leak into
the digest — so equal-content programs fingerprint identically no
matter their mutation history (the service-cache contract).
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import chain
from typing import Iterable, Iterator, Optional

from repro.ir.quad import Quad

#: Desired steady-state block length (B).  ~O(sqrt n) total work per
#: operation wants B near sqrt(n); 512 is within 2x of optimal across
#: the whole 10^4–10^6 range while keeping small programs single-block.
TARGET_BLOCK = 512

#: A block longer than this splits in half.
_MAX_BLOCK = 2 * TARGET_BLOCK

#: A block shorter than this tries to merge into a neighbour, bounding
#: the block count (and the prefix-rebuild cost) under heavy deletion.
_MIN_BLOCK = TARGET_BLOCK // 4


class _Block:
    """One run of consecutive quads plus its lazily maintained caches."""

    __slots__ = ("quads", "index", "segment", "rehash", "start", "ordinal")

    def __init__(self, quads: list[Quad]):
        self.quads = quads
        #: qid -> offset within :attr:`quads`; None after a mutation
        self.index: Optional[dict[int, int]] = None
        #: concatenated per-quad content hashes; None after a mutation
        self.segment: Optional[bytes] = None
        #: recompute quad hashes ignoring their caches (set when an
        #: untagged ``touch`` made every cached hash untrustworthy)
        self.rehash = False
        #: program position of quads[0]; valid while the store's
        #: prefix array is valid
        self.start = 0
        #: index of this block in the store's block list; same validity
        self.ordinal = 0

    def offset_of(self, qid: int) -> int:
        index = self.index
        if index is None:
            index = self.index = {
                quad.qid: offset for offset, quad in enumerate(self.quads)
            }
        return index[qid]


class QuadStore:
    """An ordered quad container with O(B + n/B) mutations.

    Raises ``KeyError`` for unknown qids and ``IndexError`` for
    out-of-range positions; the owning :class:`Program` translates
    those into :class:`~repro.ir.program.IRError`.
    """

    __slots__ = ("_blocks", "_owner", "_starts", "_size")

    def __init__(self, quads: Iterable[Quad] = ()):
        self._blocks: list[_Block] = []
        self._owner: dict[int, _Block] = {}
        #: block start positions for bisect; None = needs rebuild
        self._starts: Optional[list[int]] = []
        self._size = 0
        quads = list(quads)
        if quads:
            self.rebuild(quads)

    # ------------------------------------------------------------------
    # bulk (re)construction
    # ------------------------------------------------------------------
    def rebuild(self, quads: list[Quad]) -> None:
        """Replace the whole contents in O(n) (clone/restore path)."""
        self._blocks = []
        owner: dict[int, _Block] = {}
        for cut in range(0, len(quads), TARGET_BLOCK):
            block = _Block(quads[cut:cut + TARGET_BLOCK])
            self._blocks.append(block)
            for quad in block.quads:
                owner[quad.qid] = block
        self._owner = owner
        self._size = len(quads)
        self._starts = None

    # ------------------------------------------------------------------
    # read access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Quad]:
        return chain.from_iterable(
            block.quads for block in self._blocks
        )

    def __reversed__(self) -> Iterator[Quad]:
        return chain.from_iterable(
            reversed(block.quads) for block in reversed(self._blocks)
        )

    def contains(self, qid: int) -> bool:
        return qid in self._owner

    def get_by_qid(self, qid: int) -> Quad:
        block = self._owner[qid]
        return block.quads[block.offset_of(qid)]

    def position(self, qid: int) -> int:
        block = self._owner[qid]
        self._prefix()
        return block.start + block.offset_of(qid)

    def get(self, position: int) -> Quad:
        if position < 0:
            position += self._size
        if not 0 <= position < self._size:
            raise IndexError(f"position {position} out of range")
        starts = self._prefix()
        block = self._blocks[bisect_right(starts, position) - 1]
        return block.quads[position - block.start]

    def _prefix(self) -> list[int]:
        starts = self._starts
        if starts is None:
            starts = []
            total = 0
            for ordinal, block in enumerate(self._blocks):
                block.start = total
                block.ordinal = ordinal
                starts.append(total)
                total += len(block.quads)
            self._starts = starts
        return starts

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def append(self, quad: Quad) -> None:
        """Add at the end.  O(1); never invalidates the prefix array."""
        if not self._blocks:
            block = _Block([quad])
            self._blocks.append(block)
            if self._starts is not None:
                self._starts.append(0)
        else:
            block = self._blocks[-1]
            block.quads.append(quad)
            if block.index is not None:
                block.index[quad.qid] = len(block.quads) - 1
            block.segment = None
        self._owner[quad.qid] = block
        self._size += 1
        if len(block.quads) > _MAX_BLOCK:
            right = _Block(block.quads[TARGET_BLOCK:])
            del block.quads[TARGET_BLOCK:]
            block.index = None
            right.rehash = block.rehash
            self._blocks.append(right)
            for moved in right.quads:
                self._owner[moved.qid] = right
            if self._starts is not None:
                # appending a block shifts nothing: extend in place
                right.ordinal = len(self._blocks) - 1
                right.start = self._starts[-1] + TARGET_BLOCK
                self._starts.append(right.start)

    def insert(self, position: int, quad: Quad) -> None:
        """Insert before ``position`` (``position == len`` appends)."""
        if position == self._size:
            self.append(quad)
            return
        if not 0 <= position <= self._size:
            raise IndexError(f"position {position} out of range")
        starts = self._prefix()
        block = self._blocks[bisect_right(starts, position) - 1]
        block.quads.insert(position - block.start, quad)
        block.index = None
        block.segment = None
        self._owner[quad.qid] = block
        self._size += 1
        self._starts = None
        if len(block.quads) > _MAX_BLOCK:
            self._split(block)

    def _split(self, block: _Block) -> None:
        """Halve an oversized block (``block.ordinal`` must be valid)."""
        half = len(block.quads) // 2
        right = _Block(block.quads[half:])
        del block.quads[half:]
        block.index = None
        block.segment = None
        right.rehash = block.rehash
        self._blocks.insert(block.ordinal + 1, right)
        for moved in right.quads:
            self._owner[moved.qid] = right
        self._starts = None

    def pop_qid(self, qid: int) -> tuple[int, Quad]:
        """Remove a quad, returning ``(old position, quad)``."""
        block = self._owner[qid]
        self._prefix()
        offset = block.offset_of(qid)
        position = block.start + offset
        quad = block.quads.pop(offset)
        del self._owner[qid]
        block.index = None
        block.segment = None
        self._size -= 1
        if not block.quads:
            del self._blocks[block.ordinal]
        elif len(block.quads) < _MIN_BLOCK and len(self._blocks) > 1:
            self._merge(block)
        self._starts = None
        return position, quad

    def _merge(self, block: _Block) -> None:
        """Fold an undersized block into a neighbour when it fits."""
        ordinal = block.ordinal
        if ordinal > 0:
            left = self._blocks[ordinal - 1]
            if len(left.quads) + len(block.quads) <= _MAX_BLOCK:
                for moved in block.quads:
                    self._owner[moved.qid] = left
                left.quads.extend(block.quads)
                left.index = None
                left.segment = None
                left.rehash = left.rehash or block.rehash
                del self._blocks[ordinal]
                return
        if ordinal + 1 < len(self._blocks):
            right = self._blocks[ordinal + 1]
            if len(right.quads) + len(block.quads) <= _MAX_BLOCK:
                for moved in right.quads:
                    self._owner[moved.qid] = block
                block.quads.extend(right.quads)
                block.index = None
                block.segment = None
                block.rehash = block.rehash or right.rehash
                del self._blocks[ordinal + 1]

    def replace_qid(self, qid: int, quad: Quad) -> None:
        """Swap the quad object at ``qid`` (same qid, new content).

        Positions are unchanged, so the prefix array and the block's
        mini-index both stay valid; only the fingerprint segment drops.
        """
        block = self._owner[qid]
        block.quads[block.offset_of(qid)] = quad
        block.segment = None

    # ------------------------------------------------------------------
    # fingerprint segments
    # ------------------------------------------------------------------
    def invalidate_hash(self, qid: int) -> None:
        """An in-place quad mutation was reported: drop its caches."""
        block = self._owner[qid]
        block.quads[block.offset_of(qid)].drop_content_hash()
        block.segment = None

    def invalidate_all_hashes(self) -> None:
        """An untagged mutation was reported: trust no cached hash."""
        for block in self._blocks:
            block.segment = None
            block.rehash = True

    def segments(self) -> Iterator[bytes]:
        """The fingerprint byte segments, in order, rebuilding the
        dirty ones (k mutated blocks → O(k·B) hash work)."""
        for block in self._blocks:
            segment = block.segment
            if segment is None:
                if block.rehash:
                    segment = b"".join(
                        quad.refresh_content_hash() for quad in block.quads
                    )
                    block.rehash = False
                else:
                    segment = b"".join(
                        quad.content_hash() for quad in block.quads
                    )
                block.segment = segment
            yield segment

    # ------------------------------------------------------------------
    # introspection (tests and benchmarks)
    # ------------------------------------------------------------------
    def block_lengths(self) -> list[int]:
        """Current block sizes (invariant checks in tests)."""
        return [len(block.quads) for block in self._blocks]

    def check_invariants(self) -> None:
        """Assert internal consistency (property tests call this)."""
        assert self._size == sum(len(b.quads) for b in self._blocks)
        assert len(self._owner) == self._size
        for block in self._blocks:
            assert block.quads, "empty block retained"
            for quad in block.quads:
                assert self._owner.get(quad.qid) is block
            if block.index is not None:
                assert block.index == {
                    q.qid: o for o, q in enumerate(block.quads)
                }
        if self._starts is not None:
            expect = 0
            for ordinal, block in enumerate(self._blocks):
                assert self._starts[ordinal] == expect == block.start
                assert block.ordinal == ordinal
                expect += len(block.quads)
