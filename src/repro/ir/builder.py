"""A small fluent API for constructing IR programs directly.

Tests and synthetic workloads build programs without going through the
mini-Fortran frontend::

    b = IRBuilder()
    b.assign("n", 10)
    with b.loop("i", 1, "n"):
        b.binary(b.arr("a", "i"), b.arr("b", "i"), "+", 1)
    program = b.build()
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Union

from repro.ir.program import Program
from repro.ir.quad import BINARY_OPS, Opcode, Quad, UNARY_OPS
from repro.ir.types import Affine, ArrayRef, Const, Operand, Var

OperandLike = Union[Operand, str, int, float]
SubscriptLike = Union[Affine, str, int]

_BINOP_BY_SYMBOL = {op.value: op for op in BINARY_OPS}
_UNOP_BY_NAME = {op.value: op for op in UNARY_OPS}


def as_operand(value: OperandLike) -> Operand:
    """Coerce a Python value to an operand.

    Strings become :class:`Var`, numbers become :class:`Const`, and
    operands pass through unchanged.
    """
    if isinstance(value, Operand):
        return value
    if isinstance(value, str):
        return Var(value)
    if isinstance(value, (int, float)):
        return Const(value)
    raise TypeError(f"cannot make an operand from {value!r}")


def as_subscript(value: SubscriptLike) -> Union[Affine, Var]:
    """Coerce a Python value to an array subscript expression."""
    if isinstance(value, Affine):
        return value
    if isinstance(value, str):
        return Affine.var(value)
    if isinstance(value, int):
        return Affine.constant(value)
    raise TypeError(f"cannot make a subscript from {value!r}")


class IRBuilder:
    """Accumulates quads and produces a :class:`Program`."""

    def __init__(self, name: str = "main"):
        self._program = Program(name=name)
        self._temp_counter = 0

    # ------------------------------------------------------------------
    # operand helpers
    # ------------------------------------------------------------------
    def arr(self, name: str, *subscripts: SubscriptLike) -> ArrayRef:
        """An array reference operand, e.g. ``b.arr("a", "i")``."""
        return ArrayRef(name, tuple(as_subscript(sub) for sub in subscripts))

    def temp(self) -> Var:
        """A fresh compiler temporary (named ``t$0``, ``t$1``, ...)."""
        var = Var(f"t${self._temp_counter}")
        self._temp_counter += 1
        return var

    # ------------------------------------------------------------------
    # statement emitters
    # ------------------------------------------------------------------
    def emit(self, quad: Quad) -> Quad:
        """Append a raw quad."""
        return self._program.append(quad)

    def assign(self, target: OperandLike, source: OperandLike) -> Quad:
        """``target := source``."""
        return self.emit(
            Quad(Opcode.ASSIGN, result=as_operand(target), a=as_operand(source))
        )

    def binary(
        self,
        target: OperandLike,
        left: OperandLike,
        symbol: str,
        right: OperandLike,
    ) -> Quad:
        """``target := left <symbol> right`` with symbol in ``+ - * / mod **``."""
        opcode = _BINOP_BY_SYMBOL.get(symbol)
        if opcode is None:
            raise ValueError(f"unknown binary operator {symbol!r}")
        return self.emit(
            Quad(
                opcode,
                result=as_operand(target),
                a=as_operand(left),
                b=as_operand(right),
            )
        )

    def unary(self, target: OperandLike, name: str, source: OperandLike) -> Quad:
        """``target := name(source)`` for an intrinsic (sqrt, sin, ...)."""
        opcode = _UNOP_BY_NAME.get(name)
        if opcode is None:
            raise ValueError(f"unknown unary operator {name!r}")
        return self.emit(
            Quad(opcode, result=as_operand(target), a=as_operand(source))
        )

    def read(self, target: OperandLike) -> Quad:
        """``read target``."""
        return self.emit(Quad(Opcode.READ, a=as_operand(target)))

    def write(self, source: OperandLike) -> Quad:
        """``write source``."""
        return self.emit(Quad(Opcode.WRITE, a=as_operand(source)))

    # ------------------------------------------------------------------
    # structured regions
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def loop(
        self,
        lcv: str,
        init: OperandLike,
        final: OperandLike,
        step: OperandLike = 1,
        parallel: bool = False,
    ) -> Iterator[Quad]:
        """A ``do lcv = init, final, step`` ... ``enddo`` region."""
        opcode = Opcode.DOALL if parallel else Opcode.DO
        head = self.emit(
            Quad(
                opcode,
                result=Var(lcv),
                a=as_operand(init),
                b=as_operand(final),
                step=as_operand(step),
            )
        )
        yield head
        self.emit(Quad(Opcode.ENDDO))

    @contextlib.contextmanager
    def if_(
        self, left: OperandLike, relop: str, right: OperandLike
    ) -> Iterator[Quad]:
        """An ``if left relop right`` ... ``endif`` region (THEN part)."""
        guard = self.emit(
            Quad(
                Opcode.IF,
                a=as_operand(left),
                b=as_operand(right),
                relop=relop,
            )
        )
        yield guard
        self.emit(Quad(Opcode.ENDIF))

    @contextlib.contextmanager
    def if_else(
        self, left: OperandLike, relop: str, right: OperandLike
    ) -> Iterator[tuple[Quad, "ElseMarker"]]:
        """An ``if``/``else``/``endif`` region.

        Usage::

            with b.if_else("x", ">", 0) as (guard, orelse):
                b.assign("y", 1)
                orelse.begin()
                b.assign("y", 2)
        """
        guard = self.emit(
            Quad(
                Opcode.IF,
                a=as_operand(left),
                b=as_operand(right),
                relop=relop,
            )
        )
        marker = ElseMarker(self)
        yield guard, marker
        if not marker.emitted:
            raise ValueError("if_else region ended without orelse.begin()")
        self.emit(Quad(Opcode.ENDIF))

    def __len__(self) -> int:
        """Quads emitted so far (size-targeted generators read this)."""
        return len(self._program)

    # ------------------------------------------------------------------
    def build(self) -> Program:
        """Finish and validate the program."""
        self._program.check_structure()
        return self._program


class ElseMarker:
    """Helper that emits the ELSE quad inside an ``if_else`` region."""

    def __init__(self, builder: IRBuilder):
        self._builder = builder
        self.emitted = False

    def begin(self) -> Quad:
        """Start the ELSE branch."""
        if self.emitted:
            raise ValueError("orelse.begin() called twice")
        self.emitted = True
        return self._builder.emit(Quad(Opcode.ELSE))
