"""A reference interpreter for the quad IR.

The interpreter is the *semantic oracle* for the whole reproduction:
every optimization (generated or hand-coded) is validated by executing
the program before and after transformation on concrete inputs and
comparing the observable behaviour (the ``write`` trace and final
variable state).  It also drives the machine-model *benefit* estimates
of experiment E5 by counting executed quads per opcode.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.ir.program import Program
from repro.ir.quad import (
    BINARY_OPS,
    LOOP_HEADS,
    Opcode,
    Quad,
    UNARY_OPS,
)
from repro.ir.types import Affine, ArrayRef, Const, Number, Operand, Var


class InterpError(Exception):
    """Raised for runtime errors (unbound variable, step overrun...).

    Every runtime failure surfaces as (a subclass of) this type — the
    interpreter never leaks ``KeyError``/``IndexError``/
    ``ZeroDivisionError``/``OverflowError``, so differential-testing
    oracles can treat "raises :class:`InterpError`" as one well-defined
    observable behaviour.
    """


class UninitializedError(InterpError):
    """Strict mode: a scalar or array cell was read before any write."""


class BoundsError(InterpError):
    """An array subscript fell outside the declared index bounds."""


@dataclass
class ExecutionResult:
    """Observable outcome of running a program."""

    output: list[Number]
    scalars: dict[str, Number]
    arrays: dict[str, dict[tuple[int, ...], Number]]
    steps: int
    opcode_counts: Counter = field(default_factory=Counter)

    def observable(self) -> tuple:
        """The behaviour two semantically-equal programs must share.

        Only the ``write`` trace counts: optimizations may legitimately
        change which temporaries exist or which dead values linger.
        Floating point values are rounded to 9 significant digits so
        re-association-free transformations compare cleanly.
        """
        return tuple(_normalize(value) for value in self.output)


def _normalize(value: Number):
    if isinstance(value, float):
        if math.isnan(value):
            # canonical token: two programs that both computed NaN
            # behaved the same, but nan != nan would call it divergent
            return "nan"
        if value == 0:
            return 0.0
        return float(f"{value:.9g}")
    return value


class Interpreter:
    """Executes a program over integer/float scalars and dense arrays.

    ``strict`` switches the permissive FORTRAN defaults off: reading an
    uninitialized scalar or array cell raises
    :class:`UninitializedError` instead of yielding 0.  ``array_bounds``
    optionally declares inclusive per-dimension index ranges; any
    subscript outside them raises :class:`BoundsError` (on load *and*
    store), whether or not strict mode is on.
    """

    def __init__(
        self,
        program: Program,
        max_steps: int = 2_000_000,
        strict: bool = False,
        array_bounds: Optional[
            dict[str, tuple[tuple[int, int], ...]]
        ] = None,
    ):
        self.program = program
        self.max_steps = max_steps
        self.strict = strict
        self.array_bounds = array_bounds
        self._quads = list(program)
        self._enddo_of: dict[int, int] = {}
        self._else_endif_of: dict[int, tuple[Optional[int], int]] = {}

    def run(
        self,
        inputs: Sequence[Number] = (),
        scalars: Optional[dict[str, Number]] = None,
        arrays: Optional[dict[str, dict[tuple[int, ...], Number]]] = None,
    ) -> ExecutionResult:
        """Execute the whole program and return its observable result.

        ``inputs`` feeds ``read`` quads in order; reading past the end
        yields zeros (so randomly generated programs always run).
        Uninitialized scalars and array elements read as 0.
        """
        state = _State(
            scalars=dict(scalars or {}),
            arrays={name: dict(cells) for name, cells in (arrays or {}).items()},
            inputs=list(inputs),
            strict=self.strict,
            array_bounds=dict(self.array_bounds or {}),
        )
        self._run_range(state, 0, len(self.program))
        return ExecutionResult(
            output=state.output,
            scalars=state.scalars,
            arrays=state.arrays,
            steps=state.steps,
            opcode_counts=state.opcode_counts,
        )

    # ------------------------------------------------------------------
    def _run_range(self, state: "_State", start: int, stop: int) -> None:
        """Execute quads in positions [start, stop)."""
        position = start
        quads = self._quads
        while position < stop:
            quad = quads[position]
            state.tick(quad, self.max_steps)
            op = quad.opcode
            if op in LOOP_HEADS:
                position = self._run_loop(state, position)
            elif op is Opcode.IF:
                position = self._run_if(state, position)
            elif op in (Opcode.ELSE, Opcode.ENDIF, Opcode.ENDDO, Opcode.NOP):
                position += 1
            elif op is Opcode.READ:
                state.store(quad.a, state.next_input())
                position += 1
            elif op is Opcode.WRITE:
                state.output.append(state.load(quad.a))
                position += 1
            else:
                self._run_compute(state, quad)
                position += 1

    def _run_compute(self, state: "_State", quad: Quad) -> None:
        op = quad.opcode
        if op is Opcode.ASSIGN:
            value = state.load(quad.a)
        elif op in BINARY_OPS:
            value = _apply_binary(op, state.load(quad.a), state.load(quad.b))
        elif op in UNARY_OPS:
            value = _apply_unary(op, state.load(quad.a))
        else:
            raise InterpError(f"cannot execute opcode {op}")
        state.store(quad.result, value)

    def _run_loop(self, state: "_State", head_position: int) -> int:
        head = self._quads[head_position]
        end_position = self._enddo_of.get(head_position)
        if end_position is None:
            end_position = self._matching_enddo(head_position)
            self._enddo_of[head_position] = end_position
        lcv = head.result
        assert isinstance(lcv, Var)
        init = state.load(head.a)
        final = state.load(head.b)
        step = state.load(head.step)
        if step == 0:
            raise InterpError(f"zero loop step at qid {head.qid}")
        value = init
        while (step > 0 and value <= final) or (step < 0 and value >= final):
            state.scalars[lcv.name] = value
            self._run_range(state, head_position + 1, end_position)
            # FORTRAN semantics: the lcv may be read but not written in
            # the body; re-load in case a transformation renamed it.
            value = state.scalars[lcv.name] + step
        state.scalars[lcv.name] = value
        return end_position + 1

    def _run_if(self, state: "_State", if_position: int) -> int:
        guard = self._quads[if_position]
        cached = self._else_endif_of.get(if_position)
        if cached is None:
            cached = self._matching_else_endif(if_position)
            self._else_endif_of[if_position] = cached
        else_position, endif_position = cached
        taken = _apply_relop(
            guard.relop, state.load(guard.a), state.load(guard.b)
        )
        if taken:
            stop = else_position if else_position is not None else endif_position
            self._run_range(state, if_position + 1, stop)
        elif else_position is not None:
            self._run_range(state, else_position + 1, endif_position)
        return endif_position + 1

    # ------------------------------------------------------------------
    def _matching_enddo(self, head_position: int) -> int:
        depth = 0
        for position in range(head_position, len(self._quads)):
            op = self._quads[position].opcode
            if op in LOOP_HEADS:
                depth += 1
            elif op is Opcode.ENDDO:
                depth -= 1
                if depth == 0:
                    return position
        raise InterpError("unterminated loop")

    def _matching_else_endif(
        self, if_position: int
    ) -> tuple[Optional[int], int]:
        depth = 0
        else_position: Optional[int] = None
        for position in range(if_position, len(self._quads)):
            op = self._quads[position].opcode
            if op is Opcode.IF:
                depth += 1
            elif op is Opcode.ELSE and depth == 1:
                else_position = position
            elif op is Opcode.ENDIF:
                depth -= 1
                if depth == 0:
                    return else_position, position
        raise InterpError("unterminated IF")


@dataclass
class _State:
    scalars: dict[str, Number]
    arrays: dict[str, dict[tuple[int, ...], Number]]
    inputs: list[Number]
    output: list[Number] = field(default_factory=list)
    steps: int = 0
    input_cursor: int = 0
    opcode_counts: Counter = field(default_factory=Counter)
    strict: bool = False
    array_bounds: dict[str, tuple[tuple[int, int], ...]] = field(
        default_factory=dict
    )

    def tick(self, quad: Quad, max_steps: int) -> None:
        self.steps += 1
        self.opcode_counts[quad.opcode] += 1
        if self.steps > max_steps:
            raise InterpError(f"step budget exceeded ({max_steps})")

    def next_input(self) -> Number:
        if self.input_cursor < len(self.inputs):
            value = self.inputs[self.input_cursor]
            self.input_cursor += 1
            return value
        return 0

    # -- operand evaluation --------------------------------------------
    def load(self, operand: Optional[Operand]) -> Number:
        if operand is None:
            raise InterpError("load of missing operand")
        if isinstance(operand, Const):
            return operand.value
        if isinstance(operand, Var):
            if self.strict and operand.name not in self.scalars:
                raise UninitializedError(
                    f"read of uninitialized scalar {operand.name!r}"
                )
            return self.scalars.get(operand.name, 0)
        if isinstance(operand, ArrayRef):
            index = self._index_of(operand)
            self._check_bounds(operand.name, index)
            cells = self.arrays.setdefault(operand.name, {})
            if self.strict and index not in cells:
                subscript = ",".join(str(coord) for coord in index)
                raise UninitializedError(
                    f"read of uninitialized element "
                    f"{operand.name}({subscript})"
                )
            return cells.get(index, 0)
        raise InterpError(f"cannot load {operand!r}")

    def store(self, operand: Optional[Operand], value: Number) -> None:
        if isinstance(operand, Var):
            self.scalars[operand.name] = value
        elif isinstance(operand, ArrayRef):
            index = self._index_of(operand)
            self._check_bounds(operand.name, index)
            self.arrays.setdefault(operand.name, {})[index] = value
        else:
            raise InterpError(f"cannot store to {operand!r}")

    def _check_bounds(self, name: str, index: tuple[int, ...]) -> None:
        bounds = self.array_bounds.get(name)
        if bounds is None:
            return
        subscript = ",".join(str(coord) for coord in index)
        if len(index) != len(bounds):
            raise BoundsError(
                f"{name}({subscript}): rank {len(index)} subscript for "
                f"rank {len(bounds)} array"
            )
        for coord, (low, high) in zip(index, bounds):
            if not low <= coord <= high:
                raise BoundsError(
                    f"{name}({subscript}): index {coord} outside "
                    f"[{low}, {high}]"
                )

    def _index_of(self, ref: ArrayRef) -> tuple[int, ...]:
        index = []
        for sub in ref.subscripts:
            if isinstance(sub, Var):
                index.append(int(self.scalars.get(sub.name, 0)))
            else:
                index.append(int(self._eval_affine(sub)))
        return tuple(index)

    def _eval_affine(self, expr: Affine) -> Number:
        total: Number = expr.const
        for var, coeff in expr.terms:
            total += coeff * self.scalars.get(var, 0)
        return total


def _apply_binary(op: Opcode, left: Number, right: Number) -> Number:
    if op is Opcode.ADD:
        return left + right
    if op is Opcode.SUB:
        return left - right
    if op is Opcode.MUL:
        return left * right
    if op is Opcode.DIV:
        if right == 0:
            raise InterpError("division by zero")
        if isinstance(left, int) and isinstance(right, int):
            quotient = left / right
            return int(quotient) if float(quotient).is_integer() else quotient
        return left / right
    if op is Opcode.MOD:
        if right == 0:
            raise InterpError("mod by zero")
        return left % right
    if op is Opcode.POW:
        if (
            isinstance(left, int)
            and isinstance(right, int)
            and abs(left) > 1
            and right > 4096
        ):
            raise InterpError(f"pow overflow: {left} ** {right}")
        try:
            value = left ** right
        except (ZeroDivisionError, OverflowError) as error:
            raise InterpError(f"pow domain error: {error}") from None
        if isinstance(value, complex):
            raise InterpError(
                f"pow of negative base to fractional exponent: "
                f"{left} ** {right}"
            )
        return value
    raise InterpError(f"not a binary opcode: {op}")


def _apply_unary(op: Opcode, value: Number) -> Number:
    if op is Opcode.NEG:
        return -value
    if op is Opcode.ABS:
        return abs(value)
    if op is Opcode.SQRT:
        if value < 0:
            raise InterpError("sqrt of negative value")
        return math.sqrt(value)
    if op is Opcode.SIN:
        return math.sin(value)
    if op is Opcode.COS:
        return math.cos(value)
    if op is Opcode.EXP:
        try:
            return math.exp(value)
        except OverflowError:
            raise InterpError(f"exp overflow: exp({value})") from None
    if op is Opcode.LOG:
        if value <= 0:
            raise InterpError("log of non-positive value")
        return math.log(value)
    raise InterpError(f"not a unary opcode: {op}")


def _apply_relop(relop: Optional[str], left: Number, right: Number) -> bool:
    if relop == "<":
        return left < right
    if relop == "<=":
        return left <= right
    if relop == ">":
        return left > right
    if relop == ">=":
        return left >= right
    if relop == "==":
        return left == right
    if relop == "!=":
        return left != right
    raise InterpError(f"unknown relop {relop!r}")


def run_program(
    program: Program,
    inputs: Sequence[Number] = (),
    scalars: Optional[dict[str, Number]] = None,
    arrays: Optional[dict[str, dict[tuple[int, ...], Number]]] = None,
    max_steps: int = 2_000_000,
    strict: bool = False,
    array_bounds: Optional[dict[str, tuple[tuple[int, int], ...]]] = None,
) -> ExecutionResult:
    """One-shot convenience wrapper around :class:`Interpreter`."""
    return Interpreter(
        program, max_steps=max_steps, strict=strict,
        array_bounds=array_bounds,
    ).run(inputs=inputs, scalars=scalars, arrays=arrays)


def same_behaviour(
    before: Program,
    after: Program,
    inputs: Sequence[Number] = (),
    scalars: Optional[dict[str, Number]] = None,
    arrays: Optional[dict[str, dict[tuple[int, ...], Number]]] = None,
) -> bool:
    """True when both programs produce the same ``write`` trace."""
    result_before = run_program(before, inputs, scalars, arrays)
    result_after = run_program(after, inputs, scalars, arrays)
    return result_before.observable() == result_after.observable()
