"""Loop and conditional structure recovered from the marker quads.

GOSpeL's loop types (``Loop``, ``Nested Loops``, ``Tight Loops``,
``Adjacent Loops``) and loop attributes (``.HEAD``, ``.END``, ``.BODY``,
``.LCV``, ``.INIT``, ``.FINAL``) are answered from the structures built
here.  The tables are pure views: they hold qids, not positions, and are
rebuilt whenever the program version changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ir.program import IRError, Program
from repro.ir.quad import Opcode, Quad
from repro.ir.types import Const


@dataclass
class Loop:
    """One loop of the program, identified by its head quad's qid."""

    head_qid: int
    end_qid: int
    depth: int
    parent: Optional[int] = None  # head qid of the enclosing loop
    children: list[int] = field(default_factory=list)
    body_qids: tuple[int, ...] = ()  # strictly between head and end

    @property
    def qid(self) -> int:
        """Alias: a loop is named by its head quad's qid."""
        return self.head_qid


@dataclass
class Conditional:
    """One IF region: the guard quad and its THEN/ELSE member qids."""

    if_qid: int
    else_qid: Optional[int]
    endif_qid: int
    then_qids: tuple[int, ...] = ()
    else_qids: tuple[int, ...] = ()


class StructureTable:
    """Loop and conditional structure for one program version."""

    def __init__(self, program: Program):
        self.program = program
        self.version = program.version
        self.loops: dict[int, Loop] = {}
        self.conditionals: dict[int, Conditional] = {}
        #: innermost enclosing loop head qid for every quad (or None)
        self.enclosing_loop: dict[int, Optional[int]] = {}
        #: guard qids (IF or loop head) controlling each quad, outermost first
        self.controllers: dict[int, tuple[int, ...]] = {}
        self._chain_cache: dict[int, tuple[int, ...]] = {}
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        loop_stack: list[tuple[int, list[int]]] = []
        cond_stack: list[tuple[int, Optional[int], list[int], list[int]]] = []
        control_stack: list[int] = []
        order: list[int] = []  # loop head qids in program order

        for quad in self.program:
            qid = quad.qid
            self.enclosing_loop[qid] = loop_stack[-1][0] if loop_stack else None
            self.controllers[qid] = tuple(control_stack)

            op = quad.opcode
            if op in (Opcode.DO, Opcode.DOALL):
                for _head, body in loop_stack:
                    body.append(qid)
                for entry in cond_stack:
                    (entry[3] if entry[1] is not None else entry[2]).append(qid)
                loop_stack.append((qid, []))
                control_stack.append(qid)
                order.append(qid)
            elif op is Opcode.ENDDO:
                if not loop_stack:
                    raise IRError(f"unmatched ENDDO at qid {qid}")
                head_qid, body = loop_stack.pop()
                control_stack.pop()
                depth = len(loop_stack) + 1
                parent = loop_stack[-1][0] if loop_stack else None
                loop = Loop(
                    head_qid=head_qid,
                    end_qid=qid,
                    depth=depth,
                    parent=parent,
                    body_qids=tuple(body),
                )
                self.loops[head_qid] = loop
                for _head, outer_body in loop_stack:
                    outer_body.append(qid)
                for entry in cond_stack:
                    (entry[3] if entry[1] is not None else entry[2]).append(qid)
            elif op is Opcode.IF:
                for _head, body in loop_stack:
                    body.append(qid)
                for entry in cond_stack:
                    (entry[3] if entry[1] is not None else entry[2]).append(qid)
                cond_stack.append((qid, None, [], []))
                control_stack.append(qid)
            elif op is Opcode.ELSE:
                if not cond_stack:
                    raise IRError(f"ELSE outside IF at qid {qid}")
                if_qid, _else, then_qids, else_qids = cond_stack.pop()
                cond_stack.append((if_qid, qid, then_qids, else_qids))
                for _head, body in loop_stack:
                    body.append(qid)
            elif op is Opcode.ENDIF:
                if not cond_stack:
                    raise IRError(f"unmatched ENDIF at qid {qid}")
                if_qid, else_qid, then_qids, else_qids = cond_stack.pop()
                control_stack.pop()
                self.conditionals[if_qid] = Conditional(
                    if_qid=if_qid,
                    else_qid=else_qid,
                    endif_qid=qid,
                    then_qids=tuple(then_qids),
                    else_qids=tuple(else_qids),
                )
                for _head, body in loop_stack:
                    body.append(qid)
                for entry in cond_stack:
                    (entry[3] if entry[1] is not None else entry[2]).append(qid)
            else:
                for _head, body in loop_stack:
                    body.append(qid)
                for entry in cond_stack:
                    (entry[3] if entry[1] is not None else entry[2]).append(qid)

        if loop_stack:
            raise IRError("unterminated loop region")
        if cond_stack:
            raise IRError("unterminated IF region")

        for loop in self.loops.values():
            if loop.parent is not None:
                self.loops[loop.parent].children.append(loop.head_qid)
        self._order = order

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def loops_in_order(self) -> list[Loop]:
        """All loops, by program order of their head quads."""
        return [self.loops[qid] for qid in self._order]

    def loop_of(self, head_qid: int) -> Loop:
        """The loop whose head quad has the given qid."""
        loop = self.loops.get(head_qid)
        if loop is None:
            raise IRError(f"qid {head_qid} is not a loop head")
        return loop

    def loop_head_quad(self, head_qid: int) -> Quad:
        """The DO/DOALL quad of a loop."""
        return self.program.quad(head_qid)

    def member(self, qid: int, head_qid: int) -> bool:
        """GOSpeL ``mem(S, L)``: is ``qid`` in the body of loop ``head_qid``?"""
        return qid in set(self.loop_of(head_qid).body_qids)

    def loop_chain(self, qid: int) -> tuple[int, ...]:
        """Head qids of the loops enclosing a quad, outermost first.

        Cached per quad: dependence analysis asks for the chain of both
        endpoints of every access pair, and the table is immutable for
        its program version.
        """
        cached = self._chain_cache.get(qid)
        if cached is not None:
            return cached
        heads: list[int] = []
        current = self.enclosing_loop.get(qid)
        while current is not None:
            heads.append(current)
            current = self.loops[current].parent
        heads.reverse()
        chain = tuple(heads)
        self._chain_cache[qid] = chain
        return chain

    def common_loops(self, qid_a: int, qid_b: int) -> list[Loop]:
        """Loops enclosing both quads, outermost first.

        The length of this list is the length of the direction vectors
        for dependences between the two statements.
        """
        chain_a, chain_b = self.loop_chain(qid_a), self.loop_chain(qid_b)
        shared: list[Loop] = []
        for head_a, head_b in zip(chain_a, chain_b):
            if head_a != head_b:
                break
            shared.append(self.loops[head_a])
        return shared

    def nesting_depth(self, qid: int) -> int:
        """Number of loops enclosing the quad."""
        depth = 0
        current = self.enclosing_loop.get(qid)
        while current is not None:
            depth += 1
            current = self.loops[current].parent
        return depth

    # ------------------------------------------------------------------
    # GOSpeL loop-pair types
    # ------------------------------------------------------------------
    def nested_pairs(self) -> list[tuple[int, int]]:
        """All ``(outer, inner)`` loop pairs with outer enclosing inner."""
        pairs = []
        for outer_qid in self._order:
            for inner_qid in self._order:
                if inner_qid == outer_qid:
                    continue
                if self._encloses(outer_qid, inner_qid):
                    pairs.append((outer_qid, inner_qid))
        return pairs

    def _encloses(self, outer_qid: int, inner_qid: int) -> bool:
        current = self.loops[inner_qid].parent
        while current is not None:
            if current == outer_qid:
                return True
            current = self.loops[current].parent
        return False

    def tight_pairs(self) -> list[tuple[int, int]]:
        """Tightly nested ``(outer, inner)`` pairs.

        "Two loops are tightly nested if one surrounds the other without
        any statements between them" — no quads between the heads and
        none between the ends.
        """
        pairs = []
        for outer_qid, inner_qid in self.nested_pairs():
            outer = self.loops[outer_qid]
            inner = self.loops[inner_qid]
            if inner.parent != outer_qid:
                continue
            head_gap = self.program.next_qid_of(outer.head_qid)
            end_gap = self.program.next_qid_of(inner.end_qid)
            if head_gap == inner.head_qid and end_gap == outer.end_qid:
                pairs.append((outer_qid, inner_qid))
        return pairs

    def adjacent_pairs(self) -> list[tuple[int, int]]:
        """Adjacent ``(first, second)`` sibling loop pairs.

        Two loops are adjacent when the second's head immediately
        follows the first's end quad.
        """
        pairs = []
        for first_qid in self._order:
            first = self.loops[first_qid]
            follower = self.program.next_qid_of(first.end_qid)
            if follower is not None and follower in self.loops:
                pairs.append((first_qid, follower))
        return pairs

    def perfect_nest_from(self, outer_qid: int) -> list[int]:
        """The maximal tight nest starting at ``outer_qid`` (head qids)."""
        nest = [outer_qid]
        tight = dict(self.tight_pairs())
        while nest[-1] in tight:
            nest.append(tight[nest[-1]])
        return nest


def loop_attributes(program: Program, head_qid: int) -> dict[str, object]:
    """The GOSpeL pre-defined attributes of a loop.

    Returns a mapping with keys ``head``, ``end``, ``body``, ``lcv``,
    ``init``, ``final`` and ``step``.
    """
    table = StructureTable(program)
    loop = table.loop_of(head_qid)
    head = program.quad(head_qid)
    return {
        "head": loop.head_qid,
        "end": loop.end_qid,
        "body": loop.body_qids,
        "lcv": head.result,
        "init": head.a,
        "final": head.b,
        "step": head.step,
    }


def trip_count(head: Quad, default: Optional[int] = None) -> Optional[int]:
    """Trip count of a loop with constant bounds, else ``default``."""
    if (
        isinstance(head.a, Const)
        and isinstance(head.b, Const)
        and isinstance(head.step, Const)
        and head.step.value != 0
    ):
        span = head.b.value - head.a.value
        count = span // head.step.value + 1
        return max(0, int(count))
    return default
