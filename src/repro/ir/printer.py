"""Pretty-printing of programs, quads and dependence information."""

from __future__ import annotations

from repro.ir.program import Program
from repro.ir.quad import Opcode


def format_program(program: Program, show_qids: bool = True) -> str:
    """Render a program with indentation following the loop/IF structure.

    >>> from repro.ir.builder import IRBuilder
    >>> b = IRBuilder()
    >>> _ = b.assign("x", 1)
    >>> print(format_program(b.build(), show_qids=False))
    x := 1
    """
    lines = []
    indent = 0
    for quad in program:
        if quad.opcode in (Opcode.ENDDO, Opcode.ENDIF):
            indent = max(0, indent - 1)
        prefix = f"{quad.qid:>4}:  " if show_qids else ""
        if quad.opcode is Opcode.ELSE:
            lines.append(f"{prefix}{'    ' * max(0, indent - 1)}{quad}")
        else:
            lines.append(f"{prefix}{'    ' * indent}{quad}")
        if quad.opcode in (Opcode.DO, Opcode.DOALL, Opcode.IF):
            indent += 1
    return "\n".join(lines)


def format_side_by_side(before: Program, after: Program, width: int = 44) -> str:
    """Two programs in columns, for before/after optimization reports."""
    left_lines = format_program(before).splitlines()
    right_lines = format_program(after).splitlines()
    height = max(len(left_lines), len(right_lines))
    left_lines += [""] * (height - len(left_lines))
    right_lines += [""] * (height - len(right_lines))
    header = f"{'BEFORE':<{width}} | AFTER"
    rule = "-" * width + "-+-" + "-" * width
    rows = [header, rule]
    for left, right in zip(left_lines, right_lines):
        rows.append(f"{left:<{width}} | {right}")
    return "\n".join(rows)
