"""The program container: an ordered list of quads with stable identity.

A :class:`Program` is the unit that optimizers transform.  Quads are
identified by *qids* that survive insertion, deletion and movement, so
that dependence edges and GOSpeL statement bindings remain meaningful
while a transformation rewrites the code.  Structural views (the loop
table, conditional regions) are recomputed lazily and invalidated by a
version counter whenever the quad list changes.

Storage is the blocked order-maintenance list of
:mod:`repro.ir.blocklist`: mutations and position queries cost
O(B + n/B) amortized Python work instead of the dense-index rebuild's
O(n), and the program fingerprint is maintained incrementally from
per-block segment caches instead of re-rendering every quad — the two
properties that let the driver/matching/search stack run on 10^5–10^6
quad programs (see ``docs/ir.md`` for the representation and the
per-operation complexity guarantees).
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Union

from repro.ir.blocklist import QuadStore
from repro.ir.quad import CONTENT_HASH_BYTES, Opcode, Quad

#: Environment variable enabling the fingerprint shadow check: every
#: incrementally maintained digest is recomputed from scratch (all
#: per-quad and per-block caches ignored) and compared, mirroring
#: ``REPRO_ANALYSIS_CHECK`` and ``REPRO_MATCH_CHECK``.
ENV_FP_CHECK = "REPRO_FP_CHECK"


class IRError(Exception):
    """Raised for malformed IR manipulations (unknown qid, bad nesting)."""


class RollbackUnavailable(IRError):
    """The change log cannot restore the requested program version.

    Raised by :meth:`Program.rollback_to` when the log was trimmed past
    the target version or contains entries without undo information
    (``opaque`` touches, in-place :meth:`Program.touch` modifications).
    Callers holding a deep-clone snapshot fall back to
    :meth:`Program.restore_from`.
    """


class FingerprintMismatchError(AssertionError):
    """The ``REPRO_FP_CHECK`` shadow found a digest divergence.

    The incrementally maintained fingerprint (cached per-quad hashes,
    per-block segments) disagreed with a from-scratch recompute — a
    cache-invalidation bug, almost always an in-place quad mutation
    that was never reported through :meth:`Program.touch`.
    """


@dataclass(frozen=True)
class ProgramChange:
    """One logged mutation, for incremental analysis invalidation.

    ``kind`` is one of ``"add"``, ``"remove"``, ``"move"``, ``"modify"``
    or ``"opaque"`` (an untagged :meth:`Program.touch` — the mutated
    quad is unknown, so consumers must invalidate everything).  The
    ``version`` is the program version *after* the mutation completed.

    ``position`` and ``before`` are the undo payload consumed by
    :meth:`Program.rollback_to`: the quad's list position before the
    mutation (for ``remove``/``move``), and a pre-image copy of the
    quad (for ``remove``/``modify``).  In-place mutations reported
    through :meth:`Program.touch` have no pre-image (``before`` is
    None), which makes them non-undoable.
    """

    version: int
    kind: str
    qid: int
    position: int = -1
    before: Optional[Quad] = None

    @property
    def undoable(self) -> bool:
        """Whether :meth:`Program.rollback_to` can invert this entry."""
        if self.kind == "add":
            return True
        if self.kind in ("remove", "modify"):
            return self.before is not None
        if self.kind == "move":
            return self.position >= 0
        return False  # "opaque"


#: Retained change-log length; older entries are trimmed and consumers
#: whose snapshot predates the trim fall back to full recomputation.
_CHANGELOG_LIMIT = 4096


class Program:
    """An ordered sequence of :class:`Quad` with stable qids.

    The mutation API (``insert_after``, ``remove``, ``move_after``,
    ``replace``) is exactly what the GENesis primitive-action library
    needs to implement the paper's five action primitives.
    """

    def __init__(self, quads: Iterable[Quad] = (), name: str = "main"):
        self.name = name
        self._store = QuadStore()
        self._next_qid = 0
        self._version = 0
        self._changelog: list[ProgramChange] = []
        #: versions at or below this are no longer covered by the log
        self._log_floor = 0
        #: open-transaction marks; while non-empty the log never trims,
        #: so every pinned version stays reachable for rollback
        self._pins: list[int] = []
        #: (version, digest) memo for :meth:`fingerprint`
        self._fingerprint_cache: Optional[tuple[int, str]] = None
        #: (version, names) memos for the name queries
        self._scalar_names_cache: Optional[tuple[int, frozenset[str]]] = None
        self._array_names_cache: Optional[tuple[int, frozenset[str]]] = None
        for quad in quads:
            self.append(quad)

    # ------------------------------------------------------------------
    # read access
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic counter bumped by every mutation (cache key)."""
        return self._version

    @property
    def quads(self) -> tuple[Quad, ...]:
        """The quads in program order (read-only view).

        Materializes an O(n) tuple on every read — iteration-only
        callers should use ``for quad in program`` (or ``reversed``)
        and ``len(program)`` instead.
        """
        return tuple(self._store)

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[Quad]:
        return iter(self._store)

    def __reversed__(self) -> Iterator[Quad]:
        return reversed(self._store)

    def __getitem__(
        self, position: Union[int, slice]
    ) -> Union[Quad, tuple[Quad, ...]]:
        if isinstance(position, slice):
            return tuple(self._store)[position]
        return self._store.get(position)

    def quad(self, qid: int) -> Quad:
        """The quad with the given qid.

        Raises :class:`IRError` for unknown (e.g. deleted) qids.
        """
        try:
            return self._store.get_by_qid(qid)
        except KeyError:
            raise IRError(f"no quad with qid {qid}") from None

    def position(self, qid: int) -> int:
        """Current list position of a qid (the library's ``find``)."""
        try:
            return self._store.position(qid)
        except KeyError:
            raise IRError(f"no quad with qid {qid}") from None

    def contains(self, qid: int) -> bool:
        """True when a quad with this qid is currently in the program."""
        return self._store.contains(qid)

    def qids(self) -> list[int]:
        """All qids in program order."""
        return [quad.qid for quad in self._store]

    def next_qid_of(self, qid: int) -> Optional[int]:
        """qid of the following quad (GOSpeL ``.NXT``), or None at end."""
        position = self.position(qid) + 1
        if position >= len(self._store):
            return None
        return self._store.get(position).qid

    def prev_qid_of(self, qid: int) -> Optional[int]:
        """qid of the preceding quad (GOSpeL ``.PREV``), or None at start."""
        position = self.position(qid) - 1
        if position < 0:
            return None
        return self._store.get(position).qid

    # ------------------------------------------------------------------
    # change log
    # ------------------------------------------------------------------
    def _log(
        self,
        kind: str,
        qid: int,
        position: int = -1,
        before: Optional[Quad] = None,
    ) -> None:
        self._changelog.append(
            ProgramChange(self._version, kind, qid, position, before)
        )
        if len(self._changelog) > _CHANGELOG_LIMIT and not self._pins:
            trimmed = self._changelog[: _CHANGELOG_LIMIT // 2]
            self._log_floor = trimmed[-1].version
            del self._changelog[: _CHANGELOG_LIMIT // 2]

    def changes_since(self, version: int) -> Optional[list[ProgramChange]]:
        """Every mutation after ``version``, oldest first.

        Returns ``None`` when the log no longer reaches back that far
        (trimmed history) — the caller must recompute from scratch.
        An empty list means the program is unchanged since ``version``.
        """
        if version >= self._version:
            return []
        if version < self._log_floor:
            return None
        return [c for c in self._changelog if c.version > version]

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _assign_qid(self, quad: Quad) -> Quad:
        if quad.qid != -1 and self._store.contains(quad.qid):
            raise IRError(f"qid {quad.qid} already present")
        if quad.qid == -1:
            quad.qid = self._next_qid
        self._next_qid = max(self._next_qid, quad.qid) + 1
        # the quad may have lived (and been mutated) outside any
        # program since its hash was cached; trust nothing on entry
        quad.drop_content_hash()
        return quad

    def append(self, quad: Quad) -> Quad:
        """Add a quad at the end of the program, assigning it a qid."""
        self._assign_qid(quad)
        self._store.append(quad)
        self._version += 1
        self._log("add", quad.qid)
        return quad

    def insert_at(self, position: int, quad: Quad) -> Quad:
        """Insert a quad at a list position, assigning it a qid."""
        if not 0 <= position <= len(self._store):
            raise IRError(f"insert position {position} out of range")
        self._assign_qid(quad)
        self._store.insert(position, quad)
        self._version += 1
        self._log("add", quad.qid)
        return quad

    def insert_after(self, qid: int, quad: Quad) -> Quad:
        """Insert ``quad`` immediately after the quad named ``qid``.

        This is the placement rule of the paper's ``Add`` and ``Copy``
        primitives ("place it following b").
        """
        return self.insert_at(self.position(qid) + 1, quad)

    def insert_before(self, qid: int, quad: Quad) -> Quad:
        """Insert ``quad`` immediately before the quad named ``qid``."""
        return self.insert_at(self.position(qid), quad)

    def _detach(self, qid: int) -> tuple[int, Quad]:
        """Unlink a quad without logging (shared by remove and move)."""
        try:
            return self._store.pop_qid(qid)
        except KeyError:
            raise IRError(f"no quad with qid {qid}") from None

    def preimage(self, qid: int) -> Quad:
        """A qid-preserving copy of a quad's current state.

        Callers that mutate a quad in place capture this *before* the
        mutation and hand it to :meth:`touch` so the change stays
        undoable by :meth:`rollback_to`.
        """
        copy = self.quad(qid).copy()
        copy.qid = qid
        return copy

    _preimage = preimage

    def remove(self, qid: int) -> Quad:
        """Remove and return the quad named ``qid`` (``Delete``)."""
        before = self._preimage(qid)
        position, quad = self._detach(qid)
        self._version += 1
        self._log("remove", qid, position, before)
        return quad

    def move_after(self, qid: int, after_qid: int) -> None:
        """Move the quad ``qid`` to just after ``after_qid`` (``Move``)."""
        if qid == after_qid:
            raise IRError("cannot move a quad after itself")
        if not self._store.contains(after_qid):
            raise IRError(f"no quad with qid {after_qid}")
        old_position, quad = self._detach(qid)
        quad.qid = qid  # keep its identity across the move
        self._store.insert(self.position(after_qid) + 1, quad)
        self._version += 1
        self._log("move", qid, old_position)

    def move_to_front(self, qid: int) -> None:
        """Move the quad ``qid`` to the start of the program."""
        old_position, quad = self._detach(qid)
        quad.qid = qid
        self._store.insert(0, quad)
        self._version += 1
        self._log("move", qid, old_position)

    def replace(self, qid: int, quad: Quad) -> Quad:
        """Replace the quad named ``qid`` in place, keeping the qid."""
        before = self._preimage(qid)
        position = self._store.position(qid)
        quad.qid = qid
        quad.drop_content_hash()
        self._store.replace_qid(qid, quad)
        self._version += 1
        self._log("modify", qid, position, before)
        return quad

    def touch(
        self, qid: Optional[int] = None, before: Optional[Quad] = None
    ) -> None:
        """Bump the version counter after an in-place quad mutation.

        Passing the mutated quad's ``qid`` lets incremental analysis
        consumers (:class:`repro.analysis.manager.AnalysisManager`)
        invalidate only the touched region; an untagged touch forces
        them — and the incremental fingerprint — to recompute
        everything.

        ``before`` — a qid-preserving copy of the quad taken *before*
        the mutation — makes the touch undoable by
        :meth:`rollback_to`; without it the entry has no pre-image and
        any covering transaction must restore from a deep snapshot.
        """
        self._version += 1
        if qid is not None and self._store.contains(qid):
            if before is not None and before.qid != qid:
                raise IRError(
                    f"pre-image qid {before.qid} does not match touched "
                    f"qid {qid}"
                )
            self._store.invalidate_hash(qid)
            self._log("modify", qid, self._store.position(qid), before)
        else:
            self._store.invalidate_all_hashes()
            self._log("opaque", -1)

    # ------------------------------------------------------------------
    # transactions and rollback
    # ------------------------------------------------------------------
    def pin(self) -> int:
        """Mark the current version as a rollback target.

        While any pin is outstanding the change log never trims, so
        :meth:`rollback_to` can always reach the pinned version (bare
        in-place :meth:`touch` calls without pre-images remain the one
        unrecoverable case).  Returns the pinned version; release it
        with :meth:`unpin`.
        """
        self._pins.append(self._version)
        return self._version

    def unpin(self, version: int) -> None:
        """Release a pin taken by :meth:`pin` (commit or after rollback)."""
        try:
            self._pins.remove(version)
        except ValueError:
            raise IRError(f"version {version} is not pinned") from None

    def rollback_to(self, version: int) -> int:
        """Undo every mutation after ``version``, newest first.

        The undos run through the ordinary mutation API, so they are
        themselves logged and version-bumping: analysis consumers see
        the restore as regular (incrementally spliceable) changes, and
        version numbers are never reused for different program states.
        Returns the number of entries undone.

        Raises :class:`RollbackUnavailable` when the log was trimmed
        past ``version`` or contains a non-undoable entry (an untagged
        touch, or an in-place modification without a pre-image); the
        program is left *unchanged* in that case so the caller can
        restore from a deep snapshot instead.
        """
        if version > self._version:
            raise IRError(
                f"cannot roll back to future version {version} "
                f"(current {self._version})"
            )
        pending = self.changes_since(version)
        if pending is None:
            raise RollbackUnavailable(
                f"change log trimmed past version {version} "
                f"(floor {self._log_floor})"
            )
        blocked = [c for c in pending if not c.undoable]
        if blocked:
            raise RollbackUnavailable(
                f"{len(blocked)} non-undoable change(s) since version "
                f"{version} (first: {blocked[0].kind} at qid "
                f"{blocked[0].qid})"
            )
        for change in reversed(pending):
            self._undo(change)
        return len(pending)

    def _undo(self, change: ProgramChange) -> None:
        """Invert one logged mutation (state must be post-``change``)."""
        if change.kind == "add":
            self.remove(change.qid)
        elif change.kind == "remove":
            assert change.before is not None
            quad = change.before.copy()
            quad.qid = change.qid
            self.insert_at(change.position, quad)
        elif change.kind == "move":
            old_position, quad = self._detach(change.qid)
            quad.qid = change.qid
            self._store.insert(change.position, quad)
            self._version += 1
            self._log("move", change.qid, old_position)
        elif change.kind == "modify":
            assert change.before is not None
            restored = change.before.copy()
            self.replace(change.qid, restored)
        else:  # pragma: no cover - "opaque" is filtered by rollback_to
            raise RollbackUnavailable(f"cannot undo {change.kind!r} entry")

    def restore_from(self, snapshot: "Program") -> None:
        """Overwrite this program's quads with a snapshot's, in place.

        The deep-clone fallback for :meth:`rollback_to`: object
        identity is preserved (sessions, managers and contexts keep
        their references) but the change log cannot describe the bulk
        restore, so it is cleared and floored — incremental consumers
        recompute from scratch on their next access.
        """
        quads = []
        for quad in snapshot._store:
            duplicate = quad.copy()
            duplicate.qid = quad.qid
            quads.append(duplicate)
        self._store.rebuild(quads)
        self._next_qid = max(self._next_qid, snapshot._next_qid)
        self._version += 1
        self._changelog.clear()
        self._log_floor = self._version
        self._pins.clear()

    @contextmanager
    def transaction(self) -> Iterator[int]:
        """Scope a mutation sequence: roll back on exception.

        Yields the pinned pre-transaction version.  On normal exit the
        pin is released and the mutations stand; on exception the
        program is rolled back to the pinned version (when the log
        allows) before the exception propagates.
        """
        mark = self.pin()
        try:
            yield mark
        except BaseException:
            try:
                self.rollback_to(mark)
            finally:
                self.unpin(mark)
            raise
        else:
            self.unpin(mark)

    # ------------------------------------------------------------------
    # whole-program operations
    # ------------------------------------------------------------------
    def clone(self) -> "Program":
        """A deep copy preserving qids (for experiments and baselines)."""
        fresh = Program(name=self.name)
        quads = []
        next_qid = fresh._next_qid
        for quad in self._store:
            duplicate = quad.copy()
            duplicate.qid = quad.qid
            quads.append(duplicate)
            next_qid = max(next_qid, quad.qid) + 1
        fresh._store.rebuild(quads)
        fresh._next_qid = next_qid
        fresh._version += 1
        # the bulk copy above bypassed the change log; mark earlier
        # versions as unreachable so no consumer trusts an empty log
        fresh._changelog.clear()
        fresh._log_floor = fresh._version
        return fresh

    def fingerprint(self) -> str:
        """The canonical content hash of the program (hex digest).

        Two programs have equal fingerprints exactly when they render
        to the same quad sequence: qids, program name, version history
        and change-log state do not participate, so the hash survives
        unparse/parse round trips and identifies *content*, not object
        lineage.  This is the one program-hash definition shared by
        the ordering experiment, the match-index state hash, and the
        service result cache (:mod:`repro.service`).

        The digest is the SHA-256 of the per-quad content hashes
        (:meth:`repro.ir.quad.Quad.content_hash`) concatenated in
        program order.  It is maintained *incrementally*: quad hashes
        are cached on the quads, block segments on the storage blocks,
        so after k edits only the k dirty blocks re-hash — O(k·B)
        leaf work plus one stream over 16 bytes/quad — instead of the
        seed path's full re-render of all n quads.  Repeated reads
        between mutations are O(1) (version-keyed memo).

        With ``REPRO_FP_CHECK=1`` every digest is shadow-checked
        against a from-scratch recompute and
        :class:`FingerprintMismatchError` is raised on divergence.
        """
        cached = self._fingerprint_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        hasher = hashlib.sha256()
        for segment in self._store.segments():
            hasher.update(segment)
        digest = hasher.hexdigest()
        if os.environ.get(ENV_FP_CHECK, "") not in ("", "0"):
            full = self._full_fingerprint()
            if digest != full:
                raise FingerprintMismatchError(
                    "incremental fingerprint diverged from full "
                    f"recompute at program version {self._version}: "
                    f"{digest[:16]}… != {full[:16]}… — an in-place "
                    "quad mutation was not reported through touch()"
                )
        self._fingerprint_cache = (self._version, digest)
        return digest

    def _full_fingerprint(self) -> str:
        """The fingerprint recomputed from scratch, ignoring every
        cache (the ``REPRO_FP_CHECK`` shadow arm and the benchmark
        baseline)."""
        hasher = hashlib.sha256()
        for quad in self._store:
            hasher.update(
                hashlib.sha256(
                    str(quad).encode()
                ).digest()[:CONTENT_HASH_BYTES]
            )
        return hasher.hexdigest()

    def scalar_names(self) -> frozenset[str]:
        """Every scalar variable name defined or used in the program.

        Version-keyed memo: repeated reads between mutations are O(1)
        instead of an O(n) rescan.
        """
        cached = self._scalar_names_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        names: set[str] = set()
        for quad in self._store:
            names.update(quad.used_scalar_names())
            defined = quad.defined_scalar()
            if defined is not None:
                names.add(defined)
        result = frozenset(names)
        self._scalar_names_cache = (self._version, result)
        return result

    def array_names(self) -> frozenset[str]:
        """Every array name referenced in the program.

        Version-keyed memo, like :meth:`scalar_names`.
        """
        cached = self._array_names_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        names: set[str] = set()
        for quad in self._store:
            for _pos, ref in quad.used_array_refs():
                names.add(ref.name)
            written = quad.defined_array()
            if written is not None:
                names.add(written.name)
            # READ/WRITE of whole arrays appear as ArrayRef in ``a``
        result = frozenset(names)
        self._array_names_cache = (self._version, result)
        return result

    def check_structure(self) -> None:
        """Validate that loop and conditional markers nest properly.

        Raises :class:`IRError` on mismatched ``DO``/``ENDDO`` or
        ``IF``/``ELSE``/``ENDIF`` nesting — transformations call this in
        validation mode to catch primitive sequences that would tear the
        structured IR.
        """
        stack: list[Opcode] = []
        for quad in self._store:
            op = quad.opcode
            if op in (Opcode.DO, Opcode.DOALL, Opcode.IF):
                stack.append(op)
            elif op is Opcode.ELSE:
                if not stack or stack[-1] is not Opcode.IF:
                    raise IRError(f"ELSE outside IF at qid {quad.qid}")
            elif op is Opcode.ENDIF:
                if not stack or stack[-1] is not Opcode.IF:
                    raise IRError(f"unmatched ENDIF at qid {quad.qid}")
                stack.pop()
            elif op is Opcode.ENDDO:
                if not stack or stack[-1] not in (Opcode.DO, Opcode.DOALL):
                    raise IRError(f"unmatched ENDDO at qid {quad.qid}")
                stack.pop()
        if stack:
            raise IRError(f"unterminated {stack[-1].name} region")

    def __str__(self) -> str:
        from repro.ir.printer import format_program

        return format_program(self)
