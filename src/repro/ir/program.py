"""The program container: an ordered list of quads with stable identity.

A :class:`Program` is the unit that optimizers transform.  Quads are
identified by *qids* that survive insertion, deletion and movement, so
that dependence edges and GOSpeL statement bindings remain meaningful
while a transformation rewrites the code.  Structural views (the loop
table, conditional regions) are recomputed lazily and invalidated by a
version counter whenever the quad list changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.ir.quad import Opcode, Quad


class IRError(Exception):
    """Raised for malformed IR manipulations (unknown qid, bad nesting)."""


@dataclass(frozen=True)
class ProgramChange:
    """One logged mutation, for incremental analysis invalidation.

    ``kind`` is one of ``"add"``, ``"remove"``, ``"move"``, ``"modify"``
    or ``"opaque"`` (an untagged :meth:`Program.touch` — the mutated
    quad is unknown, so consumers must invalidate everything).  The
    ``version`` is the program version *after* the mutation completed.
    """

    version: int
    kind: str
    qid: int


#: Retained change-log length; older entries are trimmed and consumers
#: whose snapshot predates the trim fall back to full recomputation.
_CHANGELOG_LIMIT = 4096


class Program:
    """An ordered sequence of :class:`Quad` with stable qids.

    The mutation API (``insert_after``, ``remove``, ``move_after``,
    ``replace``) is exactly what the GENesis primitive-action library
    needs to implement the paper's five action primitives.
    """

    def __init__(self, quads: Iterable[Quad] = (), name: str = "main"):
        self.name = name
        self._quads: list[Quad] = []
        self._next_qid = 0
        self._version = 0
        self._index: dict[int, int] = {}
        self._changelog: list[ProgramChange] = []
        #: versions at or below this are no longer covered by the log
        self._log_floor = 0
        for quad in quads:
            self.append(quad)

    # ------------------------------------------------------------------
    # read access
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic counter bumped by every mutation (cache key)."""
        return self._version

    @property
    def quads(self) -> tuple[Quad, ...]:
        """The quads in program order (read-only view)."""
        return tuple(self._quads)

    def __len__(self) -> int:
        return len(self._quads)

    def __iter__(self) -> Iterator[Quad]:
        return iter(self._quads)

    def __getitem__(self, position: int) -> Quad:
        return self._quads[position]

    def quad(self, qid: int) -> Quad:
        """The quad with the given qid.

        Raises :class:`IRError` for unknown (e.g. deleted) qids.
        """
        position = self._index.get(qid)
        if position is None:
            raise IRError(f"no quad with qid {qid}")
        return self._quads[position]

    def position(self, qid: int) -> int:
        """Current list position of a qid (the library's ``find``)."""
        position = self._index.get(qid)
        if position is None:
            raise IRError(f"no quad with qid {qid}")
        return position

    def contains(self, qid: int) -> bool:
        """True when a quad with this qid is currently in the program."""
        return qid in self._index

    def qids(self) -> list[int]:
        """All qids in program order."""
        return [quad.qid for quad in self._quads]

    def next_qid_of(self, qid: int) -> Optional[int]:
        """qid of the following quad (GOSpeL ``.NXT``), or None at end."""
        position = self.position(qid) + 1
        if position >= len(self._quads):
            return None
        return self._quads[position].qid

    def prev_qid_of(self, qid: int) -> Optional[int]:
        """qid of the preceding quad (GOSpeL ``.PREV``), or None at start."""
        position = self.position(qid) - 1
        if position < 0:
            return None
        return self._quads[position].qid

    # ------------------------------------------------------------------
    # change log
    # ------------------------------------------------------------------
    def _log(self, kind: str, qid: int) -> None:
        self._changelog.append(ProgramChange(self._version, kind, qid))
        if len(self._changelog) > _CHANGELOG_LIMIT:
            trimmed = self._changelog[: _CHANGELOG_LIMIT // 2]
            self._log_floor = trimmed[-1].version
            del self._changelog[: _CHANGELOG_LIMIT // 2]

    def changes_since(self, version: int) -> Optional[list[ProgramChange]]:
        """Every mutation after ``version``, oldest first.

        Returns ``None`` when the log no longer reaches back that far
        (trimmed history) — the caller must recompute from scratch.
        An empty list means the program is unchanged since ``version``.
        """
        if version >= self._version:
            return []
        if version < self._log_floor:
            return None
        return [c for c in self._changelog if c.version > version]

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _assign_qid(self, quad: Quad) -> Quad:
        if quad.qid != -1 and quad.qid in self._index:
            raise IRError(f"qid {quad.qid} already present")
        if quad.qid == -1:
            quad.qid = self._next_qid
        self._next_qid = max(self._next_qid, quad.qid) + 1
        return quad

    def _reindex(self, start: int = 0) -> None:
        for position in range(start, len(self._quads)):
            self._index[self._quads[position].qid] = position
        self._version += 1

    def append(self, quad: Quad) -> Quad:
        """Add a quad at the end of the program, assigning it a qid."""
        self._assign_qid(quad)
        self._quads.append(quad)
        self._index[quad.qid] = len(self._quads) - 1
        self._version += 1
        self._log("add", quad.qid)
        return quad

    def insert_at(self, position: int, quad: Quad) -> Quad:
        """Insert a quad at a list position, assigning it a qid."""
        if not 0 <= position <= len(self._quads):
            raise IRError(f"insert position {position} out of range")
        self._assign_qid(quad)
        self._quads.insert(position, quad)
        self._reindex(position)
        self._log("add", quad.qid)
        return quad

    def insert_after(self, qid: int, quad: Quad) -> Quad:
        """Insert ``quad`` immediately after the quad named ``qid``.

        This is the placement rule of the paper's ``Add`` and ``Copy``
        primitives ("place it following b").
        """
        return self.insert_at(self.position(qid) + 1, quad)

    def insert_before(self, qid: int, quad: Quad) -> Quad:
        """Insert ``quad`` immediately before the quad named ``qid``."""
        return self.insert_at(self.position(qid), quad)

    def _detach(self, qid: int) -> Quad:
        """Unlink a quad without logging (shared by remove and move)."""
        position = self.position(qid)
        quad = self._quads.pop(position)
        del self._index[qid]
        self._reindex(position)
        return quad

    def remove(self, qid: int) -> Quad:
        """Remove and return the quad named ``qid`` (``Delete``)."""
        quad = self._detach(qid)
        self._log("remove", qid)
        return quad

    def move_after(self, qid: int, after_qid: int) -> None:
        """Move the quad ``qid`` to just after ``after_qid`` (``Move``)."""
        if qid == after_qid:
            raise IRError("cannot move a quad after itself")
        quad = self._detach(qid)
        quad.qid = qid  # keep its identity across the move
        self._quads.insert(self.position(after_qid) + 1, quad)
        self._reindex()
        self._log("move", qid)

    def move_to_front(self, qid: int) -> None:
        """Move the quad ``qid`` to the start of the program."""
        quad = self._detach(qid)
        quad.qid = qid
        self._quads.insert(0, quad)
        self._reindex()
        self._log("move", qid)

    def replace(self, qid: int, quad: Quad) -> Quad:
        """Replace the quad named ``qid`` in place, keeping the qid."""
        position = self.position(qid)
        quad.qid = qid
        self._quads[position] = quad
        self._version += 1
        self._log("modify", qid)
        return quad

    def touch(self, qid: Optional[int] = None) -> None:
        """Bump the version counter after an in-place quad mutation.

        Passing the mutated quad's ``qid`` lets incremental analysis
        consumers (:class:`repro.analysis.manager.AnalysisManager`)
        invalidate only the touched region; an untagged touch forces
        them to recompute everything.
        """
        self._version += 1
        if qid is not None and qid in self._index:
            self._log("modify", qid)
        else:
            self._log("opaque", -1)

    # ------------------------------------------------------------------
    # whole-program operations
    # ------------------------------------------------------------------
    def clone(self) -> "Program":
        """A deep copy preserving qids (for experiments and baselines)."""
        fresh = Program(name=self.name)
        for quad in self._quads:
            duplicate = quad.copy()
            duplicate.qid = quad.qid
            fresh._assign_qid(duplicate)
            fresh._quads.append(duplicate)
            fresh._index[duplicate.qid] = len(fresh._quads) - 1
        fresh._version += 1
        # the bulk copy above bypassed the change log; mark earlier
        # versions as unreachable so no consumer trusts an empty log
        fresh._changelog.clear()
        fresh._log_floor = fresh._version
        return fresh

    def scalar_names(self) -> frozenset[str]:
        """Every scalar variable name defined or used in the program."""
        names: set[str] = set()
        for quad in self._quads:
            names.update(quad.used_scalar_names())
            defined = quad.defined_scalar()
            if defined is not None:
                names.add(defined)
        return frozenset(names)

    def array_names(self) -> frozenset[str]:
        """Every array name referenced in the program."""
        names: set[str] = set()
        for quad in self._quads:
            for _pos, ref in quad.used_array_refs():
                names.add(ref.name)
            written = quad.defined_array()
            if written is not None:
                names.add(written.name)
            # READ/WRITE of whole arrays appear as ArrayRef in ``a``
        return frozenset(names)

    def check_structure(self) -> None:
        """Validate that loop and conditional markers nest properly.

        Raises :class:`IRError` on mismatched ``DO``/``ENDDO`` or
        ``IF``/``ELSE``/``ENDIF`` nesting — transformations call this in
        validation mode to catch primitive sequences that would tear the
        structured IR.
        """
        stack: list[Opcode] = []
        for quad in self._quads:
            op = quad.opcode
            if op in (Opcode.DO, Opcode.DOALL, Opcode.IF):
                stack.append(op)
            elif op is Opcode.ELSE:
                if not stack or stack[-1] is not Opcode.IF:
                    raise IRError(f"ELSE outside IF at qid {quad.qid}")
            elif op is Opcode.ENDIF:
                if not stack or stack[-1] is not Opcode.IF:
                    raise IRError(f"unmatched ENDIF at qid {quad.qid}")
                stack.pop()
            elif op is Opcode.ENDDO:
                if not stack or stack[-1] not in (Opcode.DO, Opcode.DOALL):
                    raise IRError(f"unmatched ENDDO at qid {quad.qid}")
                stack.pop()
        if stack:
            raise IRError(f"unterminated {stack[-1].name} region")

    def __str__(self) -> str:
        from repro.ir.printer import format_program

        return format_program(self)
