"""Quadruple statements for the intermediate representation.

The IR is the paper's "high level intermediate representation that
retains the loop structures from the source program": a linear list of
quads where ``DO``/``ENDDO`` and ``IF``/``ELSE``/``ENDIF`` markers keep
the structured control flow explicit, and all computation is expressed
as three-address statements ``result := a opc b``.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional

from repro.ir.types import (
    ArrayRef,
    Const,
    Operand,
    Var,
    used_scalars,
)


class Opcode(enum.Enum):
    """Operation codes for quads.

    The arithmetic group implements ``result := a op b`` (or ``op a``
    for the unary intrinsics); the structural group delimits loops and
    conditionals; the I/O group models FORTRAN ``READ``/``WRITE``.
    """

    # straight copies
    ASSIGN = "assign"
    # binary arithmetic
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "mod"
    POW = "**"
    # unary intrinsics (operand in ``a``)
    NEG = "neg"
    ABS = "abs"
    SQRT = "sqrt"
    SIN = "sin"
    COS = "cos"
    EXP = "exp"
    LOG = "log"
    # structured control flow
    DO = "do"
    DOALL = "doall"
    ENDDO = "enddo"
    IF = "if"
    ELSE = "else"
    ENDIF = "endif"
    # input/output
    READ = "read"
    WRITE = "write"
    # no-op placeholder (used transiently by some transformations)
    NOP = "nop"


#: Binary arithmetic opcodes: ``result := a op b``.
BINARY_OPS = frozenset(
    {Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.MOD, Opcode.POW}
)

#: Unary opcodes: ``result := op(a)``.
UNARY_OPS = frozenset(
    {Opcode.NEG, Opcode.ABS, Opcode.SQRT, Opcode.SIN, Opcode.COS,
     Opcode.EXP, Opcode.LOG}
)

#: Opcodes that compute a value into ``result``.
COMPUTE_OPS = BINARY_OPS | UNARY_OPS | {Opcode.ASSIGN}

#: Opcodes that open a loop.
LOOP_HEADS = frozenset({Opcode.DO, Opcode.DOALL})

#: Structural markers that never compute.
STRUCTURAL_OPS = frozenset(
    {Opcode.DO, Opcode.DOALL, Opcode.ENDDO, Opcode.IF, Opcode.ELSE,
     Opcode.ENDIF}
)

#: Comparison operators usable in ``IF`` quads.
RELOPS = ("<", "<=", ">", ">=", "==", "!=")

#: Truncated length of one quad's content hash — the per-quad leaf of
#: the program fingerprint.  16 bytes keep per-state collision odds
#: negligible while halving the digest bytes the whole-program hash
#: streams over.
CONTENT_HASH_BYTES = 16


@dataclass
class Quad:
    """One intermediate-code statement.

    Field usage by opcode:

    ``ASSIGN``
        ``result := a`` (``b`` unused).
    binary arithmetic
        ``result := a op b``.
    unary intrinsics
        ``result := op(a)``.
    ``DO`` / ``DOALL``
        ``result`` is the loop control variable (a :class:`Var`),
        ``a`` the initial value, ``b`` the final value and ``step``
        the increment; ``DOALL`` marks a parallelized loop.
    ``IF``
        ``a relop b`` guards the THEN region.
    ``READ`` / ``WRITE``
        ``a`` is the operand read into / written out.
    structural markers
        no operands.

    ``qid`` is a program-unique, stable identity: transformations move
    and delete quads but never renumber them, so dependence edges and
    GOSpeL variable bindings remain valid names for statements.
    """

    opcode: Opcode
    result: Optional[Operand] = None
    a: Optional[Operand] = None
    b: Optional[Operand] = None
    relop: Optional[str] = None
    step: Optional[Operand] = None
    qid: int = -1
    source_line: Optional[int] = None

    #: cached content hash — never compared, shown, or carried through
    #: :func:`dataclasses.replace` (copies recompute); invalidated
    #: through the :meth:`Program.touch`/``replace`` pre-image flow
    _chash: Optional[bytes] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.opcode is Opcode.IF and self.relop not in RELOPS:
            raise ValueError(f"IF quad needs a relop, got {self.relop!r}")
        if self.opcode in LOOP_HEADS:
            if not isinstance(self.result, Var):
                raise ValueError("loop head needs a Var control variable")
            if self.step is None:
                self.step = Const(1)

    # ------------------------------------------------------------------
    # classification helpers
    # ------------------------------------------------------------------
    def is_assignment(self) -> bool:
        """True for value-computing quads (GOSpeL type ``Stmt``)."""
        return self.opcode in COMPUTE_OPS

    def is_loop_head(self) -> bool:
        """True for ``DO`` and ``DOALL`` quads."""
        return self.opcode in LOOP_HEADS

    def is_structural(self) -> bool:
        """True for loop and conditional delimiters."""
        return self.opcode in STRUCTURAL_OPS

    # ------------------------------------------------------------------
    # definitions and uses
    # ------------------------------------------------------------------
    def defined_operand(self) -> Optional[Operand]:
        """The operand written by this quad, if any.

        Loop heads define their control variable; ``READ`` defines the
        operand it reads into.
        """
        if self.opcode in COMPUTE_OPS:
            return self.result
        if self.opcode in LOOP_HEADS:
            return self.result
        if self.opcode is Opcode.READ:
            return self.a
        return None

    def defined_scalar(self) -> Optional[str]:
        """Name of the scalar variable written, or None."""
        target = self.defined_operand()
        if isinstance(target, Var):
            return target.name
        return None

    def defined_array(self) -> Optional[ArrayRef]:
        """The array element written, or None."""
        target = self.defined_operand()
        if isinstance(target, ArrayRef):
            return target
        return None

    def use_positions(self) -> Iterator[tuple[str, Operand]]:
        """Yield ``(position, operand)`` for every operand *read*.

        Positions are ``"a"`` and ``"b"`` for the source operands and
        ``"result"`` when the result is an array reference (whose
        subscripts are read).  GOSpeL's ``(Sj, pos)`` dependence results
        report these position names.
        """
        if self.opcode in COMPUTE_OPS or self.opcode is Opcode.IF:
            if self.a is not None:
                yield "a", self.a
            if self.b is not None:
                yield "b", self.b
            if isinstance(self.result, ArrayRef):
                yield "result", self.result
        elif self.opcode in LOOP_HEADS:
            if self.a is not None:
                yield "a", self.a
            if self.b is not None:
                yield "b", self.b
            if self.step is not None:
                yield "step", self.step
        elif self.opcode is Opcode.WRITE:
            if self.a is not None:
                yield "a", self.a
        elif self.opcode is Opcode.READ:
            if isinstance(self.a, ArrayRef):
                yield "a", self.a

    def operand_at(self, position: str) -> Optional[Operand]:
        """The operand at a named position (``result``/``a``/``b``/``step``)."""
        if position == "result":
            return self.result
        if position == "a":
            return self.a
        if position == "b":
            return self.b
        if position == "step":
            return self.step
        raise KeyError(f"unknown operand position {position!r}")

    def set_operand(self, position: str, operand: Optional[Operand]) -> None:
        """Destructively replace the operand at a named position."""
        if position == "result":
            self.result = operand
        elif position == "a":
            self.a = operand
        elif position == "b":
            self.b = operand
        elif position == "step":
            self.step = operand
        else:
            raise KeyError(f"unknown operand position {position!r}")

    def used_scalar_names(self) -> frozenset[str]:
        """All scalar variable names read by this quad.

        Includes variables appearing in array subscripts (a use of the
        subscript variable) but not array names themselves.
        """
        names: set[str] = set()
        for _pos, operand in self.use_positions():
            names.update(used_scalars(operand))
        return frozenset(names)

    def used_array_refs(self) -> list[tuple[str, ArrayRef]]:
        """All array element reads, with their operand positions.

        The ``result`` position is excluded: an :class:`ArrayRef` in the
        result position is a *write* of the element (its subscript
        variables are reported by :meth:`used_scalar_names`).
        """
        refs = []
        for pos, operand in self.use_positions():
            if pos != "result" and isinstance(operand, ArrayRef):
                refs.append((pos, operand))
        return refs

    # ------------------------------------------------------------------
    # content hashing
    # ------------------------------------------------------------------
    def content_hash(self) -> bytes:
        """This quad's 16-byte rendering hash, cached on the quad.

        Two quads have equal content hashes exactly when they render to
        the same text (qids and source lines do not participate) — the
        per-quad leaf of :meth:`repro.ir.program.Program.fingerprint`.
        The cache is sound only under the mutation contract: in-place
        field edits must be reported through ``Program.touch`` (or
        ``replace``), which drops the stale entry.
        """
        cached = self._chash
        if cached is None:
            cached = hashlib.sha256(
                str(self).encode()
            ).digest()[:CONTENT_HASH_BYTES]
            self._chash = cached
        return cached

    def refresh_content_hash(self) -> bytes:
        """Recompute the content hash, ignoring any cached value."""
        self._chash = None
        return self.content_hash()

    def drop_content_hash(self) -> None:
        """Invalidate the cached content hash (pre-image flow)."""
        self._chash = None

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def copy(self) -> "Quad":
        """A field-for-field copy with *no* assigned qid."""
        return replace(self, qid=-1)

    def __str__(self) -> str:
        op = self.opcode
        if op is Opcode.ASSIGN:
            return f"{self.result} := {self.a}"
        if op in BINARY_OPS:
            return f"{self.result} := {self.a} {op.value} {self.b}"
        if op in UNARY_OPS:
            return f"{self.result} := {op.value}({self.a})"
        if op in LOOP_HEADS:
            head = "doall" if op is Opcode.DOALL else "do"
            text = f"{head} {self.result} = {self.a}, {self.b}"
            if self.step != Const(1):
                text += f", {self.step}"
            return text
        if op is Opcode.ENDDO:
            return "enddo"
        if op is Opcode.IF:
            return f"if {self.a} {self.relop} {self.b}"
        if op is Opcode.ELSE:
            return "else"
        if op is Opcode.ENDIF:
            return "endif"
        if op is Opcode.READ:
            return f"read {self.a}"
        if op is Opcode.WRITE:
            return f"write {self.a}"
        return "nop"


def assign(result: Operand, source: Operand) -> Quad:
    """Convenience constructor for ``result := source``."""
    return Quad(Opcode.ASSIGN, result=result, a=source)


def binop(result: Operand, left: Operand, opcode: Opcode, right: Operand) -> Quad:
    """Convenience constructor for ``result := left op right``."""
    if opcode not in BINARY_OPS:
        raise ValueError(f"{opcode} is not a binary opcode")
    return Quad(opcode, result=result, a=left, b=right)
