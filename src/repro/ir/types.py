"""Operand types for the quad intermediate representation.

The paper assumes assignment statements of the general form::

    opr_1 := opr_2 opc opr_3

Operands are scalar variables, constants, or array references.  Array
subscripts are kept in *affine* form when possible (a linear function of
integer variables plus a constant) because the dependence tests of
:mod:`repro.analysis.subscript` reason about affine subscripts; anything
more complicated is represented by an opaque scalar operand and treated
conservatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


Number = Union[int, float]


@dataclass(frozen=True)
class Affine:
    """An affine integer expression ``sum(coeff * var) + const``.

    ``terms`` is a sorted tuple of ``(variable name, coefficient)``
    pairs with zero-coefficient entries removed, so two equal affine
    expressions always compare (and hash) equal.
    """

    terms: tuple[tuple[str, int], ...] = ()
    const: int = 0

    @staticmethod
    def of(const: int = 0, **coeffs: int) -> "Affine":
        """Build an affine expression from keyword coefficients.

        >>> Affine.of(3, i=2)
        Affine(terms=(('i', 2),), const=3)
        """
        terms = tuple(sorted((v, c) for v, c in coeffs.items() if c != 0))
        return Affine(terms, const)

    @staticmethod
    def var(name: str) -> "Affine":
        """The affine expression consisting of a single variable."""
        return Affine(((name, 1),), 0)

    @staticmethod
    def constant(value: int) -> "Affine":
        """The affine expression consisting of a single constant."""
        return Affine((), value)

    def coefficient(self, name: str) -> int:
        """Coefficient of ``name`` (0 when the variable is absent)."""
        for var, coeff in self.terms:
            if var == name:
                return coeff
        return 0

    @property
    def variables(self) -> tuple[str, ...]:
        """Names of the variables appearing with nonzero coefficient."""
        return tuple(var for var, _ in self.terms)

    def is_constant(self) -> bool:
        """True when the expression has no variable terms."""
        return not self.terms

    def __add__(self, other: "Affine | int") -> "Affine":
        if isinstance(other, int):
            other = Affine.constant(other)
        coeffs: dict[str, int] = dict(self.terms)
        for var, coeff in other.terms:
            coeffs[var] = coeffs.get(var, 0) + coeff
        terms = tuple(sorted((v, c) for v, c in coeffs.items() if c != 0))
        return Affine(terms, self.const + other.const)

    def __neg__(self) -> "Affine":
        return Affine(tuple((v, -c) for v, c in self.terms), -self.const)

    def __sub__(self, other: "Affine | int") -> "Affine":
        if isinstance(other, int):
            other = Affine.constant(other)
        return self + (-other)

    def scale(self, factor: int) -> "Affine":
        """Multiply the whole expression by an integer factor."""
        if factor == 0:
            return Affine.constant(0)
        terms = tuple((v, c * factor) for v, c in self.terms)
        return Affine(terms, self.const * factor)

    def substitute(self, name: str, replacement: "Affine") -> "Affine":
        """Replace ``name`` with ``replacement`` throughout."""
        coeff = self.coefficient(name)
        if coeff == 0:
            return self
        without = Affine(
            tuple((v, c) for v, c in self.terms if v != name), self.const
        )
        return without + replacement.scale(coeff)

    def __str__(self) -> str:
        parts: list[str] = []
        for var, coeff in self.terms:
            if coeff == 1:
                parts.append(var)
            elif coeff == -1:
                parts.append(f"-{var}")
            else:
                parts.append(f"{coeff}*{var}")
        if self.const or not parts:
            parts.append(str(self.const))
        text = parts[0]
        for part in parts[1:]:
            text += f" - {part[1:]}" if part.startswith("-") else f" + {part}"
        return text


class Operand:
    """Base class for all quad operands (marker class)."""

    __slots__ = ()


@dataclass(frozen=True)
class Var(Operand):
    """A scalar variable operand."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Operand):
    """A literal constant operand (integer or floating point)."""

    value: Number

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class ArrayRef(Operand):
    """An array element reference ``name(sub_1, ..., sub_k)``.

    Each subscript is an :class:`Affine` expression when the frontend
    could prove it affine, or a :class:`Var` holding a precomputed
    opaque subscript value otherwise.
    """

    name: str
    subscripts: tuple[Union[Affine, Var], ...]

    def __str__(self) -> str:
        inner = ", ".join(str(sub) for sub in self.subscripts)
        return f"{self.name}({inner})"


def is_const(operand: object) -> bool:
    """True when ``operand`` is a literal constant."""
    return isinstance(operand, Const)


def is_var(operand: object) -> bool:
    """True when ``operand`` is a scalar variable."""
    return isinstance(operand, Var)


def is_array(operand: object) -> bool:
    """True when ``operand`` is an array element reference."""
    return isinstance(operand, ArrayRef)


def operand_kind(operand: object) -> str:
    """The GOSpeL ``type()`` of an operand: const, var, array or none.

    GOSpeL code patterns write conditions such as
    ``type(Si.opr_2) == const``; this function implements that
    classification.
    """
    if operand is None:
        return "none"
    if isinstance(operand, Const):
        return "const"
    if isinstance(operand, Var):
        return "var"
    if isinstance(operand, ArrayRef):
        return "array"
    raise TypeError(f"not an operand: {operand!r}")


def used_scalars(operand: object) -> frozenset[str]:
    """Scalar variable names read when evaluating ``operand``.

    For an array reference this is the set of variables appearing in
    its subscripts (the array itself is not a scalar use).
    """
    if operand is None or isinstance(operand, Const):
        return frozenset()
    if isinstance(operand, Var):
        return frozenset((operand.name,))
    if isinstance(operand, ArrayRef):
        names: set[str] = set()
        for sub in operand.subscripts:
            if isinstance(sub, Var):
                names.add(sub.name)
            else:
                names.update(sub.variables)
        return frozenset(names)
    raise TypeError(f"not an operand: {operand!r}")
