"""Whole-program well-formedness validation.

Beyond the marker-nesting check of :meth:`Program.check_structure`,
:func:`validate_program` enforces the IR's semantic rules — the
invariants every frontend-produced program satisfies and every
transformation must preserve.  Property tests run it after each
optimization; it is also handy when building IR by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.program import Program
from repro.ir.quad import (
    BINARY_OPS,
    COMPUTE_OPS,
    LOOP_HEADS,
    Opcode,
    Quad,
    RELOPS,
    UNARY_OPS,
)
from repro.ir.types import ArrayRef, Const, Operand, Var


@dataclass
class ValidationReport:
    """Collected violations (empty means the program is well formed)."""

    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def add(self, quad: Quad, message: str) -> None:
        self.problems.append(f"S{quad.qid}: {message}")

    def __str__(self) -> str:
        if self.ok:
            return "program is well formed"
        return "\n".join(self.problems)


class ValidationError(Exception):
    """Raised by :func:`validate_program` in strict mode."""


def validate_program(program: Program, strict: bool = True) -> ValidationReport:
    """Check structural and semantic well-formedness.

    Rules:

    * region markers nest (delegates to ``check_structure``);
    * computing quads have the operands their opcode requires;
    * ``IF`` quads carry a valid relop and two operands;
    * loop heads have a ``Var`` control variable, bounds and a step;
    * ``READ`` targets are assignable (variable or element);
    * no statement assigns an enclosing loop's control variable
      (FORTRAN DO semantics — the analyses rely on it);
    * array references have at least one subscript.

    With ``strict`` (default) a failing program raises
    :class:`ValidationError`; otherwise the report is returned for
    inspection.
    """
    report = ValidationReport()
    try:
        program.check_structure()
    except Exception as error:  # IRError
        report.problems.append(str(error))
        if strict:
            raise ValidationError(str(report)) from None
        return report

    active_lcvs: list[str] = []
    for quad in program:
        op = quad.opcode
        if op in LOOP_HEADS:
            _check_loop_head(quad, report)
            if isinstance(quad.result, Var):
                if quad.result.name in active_lcvs:
                    report.add(
                        quad,
                        f"control variable {quad.result.name!r} already "
                        "controls an enclosing loop",
                    )
                active_lcvs.append(quad.result.name)
            else:
                active_lcvs.append("?")
        elif op is Opcode.ENDDO:
            if active_lcvs:
                active_lcvs.pop()
        elif op is Opcode.IF:
            _check_if(quad, report)
        elif op in COMPUTE_OPS:
            _check_compute(quad, report)
            target = quad.defined_scalar()
            if target is not None and target in active_lcvs:
                report.add(
                    quad,
                    f"assigns the active loop control variable {target!r}",
                )
        elif op is Opcode.READ:
            if not isinstance(quad.a, (Var, ArrayRef)):
                report.add(quad, "READ target must be a variable or element")
            target = quad.defined_scalar()
            if target is not None and target in active_lcvs:
                report.add(
                    quad,
                    f"reads into the active loop control variable {target!r}",
                )
        elif op is Opcode.WRITE:
            if quad.a is None:
                report.add(quad, "WRITE needs an operand")
        _check_array_refs(quad, report)

    if strict and not report.ok:
        raise ValidationError(str(report))
    return report


def _check_loop_head(quad: Quad, report: ValidationReport) -> None:
    if not isinstance(quad.result, Var):
        report.add(quad, "loop head needs a Var control variable")
    for label, operand in (("init", quad.a), ("final", quad.b),
                           ("step", quad.step)):
        if operand is None:
            report.add(quad, f"loop head missing {label}")
    if isinstance(quad.step, Const) and quad.step.value == 0:
        report.add(quad, "loop step must be nonzero")


def _check_if(quad: Quad, report: ValidationReport) -> None:
    if quad.relop not in RELOPS:
        report.add(quad, f"IF carries invalid relop {quad.relop!r}")
    if quad.a is None or quad.b is None:
        report.add(quad, "IF needs two comparison operands")


def _check_compute(quad: Quad, report: ValidationReport) -> None:
    op = quad.opcode
    if quad.result is None or not isinstance(quad.result, (Var, ArrayRef)):
        report.add(quad, "computation needs an assignable result")
    if quad.a is None:
        report.add(quad, "computation missing its first operand")
    if op in BINARY_OPS and quad.b is None:
        report.add(quad, f"{op.value} needs a second operand")
    if op is Opcode.ASSIGN and quad.b is not None:
        report.add(quad, "assign must not have a second operand")
    if op in UNARY_OPS and quad.b is not None:
        report.add(quad, f"{op.value} must not have a second operand")


def _check_array_refs(quad: Quad, report: ValidationReport) -> None:
    operands: list[Operand] = []
    for attr in ("result", "a", "b", "step"):
        operand = getattr(quad, attr if attr != "step" else "step", None)
        if attr == "result":
            operand = quad.result
        if operand is not None:
            operands.append(operand)
    for operand in operands:
        if isinstance(operand, ArrayRef) and not operand.subscripts:
            report.add(quad, f"array reference {operand.name} lacks "
                       "subscripts")
