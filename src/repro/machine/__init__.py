"""Target-machine cost models and execution-time estimation."""

from repro.machine.estimate import TimeEstimate, estimate_benefit, estimate_time
from repro.machine.models import (
    ALL_MODELS,
    DEFAULT_CYCLES,
    MULTIPROCESSOR,
    MachineModel,
    SCALAR,
    VECTOR,
)

__all__ = [
    "ALL_MODELS",
    "DEFAULT_CYCLES",
    "MULTIPROCESSOR",
    "MachineModel",
    "SCALAR",
    "TimeEstimate",
    "VECTOR",
    "estimate_benefit",
    "estimate_time",
]
