"""Static execution-time estimation over the structured IR.

Walks the program structure once, multiplying statement costs by
(estimated) trip counts; ``DOALL`` regions divide by the machine's
parallelism.  IF regions charge the more expensive branch (worst case,
deterministic).  This mirrors how the paper *estimates* (rather than
runs) the benefit of optimizations under different architectures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir.loops import trip_count
from repro.ir.program import Program
from repro.ir.quad import LOOP_HEADS, Opcode
from repro.machine.models import MachineModel, SCALAR


@dataclass
class TimeEstimate:
    """Estimated cycles plus a breakdown for reports."""

    cycles: float
    sequential_cycles: float  # same program with DOALL treated as DO

    @property
    def parallel_speedup(self) -> float:
        if self.cycles == 0:
            return 1.0
        return self.sequential_cycles / self.cycles


def estimate_time(
    program: Program, model: MachineModel = SCALAR
) -> TimeEstimate:
    """Estimate execution time of a program under a machine model."""
    parallel = _walk(program, model, 0, len(program), honour_doall=True)
    sequential = _walk(program, model, 0, len(program), honour_doall=False)
    return TimeEstimate(cycles=parallel, sequential_cycles=sequential)


def estimate_benefit(
    before: Program, after: Program, model: MachineModel = SCALAR
) -> float:
    """Estimated cycles saved by a transformation (positive = faster)."""
    return (
        estimate_time(before, model).cycles
        - estimate_time(after, model).cycles
    )


def _walk(
    program: Program,
    model: MachineModel,
    start: int,
    stop: int,
    honour_doall: bool,
) -> float:
    total = 0.0
    position = start
    while position < stop:
        quad = program[position]
        op = quad.opcode
        if op in LOOP_HEADS:
            end_position = _matching_enddo(program, position)
            trip = trip_count(quad, default=model.default_trip) or 0
            body = _walk(
                program, model, position + 1, end_position, honour_doall
            )
            control = model.cost_of(op) * trip
            if op is Opcode.DOALL and honour_doall:
                factor = model.doall_factor(trip)
                total += (
                    model.doall_startup
                    + (body * trip + control) / factor
                )
            else:
                total += body * trip + control
            position = end_position + 1
        elif op is Opcode.IF:
            else_position, endif_position = _matching_else_endif(
                program, position
            )
            then_stop = (
                else_position if else_position is not None else endif_position
            )
            then_cost = _walk(
                program, model, position + 1, then_stop, honour_doall
            )
            else_cost = 0.0
            if else_position is not None:
                else_cost = _walk(
                    program, model, else_position + 1, endif_position,
                    honour_doall,
                )
            total += model.cost_of(op) + max(then_cost, else_cost)
            position = endif_position + 1
        else:
            total += model.cost_of(op)
            position += 1
    return total


def restrict_parallel(program: Program, policy: str) -> Program:
    """A copy with DOALL kept only at the chosen nesting extreme.

    Real targets exploit one level of a parallel nest: a multiprocessor
    runs the *outermost* DOALL (one fork/join), a vector unit the
    *innermost* (pipelined elements).  ``policy`` is ``"outermost"`` or
    ``"innermost"``; other DOALLs demote to sequential DO.
    """
    if policy not in ("outermost", "innermost"):
        raise ValueError(f"unknown parallel policy {policy!r}")
    copy = program.clone()
    stack: list[tuple[int, bool]] = []  # (position, is_doall)
    doall_depth = 0
    innermost_doall: list[int] = []
    for position, quad in enumerate(copy):
        if quad.opcode in LOOP_HEADS:
            is_doall = quad.opcode is Opcode.DOALL
            if is_doall:
                if policy == "outermost" and doall_depth > 0:
                    quad.opcode = Opcode.DO
                    is_doall = False
                else:
                    doall_depth += 1
                    if policy == "innermost":
                        innermost_doall.append(position)
            stack.append((position, is_doall))
        elif quad.opcode is Opcode.ENDDO:
            _position, was_doall = stack.pop()
            if was_doall:
                doall_depth -= 1
    if policy == "innermost":
        # demote every DOALL that still contains another DOALL
        for outer in innermost_doall:
            end = _matching_enddo(copy, outer)
            for inner in innermost_doall:
                if inner != outer and outer < inner < end:
                    copy[outer].opcode = Opcode.DO
                    break
    copy.touch()
    return copy


def _matching_enddo(program: Program, head_position: int) -> int:
    depth = 0
    for position in range(head_position, len(program)):
        op = program[position].opcode
        if op in LOOP_HEADS:
            depth += 1
        elif op is Opcode.ENDDO:
            depth -= 1
            if depth == 0:
                return position
    raise ValueError("unterminated loop")


def _matching_else_endif(
    program: Program, if_position: int
) -> tuple[Optional[int], int]:
    depth = 0
    else_position: Optional[int] = None
    for position in range(if_position, len(program)):
        op = program[position].opcode
        if op is Opcode.IF:
            depth += 1
        elif op is Opcode.ELSE and depth == 1:
            else_position = position
        elif op is Opcode.ENDIF:
            depth -= 1
            if depth == 0:
                return else_position, position
    raise ValueError("unterminated IF")
