"""Target-machine cost models for benefit estimation.

"The expected benefit of applying an optimization was computed by
estimating the impact the optimization has on execution time, taking
into account code that was parallelized and code that was eliminated.
Different architectural characteristics were considered, including
vectorization and multi-processing."

Three parametric models cover those characteristics: a scalar
uniprocessor, a vector unit (DOALL bodies complete in ``ceil(trip /
width)`` chimes), and a shared-memory multiprocessor (DOALL iterations
spread over P processors with a fork/join overhead).  Cycle weights are
deliberately round, late-1980s-flavoured numbers; the experiments only
rely on their *relative* magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.ir.quad import Opcode

#: Baseline per-opcode cycle weights (scalar execution of one quad).
DEFAULT_CYCLES: dict[Opcode, float] = {
    Opcode.ASSIGN: 1.0,
    Opcode.ADD: 1.0,
    Opcode.SUB: 1.0,
    Opcode.MUL: 3.0,
    Opcode.DIV: 8.0,
    Opcode.MOD: 8.0,
    Opcode.POW: 20.0,
    Opcode.NEG: 1.0,
    Opcode.ABS: 1.0,
    Opcode.SQRT: 15.0,
    Opcode.SIN: 25.0,
    Opcode.COS: 25.0,
    Opcode.EXP: 25.0,
    Opcode.LOG: 25.0,
    Opcode.DO: 2.0,  # per-iteration loop control (increment + test)
    Opcode.DOALL: 2.0,
    Opcode.ENDDO: 0.0,
    Opcode.IF: 2.0,
    Opcode.ELSE: 1.0,
    Opcode.ENDIF: 0.0,
    Opcode.READ: 10.0,
    Opcode.WRITE: 10.0,
    Opcode.NOP: 0.0,
}


@dataclass(frozen=True)
class MachineModel:
    """One target machine for benefit estimation."""

    name: str
    cycles: Mapping[Opcode, float] = field(default_factory=lambda: DEFAULT_CYCLES)
    #: vector width (1 = no vector unit)
    vector_width: int = 1
    #: processor count for DOALL loops (1 = uniprocessor)
    processors: int = 1
    #: one-time cost of starting a parallel/vector loop
    doall_startup: float = 0.0
    #: trip count assumed for loops with symbolic bounds
    default_trip: int = 10

    def cost_of(self, opcode: Opcode) -> float:
        return self.cycles.get(opcode, 1.0)

    def doall_factor(self, trip: int) -> float:
        """Per-iteration speedup divisor of a DOALL loop."""
        parallelism = max(self.vector_width, self.processors)
        return float(min(parallelism, max(trip, 1)))

    def __str__(self) -> str:
        return self.name


#: A scalar uniprocessor.
SCALAR = MachineModel(name="scalar")

#: A vector machine: 64-element pipes, cheap startup.
VECTOR = MachineModel(
    name="vector", vector_width=64, doall_startup=12.0
)

#: An 8-processor shared-memory machine with fork/join cost.
MULTIPROCESSOR = MachineModel(
    name="multiprocessor", processors=8, doall_startup=100.0
)

#: All models the cost/benefit experiment sweeps.
ALL_MODELS = (SCALAR, VECTOR, MULTIPROCESSOR)
