"""Optimization specifications and hand-coded baselines."""

from repro.opts.catalog import build_optimizer, standard_optimizers
from repro.opts.extended import EXTENDED_SPECS
from repro.opts.specs import (
    PAPER_TEN,
    STANDARD_SPECS,
    VARIANT_SPECS,
)

__all__ = [
    "EXTENDED_SPECS",
    "PAPER_TEN",
    "STANDARD_SPECS",
    "VARIANT_SPECS",
    "build_optimizer",
    "standard_optimizers",
]
