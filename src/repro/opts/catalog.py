"""Building the standard optimizer set from the specification catalog."""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

from repro.genesis.generator import GeneratedOptimizer, generate_optimizer
from repro.genesis.strategy import StrategyPolicy
from repro.opts.extended import EXTENDED_SPECS
from repro.opts.inferred import INFERRED_SPECS
from repro.opts.specs import STANDARD_SPECS, VARIANT_SPECS


def build_optimizer(
    name: str,
    policy: StrategyPolicy = StrategyPolicy.HEURISTIC,
) -> GeneratedOptimizer:
    """Generate one optimizer from the standard catalog by name."""
    source = (
        STANDARD_SPECS.get(name)
        or EXTENDED_SPECS.get(name)
        or INFERRED_SPECS.get(name)
        or VARIANT_SPECS.get(name)
    )
    if source is None:
        raise KeyError(
            f"unknown optimization {name!r}; catalog has "
            f"{sorted(STANDARD_SPECS) + sorted(EXTENDED_SPECS) + sorted(INFERRED_SPECS) + sorted(VARIANT_SPECS)}"
        )
    return generate_optimizer(source, name=name, policy=policy)


@lru_cache(maxsize=None)
def _cached(name: str, policy: StrategyPolicy) -> GeneratedOptimizer:
    return build_optimizer(name, policy)


def standard_optimizers(
    names: Optional[tuple[str, ...]] = None,
    policy: StrategyPolicy = StrategyPolicy.HEURISTIC,
) -> dict[str, GeneratedOptimizer]:
    """Generate (and cache) the standard optimizers.

    Generated optimizers are stateless between runs — all per-run state
    lives in the :class:`~repro.genesis.library.MatchContext` — so one
    generated instance is safely shared across programs and sessions.
    """
    selected = names if names is not None else tuple(sorted(STANDARD_SPECS))
    return {name: _cached(name, policy) for name in selected}
