"""Extended optimization catalog beyond the paper's evaluated ten.

"Currently, we have used GOSpeL to specify approximately twenty
optimizations found in the literature and have been successful in
specifying all optimizations attempted.  ...  New optimizations can be
created or existing optimizations tailored to the system and easily
incorporated into an optimizer."

These six take the specification count to the paper's "approximately
twenty" (eleven standard + six here + three variants) and exercise
corners of the language the standard set does not: textual ordering
(``pos``), XOR-style arithmetic swaps of loop bounds, block copies to
*before* a loop, and the loop-distribution action sequence that passes
through temporarily unbalanced region markers.

* CSE — common subexpression elimination (scalar operands);
* STR — strength reduction: ``x := y ** 2`` becomes ``x := y * y``;
* ALG — algebraic simplification: ``*1 +0 -0 /1 **1`` become copies;
* RVS — loop reversal (legal exactly when PAR would be);
* PEL — loop peeling: the first iteration moves in front of the loop;
* FIS — loop distribution (fission) at a chosen split statement: the
  inverse of FUS, user-directed like the paper's parallelizing
  transformations.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# Common subexpression elimination
# ----------------------------------------------------------------------
#: Conservative by design: the reused computation must be unconditional
#: (executed whenever the later one is), both must target scalars, the
#: operands must be scalar or constant (array elements are may-aliased),
#: and neither the operands nor the first result may change in between.
CSE = """
TYPE
  Stmt: Si, Sj, Sk, Sl, Sc, Sc2;
PRECOND
  Code_Pattern
    /* two textually ordered computations of the same expression */
    any Si, Sj: class(Si) == binop AND (Si != Sj) AND
                Si.opc == Sj.opc AND
                Si.opr_2 == Sj.opr_2 AND Si.opr_3 == Sj.opr_3 AND
                type(Si.opr_1) == var AND type(Sj.opr_1) == var AND
                type(Si.opr_2) != array AND type(Si.opr_3) != array AND
                Si.opr_1 != Si.opr_2 AND Si.opr_1 != Si.opr_3 AND
                pos(Si) < pos(Sj);
  Depend
    /* the first computation is not conditionally executed ... */
    no Sc: ctrl_dep(Sc, Si) AND class(Sc) == if_stmt;
    /* ... and every loop containing it also contains the second */
    no Sc2: ctrl_dep(Sc2, Si) AND NOT(ctrl_dep(Sc2, Sj));
    /* its operands are unchanged in between */
    no Sk: mem(Sk, path(Si, Sj)), anti_dep(Si, Sk);
    /* and so is its result */
    no Sl: mem(Sl, path(Si, Sj)), out_dep(Si, Sl);
ACTION
  /* reuse the earlier result */
  modify(Sj.opc, assign);
  modify(Sj.opr_2, Si.opr_1);
  modify(Sj.opr_3, none);
"""

# ----------------------------------------------------------------------
# Strength reduction (peephole flavour; the paper notes GENesis "could
# also be used to produce peephole optimizers")
# ----------------------------------------------------------------------
STR = """
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    /* squaring via the expensive power operator */
    any Si: Si.opc == pow AND type(Si.opr_3) == const AND Si.opr_3 == 2;
  Depend
ACTION
  /* x := y ** 2  ==>  x := y * y */
  modify(Si.opc, mul);
  modify(Si.opr_3, Si.opr_2);
"""

# ----------------------------------------------------------------------
# Algebraic simplification of right-identity operations
# ----------------------------------------------------------------------
ALG = """
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: class(Si) == binop AND type(Si.opr_3) == const AND (
            (Si.opc == mul AND Si.opr_3 == 1) OR
            (Si.opc == add AND Si.opr_3 == 0) OR
            (Si.opc == sub AND Si.opr_3 == 0) OR
            (Si.opc == div AND Si.opr_3 == 1) OR
            (Si.opc == pow AND Si.opr_3 == 1));
  Depend
ACTION
  /* the operation is the identity on its left operand */
  modify(Si.opc, assign);
  modify(Si.opr_3, none);
"""

# ----------------------------------------------------------------------
# Loop reversal
# ----------------------------------------------------------------------
#: Running the iterations backwards is legal exactly when running them
#: in parallel would be (no loop-carried dependence).  The bounds swap
#: is a three-step arithmetic exchange — the action language has no
#: temporaries, but constant bounds fold.
RVS = """
TYPE
  Loop: L1;
  Stmt: Sm, Sn, Sio, Sx;
PRECOND
  Code_Pattern
    any L1: L1.head.opc == do AND type(L1.init) == const AND
            type(L1.final) == const AND L1.step == 1;
  Depend
    /* the control variable's exit value changes */
    no Sx: flow_dep(L1.head, Sx) AND NOT(mem(Sx, L1));
    /* reversing reorders I/O */
    no Sio: mem(Sio, L1), class(Sio) == io;
    /* no dependence carried by this loop */
    no Sm, Sn: mem(Sm, L1) AND mem(Sn, L1),
       flow_dep(Sm, Sn, (<)) OR anti_dep(Sm, Sn, (<)) OR
       out_dep(Sm, Sn, (<));
ACTION
  /* swap the bounds arithmetically, then run downwards */
  modify(L1.init, L1.init + L1.final);
  modify(L1.final, L1.init - L1.final);
  modify(L1.init, L1.init - L1.final);
  modify(L1.step, 0 - 1);
"""

# ----------------------------------------------------------------------
# Loop peeling
# ----------------------------------------------------------------------
#: Always legal (execution order is unchanged); needs constant bounds so
#: the peeled copy's control-variable uses fold to the initial value and
#: the loop is known to execute at least once.
PEL = """
TYPE
  Loop: L1;
PRECOND
  Code_Pattern
    any L1: type(L1.init) == const AND type(L1.final) == const AND
            type(L1.step) == const AND trip(L1) >= 1;
  Depend
ACTION
  /* the first iteration, verbatim, in front of the loop */
  copy(L1.body, L1.head.prev, B1);
  forall (Su, posu) in uses(L1.lcv, B1) {
    modify(operand(Su, posu), L1.init);
  }
  modify(L1.init, L1.init + L1.step);
"""

# ----------------------------------------------------------------------
# Loop distribution (fission) — user-directed
# ----------------------------------------------------------------------
#: Splits L1 at statement Sp: statements from Sp onwards move into a new
#: loop with an identical header.  Like the paper's parallelizing
#: transformations this is applied at a user-selected point (the driver
#: enumerates every legal (L1, Sp) cut).  Illegal when any dependence
#: runs from the second part back into the first (the distributed
#: second loop runs entirely after the first), or when a scalar flows
#: across the cut within an iteration (it would need expansion).
FIS = """
TYPE
  Loop: L1;
  Stmt: Sp, Sm, Sn, Sq, Sr, Sc;
PRECOND
  Code_Pattern
    /* a non-trivial cut: statements exist on both sides of Sp */
    any L1, Sp: class(Sp) == compute AND pos(Sp) > pos(L1.head) + 1;
  Depend
    /* the split statement heads the second part, directly in L1 */
    any Sp: mem(Sp, L1);
    no Sc: mem(Sc, L1), ctrl_dep(Sc, Sp);
    /* nothing in the second part feeds back into the first */
    no Sm, Sn: mem(Sm, region(Sp.prev, L1.end)) AND mem(Sn, region(L1.head, Sp)),
       flow_dep(Sm, Sn) OR anti_dep(Sm, Sn) OR out_dep(Sm, Sn);
    /* no per-iteration scalar value crosses the cut */
    no Sq, Sr: mem(Sq, region(L1.head, Sp)) AND mem(Sr, region(Sp.prev, L1.end)),
       flow_dep(Sq, Sr, (=)) AND type(Sq.opr_1) == var;
ACTION
  /* clone the header after the loop, then its end marker, then move
     the second part across (the anchor E2.prev re-evaluates, keeping
     statement order) */
  copy(L1.head, L1.end, H2);
  copy(L1.end, H2, E2);
  forall Sx in region(Sp.prev, L1.end) {
    move(Sx, E2.prev);
  }
"""

#: name -> GOSpeL source for the extension catalog.
EXTENDED_SPECS: dict[str, str] = {
    "CSE": CSE,
    "STR": STR,
    "ALG": ALG,
    "RVS": RVS,
    "PEL": PEL,
    "FIS": FIS,
}
