"""Hand-crafted baseline optimizers (experiment E1's comparator)."""

from repro.opts.handcoded.base import HandCodedOptimizer
from repro.opts.handcoded.loop import (
    HandCodedBMP,
    HandCodedCRC,
    HandCodedFUS,
    HandCodedICM,
    HandCodedINX,
    HandCodedLUR,
    HandCodedPAR,
)
from repro.opts.handcoded.scalar import (
    HandCodedCFO,
    HandCodedCPP,
    HandCodedCTP,
    HandCodedDCE,
)

#: All baselines by short name.
HANDCODED: dict[str, type[HandCodedOptimizer]] = {
    "CTP": HandCodedCTP,
    "CPP": HandCodedCPP,
    "DCE": HandCodedDCE,
    "CFO": HandCodedCFO,
    "ICM": HandCodedICM,
    "INX": HandCodedINX,
    "CRC": HandCodedCRC,
    "BMP": HandCodedBMP,
    "PAR": HandCodedPAR,
    "LUR": HandCodedLUR,
    "FUS": HandCodedFUS,
}


def handcoded_optimizer(name: str) -> HandCodedOptimizer:
    """Instantiate one baseline by short name."""
    try:
        return HANDCODED[name]()
    except KeyError:
        raise KeyError(
            f"no hand-coded baseline named {name!r}; have {sorted(HANDCODED)}"
        ) from None


__all__ = [
    "HANDCODED",
    "HandCodedBMP",
    "HandCodedCFO",
    "HandCodedCPP",
    "HandCodedCRC",
    "HandCodedCTP",
    "HandCodedDCE",
    "HandCodedFUS",
    "HandCodedICM",
    "HandCodedINX",
    "HandCodedLUR",
    "HandCodedOptimizer",
    "HandCodedPAR",
    "handcoded_optimizer",
]
