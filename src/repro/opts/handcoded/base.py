"""Base class for the hand-crafted baseline optimizers.

These are the reproduction's stand-ins for the paper's "hand coded
optimizers": classical, independently written implementations of the
same transformations, used by experiment E1 to check that the generated
optimizers "found the same application points and the resulting code
was comparable ... no extraneous statements, and the optimizations were
correctly performed".

They deliberately do *not* go through GOSpeL, the generated matchers or
the primitive-action library; they manipulate the IR directly the way a
textbook pass would.  They do share the IR and the dependence/dataflow
analyses — as a 1991 hand-written optimizer shared its compiler's
analysis phase.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.analysis.cfg import CFG
from repro.analysis.graph import DependenceGraph
from repro.analysis.liveness import Liveness
from repro.analysis.manager import AnalysisManager, manager_for
from repro.analysis.reaching import ReachingDefinitions
from repro.ir.loops import StructureTable
from repro.ir.program import Program


class HandCodedOptimizer(abc.ABC):
    """One classical optimization pass.

    All passes pull their analyses through one shared
    :class:`AnalysisManager` (the "compiler's analysis phase"), so
    repeated ``find_points``/``apply_once`` rounds over an unchanged
    program version hit the cache, and dependence graphs refresh
    incrementally from the program's change log.  Constructing a pass
    with an explicit ``manager`` shares that cache across passes.
    """

    #: the short name matching the generated optimizer (CTP, DCE, ...)
    name: str = "?"

    def __init__(self, manager: Optional[AnalysisManager] = None):
        self._manager = manager

    # ------------------------------------------------------------------
    # shared analysis access
    # ------------------------------------------------------------------
    def analyses(self, program: Program) -> AnalysisManager:
        """The manager serving ``program`` (made/replaced on demand)."""
        self._manager = manager_for(program, self._manager)
        return self._manager

    def dependences(self, program: Program) -> DependenceGraph:
        """The program's dependence graph, incrementally maintained."""
        return self.analyses(program).graph()

    def structure(self, program: Program) -> StructureTable:
        """The loop/conditional structure table (cached per version)."""
        return self.analyses(program).structure()

    def cfg(self, program: Program) -> CFG:
        """The statement CFG (cached per version)."""
        return self.analyses(program).cfg()

    def reaching(self, program: Program) -> ReachingDefinitions:
        """Reaching definitions (cached per version)."""
        return self.analyses(program).reaching()

    def liveness(self, program: Program) -> Liveness:
        """Scalar liveness (cached per version)."""
        return self.analyses(program).liveness()

    @abc.abstractmethod
    def find_points(self, program: Program) -> list[dict[str, object]]:
        """Application points on the current program, without applying.

        Binding dictionaries use the same key names as the GOSpeL
        specification of the same optimization, so point sets are
        directly comparable in experiment E1.
        """

    @abc.abstractmethod
    def apply_once(self, program: Program) -> Optional[dict[str, object]]:
        """Apply at the first application point; None when none exist."""

    def apply_all(self, program: Program, limit: int = 200) -> int:
        """Apply repeatedly until no new points remain (bounded)."""
        count = 0
        seen: set[tuple] = set()
        while count < limit:
            applied = self.apply_once(program)
            if applied is None:
                return count
            signature = tuple(sorted(
                (k, repr(v)) for k, v in applied.items()
            ))
            if signature in seen:
                return count
            seen.add(signature)
            count += 1
        return count
