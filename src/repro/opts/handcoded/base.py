"""Base class for the hand-crafted baseline optimizers.

These are the reproduction's stand-ins for the paper's "hand coded
optimizers": classical, independently written implementations of the
same transformations, used by experiment E1 to check that the generated
optimizers "found the same application points and the resulting code
was comparable ... no extraneous statements, and the optimizations were
correctly performed".

They deliberately do *not* go through GOSpeL, the generated matchers or
the primitive-action library; they manipulate the IR directly the way a
textbook pass would.  They do share the IR and the dependence/dataflow
analyses — as a 1991 hand-written optimizer shared its compiler's
analysis phase.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.ir.program import Program


class HandCodedOptimizer(abc.ABC):
    """One classical optimization pass."""

    #: the short name matching the generated optimizer (CTP, DCE, ...)
    name: str = "?"

    @abc.abstractmethod
    def find_points(self, program: Program) -> list[dict[str, object]]:
        """Application points on the current program, without applying.

        Binding dictionaries use the same key names as the GOSpeL
        specification of the same optimization, so point sets are
        directly comparable in experiment E1.
        """

    @abc.abstractmethod
    def apply_once(self, program: Program) -> Optional[dict[str, object]]:
        """Apply at the first application point; None when none exist."""

    def apply_all(self, program: Program, limit: int = 200) -> int:
        """Apply repeatedly until no new points remain (bounded)."""
        count = 0
        seen: set[tuple] = set()
        while count < limit:
            applied = self.apply_once(program)
            if applied is None:
                return count
            signature = tuple(sorted(
                (k, repr(v)) for k, v in applied.items()
            ))
            if signature in seen:
                return count
            seen.add(signature)
            count += 1
        return count
