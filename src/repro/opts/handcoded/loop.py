"""Hand-coded loop optimizations: ICM, INX, CRC, BMP, PAR, LUR, FUS.

Like a hand-written 1991 loop optimizer these passes consume the
compiler's dependence analysis directly (direction vectors over the
dependence graph) but do their own matching and transformation.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.graph import DepEdge, DependenceGraph
from repro.analysis.subscript import matches_anchored_pattern
from repro.genesis.library import LoopBinding, fused_pair_directions
from repro.ir.loops import Loop, StructureTable, trip_count
from repro.ir.program import Program
from repro.ir.quad import Opcode, Quad
from repro.ir.types import Affine, ArrayRef, Const, Var
from repro.opts.handcoded.base import HandCodedOptimizer


def _binding(structure: StructureTable, loop: Loop) -> LoopBinding:
    return LoopBinding(head=loop.head_qid, end=loop.end_qid)


def _contains_io(program: Program, qids) -> bool:
    return any(
        program.quad(qid).opcode in (Opcode.READ, Opcode.WRITE)
        for qid in qids
    )


def _lcv_read_after_loop(
    graph: DependenceGraph, loop: Loop
) -> bool:
    """Does the control variable flow to a use outside the loop body?"""
    members = set(loop.body_qids)
    for edge in graph.query("flow", src=loop.head_qid):
        if edge.dst not in members:
            return True
    return False


def _body_edges(
    graph: DependenceGraph,
    body: Sequence[int],
    kinds: Sequence[str] = ("flow", "anti", "out"),
) -> list[DepEdge]:
    members = set(body)
    edges = []
    for kind in kinds:
        for edge in graph.query(kind):
            if edge.src in members and edge.dst in members:
                edges.append(edge)
    return edges


class HandCodedPAR(HandCodedOptimizer):
    """Mark loops with no loop-carried dependence as DOALL."""

    name = "PAR"

    def find_points(self, program: Program) -> list[dict[str, object]]:
        graph = self.dependences(program)
        structure = self.structure(program)
        points = []
        for loop in structure.loops_in_order():
            head = program.quad(loop.head_qid)
            if head.opcode is not Opcode.DO:
                continue
            if any(
                program.quad(qid).opcode in (Opcode.READ, Opcode.WRITE)
                for qid in loop.body_qids
            ):
                continue  # the I/O stream orders the iterations
            level = structure.nesting_depth(loop.head_qid)
            carried = any(
                matches_anchored_pattern(edge.vector, ("<",), level)
                for edge in _body_edges(graph, loop.body_qids)
            )
            if not carried:
                points.append({"L1": _binding(structure, loop)})
        return points

    def apply_once(self, program: Program) -> Optional[dict[str, object]]:
        points = self.find_points(program)
        if not points:
            return None
        point = points[0]
        binding: LoopBinding = point["L1"]  # type: ignore[assignment]
        before = program.preimage(binding.head)
        program.quad(binding.head).opcode = Opcode.DOALL
        program.touch(binding.head, before=before)
        return point


class HandCodedINX(HandCodedOptimizer):
    """Interchange tightly nested loop pairs when no dependence has a
    ``(<,>)`` direction at their levels."""

    name = "INX"

    def find_points(self, program: Program) -> list[dict[str, object]]:
        graph = self.dependences(program)
        structure = self.structure(program)
        points = []
        for outer_qid, inner_qid in structure.tight_pairs():
            outer = structure.loop_of(outer_qid)
            inner = structure.loop_of(inner_qid)
            if graph.query("flow", src=outer_qid, dst=inner_qid):
                continue  # inner bounds depend on the outer lcv
            if _contains_io(program, inner.body_qids):
                continue  # interchanging would reorder the I/O streams
            level = structure.nesting_depth(outer_qid)
            blocked = any(
                matches_anchored_pattern(edge.vector, ("<", ">"), level)
                for edge in _body_edges(graph, inner.body_qids)
            )
            if not blocked:
                points.append(
                    {
                        "L1": _binding(structure, outer),
                        "L2": _binding(structure, inner),
                    }
                )
        return points

    def apply_once(self, program: Program) -> Optional[dict[str, object]]:
        points = self.find_points(program)
        if not points:
            return None
        point = points[0]
        outer: LoopBinding = point["L1"]  # type: ignore[assignment]
        inner: LoopBinding = point["L2"]  # type: ignore[assignment]
        program.move_after(outer.head, inner.head)
        last_body = program.prev_qid_of(inner.end)
        assert last_body is not None
        program.move_after(outer.end, last_body)
        return point


class HandCodedCRC(HandCodedOptimizer):
    """Circulate the innermost loop of a perfect triple nest outward."""

    name = "CRC"

    def find_points(self, program: Program) -> list[dict[str, object]]:
        graph = self.dependences(program)
        structure = self.structure(program)
        tight = dict(structure.tight_pairs())
        points = []
        for l1_qid, l2_qid in tight.items():
            l3_qid = tight.get(l2_qid)
            if l3_qid is None:
                continue
            for src_qid, dst_qid in (
                (l1_qid, l2_qid), (l1_qid, l3_qid), (l2_qid, l3_qid)
            ):
                if graph.query("flow", src=src_qid, dst=dst_qid):
                    break
            else:
                inner = structure.loop_of(l3_qid)
                if _contains_io(program, inner.body_qids):
                    continue
                level = structure.nesting_depth(l1_qid)
                blocked = any(
                    matches_anchored_pattern(
                        edge.vector, ("*", "*", ">"), level
                    )
                    for edge in _body_edges(graph, inner.body_qids)
                )
                if not blocked:
                    points.append(
                        {
                            "L1": _binding(structure, structure.loop_of(l1_qid)),
                            "L2": _binding(structure, structure.loop_of(l2_qid)),
                            "L3": _binding(structure, inner),
                        }
                    )
        return points

    def apply_once(self, program: Program) -> Optional[dict[str, object]]:
        points = self.find_points(program)
        if not points:
            return None
        point = points[0]
        l1: LoopBinding = point["L1"]  # type: ignore[assignment]
        l2: LoopBinding = point["L2"]  # type: ignore[assignment]
        l3: LoopBinding = point["L3"]  # type: ignore[assignment]
        program.move_after(l1.head, l3.head)
        program.move_after(l2.head, l1.head)
        program.move_after(l3.end, l1.end)
        return point


class HandCodedBMP(HandCodedOptimizer):
    """Normalize constant lower bounds to 1 (loop bumping)."""

    name = "BMP"

    def find_points(self, program: Program) -> list[dict[str, object]]:
        structure = self.structure(program)
        graph = self.dependences(program)
        points = []
        for loop in structure.loops_in_order():
            head = program.quad(loop.head_qid)
            if (
                isinstance(head.a, Const)
                and head.a.value != 1
                and isinstance(head.b, Const)
                and head.step == Const(1)
                and not _lcv_read_after_loop(graph, loop)
            ):
                points.append({"L1": _binding(structure, loop)})
        return points

    def apply_once(self, program: Program) -> Optional[dict[str, object]]:
        points = self.find_points(program)
        if not points:
            return None
        point = points[0]
        binding: LoopBinding = point["L1"]  # type: ignore[assignment]
        head = program.quad(binding.head)
        assert isinstance(head.a, Const) and isinstance(head.b, Const)
        offset = int(head.a.value) - 1
        lcv = head.result
        assert isinstance(lcv, Var)
        temp = self._fresh(program)
        shift = Quad(
            Opcode.ADD, result=temp, a=lcv, b=Const(offset)
        )
        placed = program.insert_after(binding.head, shift)
        structure = self.structure(program)
        for qid in structure.loop_of(binding.head).body_qids:
            if qid == placed.qid:
                continue
            before = program.preimage(qid)
            _rename_uses(program.quad(qid), lcv.name, temp)
            program.touch(qid, before=before)
        head_before = program.preimage(binding.head)
        head.b = Const(int(head.b.value) - offset)
        head.a = Const(1)
        program.touch(binding.head, before=head_before)
        return point

    @staticmethod
    def _fresh(program: Program) -> Var:
        existing = program.scalar_names()
        index = 0
        while f"h${index}" in existing:
            index += 1
        return Var(f"h${index}")


def _rename_uses(quad: Quad, old: str, new: Var) -> None:
    for pos, operand in list(quad.use_positions()):
        if isinstance(operand, Var) and operand.name == old:
            quad.set_operand(pos, new)
        elif isinstance(operand, ArrayRef):
            subscripts = []
            for sub in operand.subscripts:
                if isinstance(sub, Var) and sub.name == old:
                    subscripts.append(new)
                elif isinstance(sub, Affine) and sub.coefficient(old) != 0:
                    subscripts.append(sub.substitute(old, Affine.var(new.name)))
                else:
                    subscripts.append(sub)
            quad.set_operand(pos, ArrayRef(operand.name, tuple(subscripts)))


class HandCodedLUR(HandCodedOptimizer):
    """Fully unroll constant-bounds loops with small trip counts."""

    name = "LUR"
    max_trip = 16

    def find_points(self, program: Program) -> list[dict[str, object]]:
        structure = self.structure(program)
        graph = self.dependences(program)
        points = []
        for loop in structure.loops_in_order():
            head = program.quad(loop.head_qid)
            trip = trip_count(head)
            if trip is None or not 1 <= trip <= self.max_trip:
                continue
            if _lcv_read_after_loop(graph, loop):
                continue
            points.append({"L1": _binding(structure, loop)})
        return points

    def apply_once(self, program: Program) -> Optional[dict[str, object]]:
        points = self.find_points(program)
        if not points:
            return None
        point = points[0]
        binding: LoopBinding = point["L1"]  # type: ignore[assignment]
        head = program.quad(binding.head)
        assert (
            isinstance(head.a, Const)
            and isinstance(head.b, Const)
            and isinstance(head.step, Const)
        )
        lcv = head.result
        assert isinstance(lcv, Var)
        body_positions = range(
            program.position(binding.head) + 1, program.position(binding.end)
        )
        body_qids = [program[i].qid for i in body_positions]
        anchor = binding.end
        value = int(head.a.value)
        final = int(head.b.value)
        step = int(head.step.value)
        while (step > 0 and value <= final) or (step < 0 and value >= final):
            for qid in body_qids:
                duplicate = program.quad(qid).copy()
                _rename_uses_to_const(duplicate, lcv.name, value)
                placed = program.insert_after(anchor, duplicate)
                anchor = placed.qid
            value += step
        for qid in body_qids:
            program.remove(qid)
        program.remove(binding.head)
        program.remove(binding.end)
        return point


def _rename_uses_to_const(quad: Quad, old: str, value: int) -> None:
    for pos, operand in list(quad.use_positions()):
        if isinstance(operand, Var) and operand.name == old:
            quad.set_operand(pos, Const(value))
        elif isinstance(operand, ArrayRef):
            subscripts = []
            for sub in operand.subscripts:
                if isinstance(sub, Var) and sub.name == old:
                    subscripts.append(Affine.constant(value))
                elif isinstance(sub, Affine) and sub.coefficient(old) != 0:
                    subscripts.append(
                        sub.substitute(old, Affine.constant(value))
                    )
                else:
                    subscripts.append(sub)
            quad.set_operand(pos, ArrayRef(operand.name, tuple(subscripts)))


class HandCodedFUS(HandCodedOptimizer):
    """Fuse adjacent loops with identical headers when legal."""

    name = "FUS"

    def find_points(self, program: Program) -> list[dict[str, object]]:
        structure = self.structure(program)
        points = []
        for first_qid, second_qid in structure.adjacent_pairs():
            first_head = program.quad(first_qid)
            second_head = program.quad(second_qid)
            if (
                first_head.result != second_head.result
                or first_head.a != second_head.a
                or first_head.b != second_head.b
                or first_head.step != second_head.step
            ):
                continue
            first = structure.loop_of(first_qid)
            second = structure.loop_of(second_qid)
            has_io = any(
                program.quad(qid).opcode in (Opcode.READ, Opcode.WRITE)
                for qid in first.body_qids + second.body_qids
            )
            if has_io:
                continue  # fusing would reorder the I/O streams
            if self._fusion_prevented(program, structure, first, second):
                continue
            points.append(
                {
                    "L1": _binding(structure, first),
                    "L2": _binding(structure, second),
                }
            )
        return points

    @staticmethod
    def _fusion_prevented(
        program: Program,
        structure: StructureTable,
        first: Loop,
        second: Loop,
    ) -> bool:
        """A backward fused dependence: the second body reads/writes a
        value the first body touches in a *later* iteration.

        Delegates every statement pair to the same legality core the
        generated FUS optimizer runs (``fused_dep`` with a ``(>)``
        direction pattern), so the baseline and the generated code
        cannot drift apart on what fuses.
        """
        for src in first.body_qids:
            for dst in second.body_qids:
                if fused_pair_directions(
                    program, structure, src, dst, (">",)
                ):
                    return True
        return False

    def apply_once(self, program: Program) -> Optional[dict[str, object]]:
        points = self.find_points(program)
        if not points:
            return None
        point = points[0]
        first: LoopBinding = point["L1"]  # type: ignore[assignment]
        second: LoopBinding = point["L2"]  # type: ignore[assignment]
        body = [
            program[i].qid
            for i in range(
                program.position(second.head) + 1,
                program.position(second.end),
            )
        ]
        anchor = program.prev_qid_of(first.end)
        assert anchor is not None
        for qid in body:
            program.move_after(qid, anchor)
            anchor = qid
        program.remove(second.head)
        program.remove(second.end)
        return point


class HandCodedICM(HandCodedOptimizer):
    """Hoist loop-invariant scalar computations out of their loop."""

    name = "ICM"

    def find_points(self, program: Program) -> list[dict[str, object]]:
        graph = self.dependences(program)
        structure = self.structure(program)
        points = []
        for loop in structure.loops_in_order():
            body = set(loop.body_qids)
            for qid in loop.body_qids:
                quad = program.quad(qid)
                if not quad.is_assignment():
                    continue
                if not isinstance(quad.result, Var):
                    continue
                if structure.enclosing_loop.get(qid) != loop.head_qid:
                    continue  # hoist only from the innermost loop
                if self._invariant(graph, structure, loop, qid, body):
                    points.append(
                        {"L1": _binding(structure, loop), "Si": qid}
                    )
        return points

    @staticmethod
    def _invariant(
        graph: DependenceGraph,
        structure: StructureTable,
        loop: Loop,
        qid: int,
        body: set[int],
    ) -> bool:
        if graph.query("flow", src=loop.head_qid, dst=qid):
            return False  # uses the loop control variable
        for edge in graph.deps_to(qid, "flow"):
            if edge.src in body:
                return False  # operands computed inside the loop
        for edge in graph.deps_from(qid, "out"):
            if edge.dst in body and edge.dst != qid:
                return False
        for edge in graph.deps_to(qid, "out"):
            if edge.src in body and edge.src != qid:
                return False
        for edge in graph.deps_to(qid, "anti"):
            if edge.src in body and not edge.carried:
                return False  # target read earlier in the iteration
        for guard in structure.controllers.get(qid, ()):
            if guard in body:
                return False  # conditionally executed inside the loop
        return True

    def apply_once(self, program: Program) -> Optional[dict[str, object]]:
        points = self.find_points(program)
        if not points:
            return None
        point = points[0]
        binding: LoopBinding = point["L1"]  # type: ignore[assignment]
        before = program.prev_qid_of(binding.head)
        if before is None:
            program.move_to_front(point["Si"])  # type: ignore[arg-type]
        else:
            program.move_after(point["Si"], before)  # type: ignore[arg-type]
        return point
