"""Hand-coded scalar optimizations: CTP, CPP, DCE, CFO.

Classical formulations over reaching definitions and liveness, written
the way a compiler textbook presents them — no GOSpeL machinery.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.analysis.reaching import ReachingDefinitions
from repro.genesis.library import PosBinding
from repro.ir import interp
from repro.ir.program import Program
from repro.ir.quad import BINARY_OPS, Opcode, Quad
from repro.ir.types import Affine, ArrayRef, Const, Var, used_scalars
from repro.opts.handcoded.base import HandCodedOptimizer


def _scalar_use_sites(program: Program) -> Iterator[tuple[int, Quad, str, str]]:
    """(position, quad, operand position, variable) for scalar reads."""
    for position, quad in enumerate(program):
        for pos, operand in quad.use_positions():
            for name in sorted(used_scalars(operand)):
                yield position, quad, pos, name


def _replace_use(quad: Quad, pos: str, var: str, replacement) -> None:
    """Rewrite the read of ``var`` at operand position ``pos``."""
    existing = quad.operand_at(pos)
    if isinstance(existing, Var) and existing.name == var:
        quad.set_operand(pos, replacement)
        return
    if isinstance(existing, ArrayRef):
        subscripts = []
        for sub in existing.subscripts:
            if isinstance(sub, Var) and sub.name == var:
                if isinstance(replacement, Const):
                    subscripts.append(Affine.constant(int(replacement.value)))
                else:
                    subscripts.append(replacement)
            elif isinstance(sub, Affine) and sub.coefficient(var) != 0:
                if isinstance(replacement, Const):
                    subscripts.append(
                        sub.substitute(var, Affine.constant(
                            int(replacement.value)))
                    )
                elif isinstance(replacement, Var):
                    subscripts.append(
                        sub.substitute(var, Affine.var(replacement.name))
                    )
                else:
                    subscripts.append(sub)
            else:
                subscripts.append(sub)
        quad.set_operand(pos, ArrayRef(existing.name, tuple(subscripts)))


class HandCodedCTP(HandCodedOptimizer):
    """Constant propagation via unique constant reaching definitions."""

    name = "CTP"

    def find_points(self, program: Program) -> list[dict[str, object]]:
        reaching = self.reaching(program)
        points = []
        for position, quad, pos, var in _scalar_use_sites(program):
            point = self._point_at(program, reaching, position, quad, pos, var)
            if point is not None:
                points.append(point)
        return points

    def _point_at(
        self,
        program: Program,
        reaching: ReachingDefinitions,
        position: int,
        quad: Quad,
        pos: str,
        var: str,
    ) -> Optional[dict[str, object]]:
        defs = reaching.reaching_defs_of(position, var)
        if len(defs) != 1:
            return None
        definition = defs[0]
        def_quad = program[definition.position]
        if def_quad.opcode is not Opcode.ASSIGN or not isinstance(
            def_quad.a, Const
        ):
            return None
        if def_quad.qid == quad.qid:
            return None
        # the single reaching def must also reach loop-independently
        # (uses reached only around a back edge never see another value,
        # but the first iteration would read an undefined variable —
        # match the generated optimizer's (=) requirement)
        acyclic = reaching.reaching_defs_of(position, var, acyclic=True)
        if definition not in acyclic:
            return None
        return {
            "Si": def_quad.qid,
            "Sj": quad.qid,
            "pos": PosBinding(pos=pos, var=var),
        }

    def apply_once(self, program: Program) -> Optional[dict[str, object]]:
        points = self.find_points(program)
        if not points:
            return None
        point = points[0]
        quad = program.quad(point["Sj"])  # type: ignore[arg-type]
        definition = program.quad(point["Si"])  # type: ignore[arg-type]
        binding: PosBinding = point["pos"]  # type: ignore[assignment]
        before = program.preimage(quad.qid)
        _replace_use(quad, binding.pos, binding.var, definition.a)
        program.touch(quad.qid, before=before)
        return point


class HandCodedCPP(HandCodedOptimizer):
    """Copy propagation: unique reaching copy whose source is stable.

    The source-stability check compares the reaching definitions of the
    copied variable at the copy and at the use — if they are the same
    set, no new definition of the source intervenes on any path.
    """

    name = "CPP"

    def find_points(self, program: Program) -> list[dict[str, object]]:
        reaching = self.reaching(program)
        points = []
        for position, quad, pos, var in _scalar_use_sites(program):
            defs = reaching.reaching_defs_of(position, var)
            if len(defs) != 1:
                continue
            definition = defs[0]
            def_quad = program[definition.position]
            if def_quad.opcode is not Opcode.ASSIGN or not isinstance(
                def_quad.a, Var
            ):
                continue
            if def_quad.qid == quad.qid:
                continue
            acyclic = reaching.reaching_defs_of(position, var, acyclic=True)
            if definition not in acyclic:
                continue
            source = def_quad.a.name
            defs_at_copy = frozenset(
                d.qid for d in reaching.reaching_defs_of(
                    definition.position, source
                )
            )
            defs_at_use = frozenset(
                d.qid for d in reaching.reaching_defs_of(position, source)
            )
            if defs_at_copy != defs_at_use:
                continue  # the source may change between copy and use
            if def_quad.qid in defs_at_use:
                continue  # degenerate x := x copies
            points.append(
                {
                    "Si": def_quad.qid,
                    "Sj": quad.qid,
                    "pos": PosBinding(pos=pos, var=var),
                }
            )
        return points

    def apply_once(self, program: Program) -> Optional[dict[str, object]]:
        points = self.find_points(program)
        if not points:
            return None
        point = points[0]
        quad = program.quad(point["Sj"])  # type: ignore[arg-type]
        definition = program.quad(point["Si"])  # type: ignore[arg-type]
        binding: PosBinding = point["pos"]  # type: ignore[assignment]
        before = program.preimage(quad.qid)
        _replace_use(quad, binding.pos, binding.var, definition.a)
        program.touch(quad.qid, before=before)
        return point


class HandCodedDCE(HandCodedOptimizer):
    """Dead code elimination via liveness (scalars) and read scans
    (array elements)."""

    name = "DCE"

    def find_points(self, program: Program) -> list[dict[str, object]]:
        liveness = self.liveness(program)
        graph = None
        points = []
        for position, quad in enumerate(program):
            if not quad.is_assignment():
                continue
            target_scalar = quad.defined_scalar()
            if target_scalar is not None:
                if not liveness.is_live_out(position, target_scalar):
                    points.append({"Si": quad.qid})
                continue
            if quad.defined_array() is not None:
                # an array-element write is dead when its value flows
                # to no read (dependence-based, like a hand optimizer
                # consulting the compiler's dependence phase)
                if graph is None:
                    graph = self.dependences(program)
                if not graph.query("flow", src=quad.qid, var=None):
                    points.append({"Si": quad.qid})
        return points

    def apply_once(self, program: Program) -> Optional[dict[str, object]]:
        points = self.find_points(program)
        if not points:
            return None
        point = points[0]
        program.remove(point["Si"])  # type: ignore[arg-type]
        return point


class HandCodedCFO(HandCodedOptimizer):
    """Constant folding of binary computations over literals."""

    name = "CFO"

    def find_points(self, program: Program) -> list[dict[str, object]]:
        points = []
        for quad in program:
            if quad.opcode not in BINARY_OPS:
                continue
            if not isinstance(quad.a, Const) or not isinstance(quad.b, Const):
                continue
            if quad.opcode is Opcode.DIV and quad.b.value == 0:
                continue
            points.append({"Si": quad.qid})
        return points

    def apply_once(self, program: Program) -> Optional[dict[str, object]]:
        points = self.find_points(program)
        if not points:
            return None
        point = points[0]
        quad = program.quad(point["Si"])  # type: ignore[arg-type]
        folded = interp._apply_binary(quad.opcode, quad.a.value, quad.b.value)
        before = program.preimage(quad.qid)
        quad.opcode = Opcode.ASSIGN
        quad.a = Const(folded)
        quad.b = None
        program.touch(quad.qid, before=before)
        return point
