"""Machine-inferred GOSpeL specifications (generated).

Produced by ``repro.synth.infer.emit_module`` from an
admission-certified inference run (``genesis infer
--emit-module``).  Every entry passed all five admission
gates: sema/codegen, dependence legality, corpus coverage,
the differential oracle, and the shared-network shadow
check.  Regenerate rather than hand-edit.
"""

from __future__ import annotations

INFERRED_SPECS: dict[str, str] = {}

# origin pairgen:sub_self:0; admitted at the equal rung with 5 corpus applications
INFERRED_SPECS["INF_SUB_XX"] = """\
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: (Si.opc == sub AND type(Si.opr_1) == var AND type(Si.opr_2) == var AND type(Si.opr_3) == var AND Si.opr_2 == Si.opr_3);
  Depend
ACTION
  modify(Si.opc, assign);
  modify(Si.opr_2, 0);
  modify(Si.opr_3, none);
"""

# origin pairgen:mul_zero:1; admitted at the pinned rung with 4 corpus applications
INFERRED_SPECS["INF_MUL_X0"] = """\
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: (Si.opc == mul AND type(Si.opr_1) == var AND type(Si.opr_2) == var AND type(Si.opr_3) == const AND Si.opr_3 == 0);
  Depend
ACTION
  modify(Si.opc, assign);
  modify(Si.opr_2, 0);
  modify(Si.opr_3, none);
"""

# origin pairgen:add_left_zero:2; admitted at the pinned rung with 4 corpus applications
INFERRED_SPECS["INF_ADD_0X"] = """\
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: (Si.opc == add AND type(Si.opr_1) == var AND type(Si.opr_2) == const AND type(Si.opr_3) == var AND Si.opr_2 == 0);
  Depend
ACTION
  modify(Si.opc, assign);
  modify(Si.opr_2, Si.opr_3);
  modify(Si.opr_3, none);
"""

# origin pairgen:mul_left_one:3; admitted at the pinned rung with 4 corpus applications
INFERRED_SPECS["INF_MUL_1X"] = """\
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: (Si.opc == mul AND type(Si.opr_1) == var AND type(Si.opr_2) == const AND type(Si.opr_3) == var AND Si.opr_2 == 1);
  Depend
ACTION
  modify(Si.opc, assign);
  modify(Si.opr_2, Si.opr_3);
  modify(Si.opr_3, none);
"""

# origin pairgen:mul_two:4; admitted at the pinned rung with 5 corpus applications
INFERRED_SPECS["INF_MUL_2X"] = """\
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: (Si.opc == mul AND type(Si.opr_1) == var AND type(Si.opr_2) == const AND type(Si.opr_3) == var AND Si.opr_2 == 2);
  Depend
ACTION
  modify(Si.opc, add);
  modify(Si.opr_2, Si.opr_3);
"""

# origin pairgen:pow_zero:5; admitted at the pinned rung with 4 corpus applications
INFERRED_SPECS["INF_POW_X0"] = """\
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: (Si.opc == pow AND type(Si.opr_1) == var AND type(Si.opr_2) == var AND type(Si.opr_3) == const AND Si.opr_3 == 0);
  Depend
ACTION
  modify(Si.opc, assign);
  modify(Si.opr_2, 1);
  modify(Si.opr_3, none);
"""

# origin pairgen:self_copy:6; admitted at the equal rung with 4 corpus applications
INFERRED_SPECS["INF_DEL_ASSIGN_X"] = """\
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: (Si.opc == assign AND type(Si.opr_1) == var AND type(Si.opr_2) == var AND Si.opr_1 == Si.opr_2);
  Depend
ACTION
  delete(Si);
"""

# origin trace:ALG; admitted at the pinned rung with 4 corpus applications
INFERRED_SPECS["INF_SUB_40"] = """\
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: (Si.opc == sub AND type(Si.opr_1) == var AND type(Si.opr_2) == const AND type(Si.opr_3) == const AND Si.opr_2 == 4 AND Si.opr_3 == 0);
  Depend
ACTION
  modify(Si.opc, assign);
  modify(Si.opr_3, none);
"""

# origin trace:ALG; admitted at the pinned rung with 4 corpus applications
INFERRED_SPECS["INF_SUB_X0"] = """\
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: (Si.opc == sub AND type(Si.opr_1) == var AND type(Si.opr_2) == var AND type(Si.opr_3) == const AND Si.opr_3 == 0);
  Depend
ACTION
  modify(Si.opc, assign);
  modify(Si.opr_3, none);
"""
