"""GOSpeL specifications for the paper's optimizations.

The ten optimizations of Section 4 — Copy Propagation (CPP), Constant
Propagation (CTP), Dead Code Elimination (DCE), Invariant Code Motion
(ICM), Loop Interchanging (INX), Loop Circulation (CRC), Bumping (BMP),
Parallelization (PAR), Loop Unrolling (LUR), and Loop Fusion (FUS) —
plus Constant Folding (CFO), which the enabling experiment references.

``CTP_PAPER`` and ``INX_PAPER`` are near-verbatim transcriptions of the
paper's Figures 1 and 2 (see the notes on each).  The catalog versions
extend them only where soundness demands (e.g. INX also excludes
``anti``/``out`` dependences with a ``(<,>)`` vector — the classical
legality condition).  ``LUR_LOWER_FIRST`` is the deliberately more
expensive specification variant of experiment E6a: it tests the (almost
always constant) lower bound before the (often symbolic) upper bound,
discarding non-application points later than ``LUR`` does.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# Figure 1: Constant Propagation, as printed in the paper
# ----------------------------------------------------------------------
#: The paper's Figure 1 spec.  One transcription note: the figure's
#: third clause reads ``operand(Sj,pos) != operand(Sl,pos)``, but the
#: generated code of Figure 6 fails when the *same* operand is reached
#: by another definition (``dep_opr(Sj) == dep_opr(Sl)``); reusing the
#: bound ``pos`` name in ``(Sl, pos)`` expresses exactly that
#: unification, so the clause needs no operand comparison at all.
CTP_PAPER = """
TYPE
  Stmt: Si, Sj, Sl;
PRECOND
  Code_Pattern
    /* Find a constant definition */
    any Si: Si.opc == assign AND type(Si.opr_2) == const;
  Depend
    /* Use of Si with no other definitions reaching the same operand */
    any (Sj, pos): flow_dep(Si, Sj, (=));
    no (Sl, pos): flow_dep(Sl, Sj, (=)) AND (Si != Sl);
ACTION
  /* Change use of Si in Sj to be the constant */
  modify(operand(Sj, pos), Si.opr_2);
"""

#: Catalog CTP.  One soundness fix over the Figure 1 text: the "no
#: other definitions" clause must also reject *loop-carried* reaching
#: definitions (``x`` redefined by a later iteration), so its direction
#: vector is omitted (any direction) rather than ``(=)``.
CTP = """
TYPE
  Stmt: Si, Sj, Sl;
PRECOND
  Code_Pattern
    /* Find a constant definition of a scalar (array-element defs are
       may-aliased; propagation from them is unsound) */
    any Si: Si.opc == assign AND type(Si.opr_2) == const AND
            type(Si.opr_1) == var;
  Depend
    /* Use of Si with no other definition reaching the same operand */
    any (Sj, pos): flow_dep(Si, Sj, (=));
    no (Sl, pos): flow_dep(Sl, Sj) AND (Si != Sl);
ACTION
  /* Change use of Si in Sj to be the constant */
  modify(operand(Sj, pos), Si.opr_2);
"""

# ----------------------------------------------------------------------
# Copy Propagation
# ----------------------------------------------------------------------
CPP = """
TYPE
  Stmt: Si, Sj, Sk, Sl;
PRECOND
  Code_Pattern
    /* Find a scalar copy statement x := y */
    any Si: Si.opc == assign AND type(Si.opr_2) == var AND
            type(Si.opr_1) == var;
  Depend
    /* A use of the copy with no other reaching definition (in any
       direction: loop-carried redefinitions also disqualify) */
    any (Sj, pos): flow_dep(Si, Sj, (=));
    no (Sl, pos): flow_dep(Sl, Sj) AND (Si != Sl);
    /* The copied variable y is not redefined between copy and use */
    no Sk: mem(Sk, path(Si, Sj)), anti_dep(Si, Sk);
ACTION
  /* Replace the use of x with y */
  modify(operand(Sj, pos), Si.opr_2);
"""

# ----------------------------------------------------------------------
# Dead Code Elimination
# ----------------------------------------------------------------------
DCE = """
TYPE
  Stmt: Si, Sj;
PRECOND
  Code_Pattern
    /* Any computing statement */
    any Si: class(Si) == compute;
  Depend
    /* Whose result reaches no use at all */
    no Sj: flow_dep(Si, Sj);
ACTION
  delete(Si);
"""

# ----------------------------------------------------------------------
# Constant Folding (referenced by the enabling experiment)
# ----------------------------------------------------------------------
CFO = """
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    /* A binary computation over two constants (guarding x/0) */
    any Si: class(Si) == binop AND type(Si.opr_2) == const AND
            type(Si.opr_3) == const AND
            (Si.opc != div OR Si.opr_3 != 0);
  Depend
ACTION
  /* Fold to a plain constant assignment */
  modify(Si.opr_2, value(Si));
  modify(Si.opc, assign);
  modify(Si.opr_3, none);
"""

# ----------------------------------------------------------------------
# Invariant Code Motion
# ----------------------------------------------------------------------
ICM = """
TYPE
  Loop: L1;
  Stmt: Si, Sj, Sk, Sa, Sc;
PRECOND
  Code_Pattern
    /* A scalar computation inside some loop */
    any L1, Si: class(Si) == compute AND type(Si.opr_1) == var;
  Depend
    /* Si is in the loop body */
    any Si: mem(Si, L1);
    /* its operands do not use the loop control variable */
    no: flow_dep(L1.head, Si);
    /* its operands are not computed inside the loop (including Si
       itself across iterations) */
    no Sj: mem(Sj, L1), flow_dep(Sj, Si);
    /* its target is assigned only by Si in the loop (the carried
       self-output rewrites the same invariant value each iteration) */
    no Sk: mem(Sk, L1), (Sk != Si) AND (out_dep(Si, Sk) OR out_dep(Sk, Si));
    /* its target is not used earlier in the iteration */
    no Sa: mem(Sa, L1), anti_dep(Sa, Si, (=));
    /* it is not conditionally executed within the loop */
    no Sc: mem(Sc, L1), ctrl_dep(Sc, Si);
ACTION
  /* Hoist the statement to just before the loop */
  move(Si, L1.head.prev);
"""

# ----------------------------------------------------------------------
# Figure 2: Loop Interchanging, as printed in the paper
# ----------------------------------------------------------------------
INX_PAPER = """
TYPE
  Stmt: Sn, Sm;
  Tight Loops: (L1, L2);
PRECOND
  Code_Pattern
    /* Find two tightly nested loops */
    any (L1, L2);
  Depend
    /* Ensure invariant loop headers */
    no L1.head: flow_dep(L1.head, L2.head);
    /* No statement pair with a flow dependence and direction (<,>) */
    no Sm, Sn: mem(Sm, L2) AND mem(Sn, L2), flow_dep(Sn, Sm, (<, >));
ACTION
  /* Interchange heads and tails */
  move(L1.head, L2.head);
  move(L1.end, L2.end.prev);
"""

#: Catalog INX: the paper's Figure 2 plus the classical requirement
#: that *anti* and *output* dependences with a ``(<,>)`` vector also
#: prevent interchange.
INX = """
TYPE
  Stmt: Sn, Sm, Sio;
  Tight Loops: (L1, L2);
PRECOND
  Code_Pattern
    any (L1, L2);
  Depend
    no L1.head: flow_dep(L1.head, L2.head);
    /* No I/O inside: interchanging would reorder the streams */
    no Sio: mem(Sio, L2), class(Sio) == io;
    no Sm, Sn: mem(Sm, L2) AND mem(Sn, L2),
       flow_dep(Sn, Sm, (<, >)) OR anti_dep(Sn, Sm, (<, >)) OR
       out_dep(Sn, Sm, (<, >));
ACTION
  move(L1.head, L2.head);
  move(L1.end, L2.end.prev);
"""

# ----------------------------------------------------------------------
# Loop Circulation: rotate the innermost loop of a perfect triple nest
# to the outermost position ((L1,L2,L3) body -> (L3,L1,L2) body)
# ----------------------------------------------------------------------
CRC = """
TYPE
  Stmt: Sn, Sm, Sio;
  Tight Loops: (L1, L2), (L2, L3);
PRECOND
  Code_Pattern
    any (L1, L2), (L2, L3);
  Depend
    /* All three headers mutually invariant */
    no: flow_dep(L1.head, L2.head) OR flow_dep(L1.head, L3.head) OR
        flow_dep(L2.head, L3.head);
    /* No I/O inside: rotating would reorder the streams */
    no Sio: mem(Sio, L3), class(Sio) == io;
    /* Rotating L3 outward must not reverse any dependence: illegal
       exactly when some dependence is backward at L3's level */
    no Sm, Sn: mem(Sm, L3) AND mem(Sn, L3),
       flow_dep(Sn, Sm, (*, *, >)) OR anti_dep(Sn, Sm, (*, *, >)) OR
       out_dep(Sn, Sm, (*, *, >));
ACTION
  /* heads H1 H2 H3 -> H3 H1 H2; ends E3 E2 E1 -> E2 E1 E3 */
  move(L1.head, L3.head);
  move(L2.head, L1.head);
  move(L3.end, L1.end);
"""

# ----------------------------------------------------------------------
# Bumping: normalize a loop's lower bound to 1
# ----------------------------------------------------------------------
BMP = """
TYPE
  Loop: L1;
  Stmt: Sx;
PRECOND
  Code_Pattern
    /* A loop over constant bounds not already starting at 1 */
    any L1: type(L1.init) == const AND L1.init != 1 AND
            type(L1.final) == const AND type(L1.step) == const AND
            L1.step == 1;
  Depend
    /* Normalizing changes the control variable's final value, so it
       must not be read after the loop */
    no Sx: flow_dep(L1.head, Sx) AND NOT(mem(Sx, L1));
ACTION
  /* t := lcv + (init - 1) reconstructs the original index values */
  add(L1.head, stmt(newtemp, add, L1.lcv, L1.init - 1), Sb);
  forall (Su, posu) in uses(L1.lcv, L1.body) where Su != Sb {
    modify(operand(Su, posu), Sb.opr_1);
  }
  modify(L1.final, L1.final - (L1.init - 1));
  modify(L1.init, 1);
"""

# ----------------------------------------------------------------------
# Parallelization: a loop with no loop-carried dependences becomes DOALL
# ----------------------------------------------------------------------
PAR = """
TYPE
  Loop: L1;
  Stmt: Sm, Sn, Sio;
PRECOND
  Code_Pattern
    /* A sequential loop */
    any L1: L1.head.opc == do;
  Depend
    /* No I/O inside (the input/output stream orders iterations) */
    no Sio: mem(Sio, L1), class(Sio) == io;
    /* No dependence carried by this loop */
    no Sm, Sn: mem(Sm, L1) AND mem(Sn, L1),
       flow_dep(Sm, Sn, (<)) OR anti_dep(Sm, Sn, (<)) OR
       out_dep(Sm, Sn, (<));
ACTION
  modify(L1.head.opc, doall);
"""

# ----------------------------------------------------------------------
# Loop Unrolling: fully unroll a constant-bounds loop
# ----------------------------------------------------------------------
#: Checks the (more often symbolic) upper limit *first* — the paper
#: found this ordering discards non-application points earlier and is
#: cheaper (experiment E6a).
LUR = """
TYPE
  Loop: L1;
  Stmt: Sx;
PRECOND
  Code_Pattern
    /* Constant bounds are needed to unroll the loop */
    any L1: type(L1.final) == const AND type(L1.init) == const AND
            type(L1.step) == const AND trip(L1) >= 1 AND trip(L1) <= 16;
  Depend
    /* The control variable must not be read after the loop: deleting
       the loop removes its final value */
    no Sx: flow_dep(L1.head, Sx) AND NOT(mem(Sx, L1));
ACTION
  /* Copy the body once per iteration value (descending placement
     after the loop end keeps ascending execution order), substituting
     the iteration constant for the loop control variable */
  forall k in range(L1.final, L1.init, 0 - L1.step) {
    copy(L1.body, L1.end, Bk);
    forall (Su, posu) in uses(L1.lcv, Bk) {
      modify(operand(Su, posu), k);
    }
  }
  delete(L1);
"""

#: E6a variant: identical semantics, but tests the lower bound first.
LUR_LOWER_FIRST = """
TYPE
  Loop: L1;
  Stmt: Sx;
PRECOND
  Code_Pattern
    /* Same as LUR but checking the lower limit before the upper */
    any L1: type(L1.init) == const AND type(L1.final) == const AND
            type(L1.step) == const AND trip(L1) >= 1 AND trip(L1) <= 16;
  Depend
    no Sx: flow_dep(L1.head, Sx) AND NOT(mem(Sx, L1));
ACTION
  forall k in range(L1.final, L1.init, 0 - L1.step) {
    copy(L1.body, L1.end, Bk);
    forall (Su, posu) in uses(L1.lcv, Bk) {
      modify(operand(Su, posu), k);
    }
  }
  delete(L1);
"""

# ----------------------------------------------------------------------
# Loop Fusion: merge two adjacent conformable loops
# ----------------------------------------------------------------------
FUS = """
TYPE
  Stmt: Sm, Sn, Sio, Sio2;
  Adjacent Loops: (L1, L2);
PRECOND
  Code_Pattern
    /* Adjacent loops with identical headers */
    any (L1, L2): L1.lcv == L2.lcv AND L1.init == L2.init AND
                  L1.final == L2.final AND L1.step == L2.step;
  Depend
    /* No I/O in either body: fusing would reorder the streams */
    no Sio: mem(Sio, L1), class(Sio) == io;
    no Sio2: mem(Sio2, L2), class(Sio2) == io;
    /* Fusing must not reverse any cross-loop dependence: illegal when
       a dependence from the first body to the second would become
       backward-carried in the fused loop */
    no Sm, Sn: mem(Sm, L1) AND mem(Sn, L2), fused_dep(Sm, Sn, (>));
ACTION
  /* Move the second body into the first, then drop the empty loop */
  forall Sx in L2.body {
    move(Sx, L1.end.prev);
  }
  delete(L2);
"""


#: The standard catalog: name -> GOSpeL source.
STANDARD_SPECS: dict[str, str] = {
    "CPP": CPP,
    "CTP": CTP,
    "DCE": DCE,
    "CFO": CFO,
    "ICM": ICM,
    "INX": INX,
    "CRC": CRC,
    "BMP": BMP,
    "PAR": PAR,
    "LUR": LUR,
    "FUS": FUS,
}

#: Specification variants used by the cost experiments.
VARIANT_SPECS: dict[str, str] = {
    "LUR_LOWER_FIRST": LUR_LOWER_FIRST,
    "CTP_PAPER": CTP_PAPER,
    "INX_PAPER": INX_PAPER,
}

#: The ten optimizations named in the paper's experimental section.
PAPER_TEN = ("CPP", "CTP", "DCE", "ICM", "INX", "CRC", "BMP", "PAR",
             "LUR", "FUS")
