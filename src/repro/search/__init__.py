"""Phase-ordering search over the generated optimizer catalog.

The paper's experimental study is about *enabling interactions* and
*application order* — which sequences of the generated optimizers
unlock each other and pay off under each machine model.  This package
searches that space: seeded, fully deterministic strategies (beam,
greedy, iterated greedy, exhaustive) explore pass sequences over a
program, each candidate ordering evaluated through the optimization
service so fingerprint-identical intermediate states are free cache
hits, convergent branches pruned via ``Program.fingerprint()``, and
every winning pipeline routed through the differential-testing oracle
before it is reported.  See ``docs/search.md``.
"""

from repro.search.engine import (
    MODELS_BY_NAME,
    PhaseOrderingEngine,
    SearchConfig,
    SearchResult,
    certify,
    replay_sequence,
    search_program,
    search_suite,
)
from repro.search.space import (
    EvalOutcome,
    EvalRequest,
    Evaluator,
    EvaluatorStats,
    LocalEvaluator,
    SearchError,
    SearchNode,
    ServiceEvaluator,
)
from repro.search.strategy import (
    STRATEGIES,
    BeamSearch,
    ExhaustiveSearch,
    GreedySearch,
    IteratedGreedy,
    SearchStrategy,
    make_strategy,
)

__all__ = [
    "MODELS_BY_NAME",
    "PhaseOrderingEngine",
    "SearchConfig",
    "SearchResult",
    "certify",
    "replay_sequence",
    "search_program",
    "search_suite",
    "EvalOutcome",
    "EvalRequest",
    "Evaluator",
    "EvaluatorStats",
    "LocalEvaluator",
    "SearchError",
    "SearchNode",
    "ServiceEvaluator",
    "STRATEGIES",
    "BeamSearch",
    "ExhaustiveSearch",
    "GreedySearch",
    "IteratedGreedy",
    "SearchStrategy",
    "make_strategy",
]
