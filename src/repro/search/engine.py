"""The phase-ordering search engine.

The engine owns everything the strategies share: the evaluator (local
or service-backed, see :mod:`repro.search.space`), the budget, the
fingerprint-keyed transposition table that prunes convergent branches,
the deterministic visit log, and the incumbent best.  A
:class:`~repro.search.strategy.SearchStrategy` only decides *which*
states to extend next; the engine decides what an extension costs and
what it produced.

Determinism is a contract, not an accident: candidate passes are
always tried in a stable order, ties in candidate ranking break on the
pass sequence itself, the only randomness is a ``random.Random`` seeded
from the config, and the incumbent is replaced only on a *strictly*
better score — so the reported best is the first visit that achieved
it, and ``same seed ⇒ same best pipeline, same visit order`` holds
bit-for-bit (the ``tests/search`` property suite replays this).

Every reported pipeline is routed through the PR 1 differential-testing
oracle before it is believed: :func:`certify` replays the sequence
through the ordinary driver pipeline, asserts the replay reaches the
recorded fingerprint, and then checks semantic equivalence against the
base program on randomized seeded environments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.frontend.lower import parse_program
from repro.genesis.driver import DriverOptions
from repro.ir.program import Program
from repro.machine.estimate import estimate_time
from repro.machine.models import ALL_MODELS, MachineModel
from repro.search.space import (
    EvalRequest,
    Evaluator,
    EvaluatorStats,
    LocalEvaluator,
    SearchError,
    SearchNode,
    ServiceEvaluator,
    canonical_source,
)

#: The objective machine models by CLI/config name.
MODELS_BY_NAME: dict[str, MachineModel] = {
    model.name: model for model in ALL_MODELS
}


@dataclass
class SearchConfig:
    """Knobs of one phase-ordering search."""

    #: the candidate passes (catalog names); order is the tie-break
    opt_names: tuple[str, ...]
    #: strategy name from :data:`repro.search.strategy.STRATEGIES`
    strategy: str = "beam"
    #: maximum pipeline length explored
    depth: int = 4
    #: frontier width for beam search
    beam_width: int = 4
    #: total candidate evaluations allowed (cache hits included —
    #: the budget bounds *exploration*, the cache bounds *work*)
    budget: int = 200
    #: seed for the strategy's random choices (iterated greedy)
    seed: int = 0
    #: greedy reconstruction rounds for iterated greedy
    iterations: int = 4
    #: objective machine model name (score = estimated cycles under it)
    objective: str = "multiprocessor"
    #: prune states whose fingerprint was already visited
    prune: bool = True
    #: may a pass appear more than once in a sequence
    allow_repeats: bool = True
    #: run each pass to exhaustion (False: first point only, the
    #: user-directed mode the ordering experiment reproduces)
    apply_all: bool = True
    #: keep full-depth trajectories (exhaustive studies read these)
    record_leaves: bool = False
    #: driver knobs for every evaluation (None: built from apply_all)
    options: Optional[DriverOptions] = None

    def __post_init__(self) -> None:
        self.opt_names = tuple(self.opt_names)
        if not self.opt_names:
            raise SearchError("search needs at least one candidate pass")
        if self.depth < 1:
            raise SearchError("search depth must be >= 1")
        if self.budget < 1:
            raise SearchError("search budget must be >= 1")
        if self.beam_width < 1:
            raise SearchError("beam width must be >= 1")
        if self.objective not in MODELS_BY_NAME:
            raise SearchError(
                f"unknown objective model {self.objective!r}; "
                f"known: {sorted(MODELS_BY_NAME)}"
            )

    def driver_options(self) -> DriverOptions:
        if self.options is not None:
            return self.options
        return DriverOptions(apply_all=self.apply_all)


@dataclass
class SearchResult:
    """What one search found, in report-ready form."""

    name: str
    strategy: str
    seed: int
    opt_names: tuple[str, ...]
    depth: int
    beam_width: int
    budget: int
    objective: str
    prune: bool
    #: estimated cycles of the base program under every machine model
    baseline_cycles: dict[str, float] = field(default_factory=dict)
    best_sequence: tuple[str, ...] = ()
    best_fingerprint: str = ""
    best_source: str = ""
    best_score: float = 0.0
    #: estimated cycles of the best program under every machine model
    best_cycles: dict[str, float] = field(default_factory=dict)
    #: baseline - best, per machine model (positive = faster)
    benefit: dict[str, float] = field(default_factory=dict)
    evaluator: EvaluatorStats = field(default_factory=EvaluatorStats)
    #: states dropped because their fingerprint was already visited
    pruned: int = 0
    #: whether the budget ran out before the strategy finished
    exhausted: bool = False
    #: every evaluated extension's resulting sequence, in order
    visit_order: list[tuple[str, ...]] = field(default_factory=list)
    #: full-depth trajectories (``record_leaves`` searches only)
    leaves: list[SearchNode] = field(default_factory=list)
    #: oracle verdict: None = not checked, True/False = checked
    certified: Optional[bool] = None
    oracle_trials: int = 0
    oracle_summary: str = ""
    elapsed_seconds: float = 0.0

    @property
    def backend_executions(self) -> int:
        return self.evaluator.executed

    @property
    def cache_hits(self) -> int:
        return self.evaluator.cache_hits

    @property
    def improved(self) -> bool:
        return bool(self.best_sequence)

    def pipeline_text(self) -> str:
        return (
            " -> ".join(self.best_sequence)
            if self.best_sequence
            else "(empty: baseline is best found)"
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "strategy": self.strategy,
            "seed": self.seed,
            "opt_names": list(self.opt_names),
            "depth": self.depth,
            "beam_width": self.beam_width,
            "budget": self.budget,
            "objective": self.objective,
            "prune": self.prune,
            "baseline_cycles": dict(self.baseline_cycles),
            "best_sequence": list(self.best_sequence),
            "best_fingerprint": self.best_fingerprint,
            "best_score": self.best_score,
            "best_cycles": dict(self.best_cycles),
            "benefit": dict(self.benefit),
            "evaluations": self.evaluator.evaluations,
            "backend_executions": self.evaluator.executed,
            "cache_hits": self.evaluator.cache_hits,
            "failures": self.evaluator.failures,
            "pruned": self.pruned,
            "exhausted": self.exhausted,
            "visit_order": [list(seq) for seq in self.visit_order],
            "certified": self.certified,
            "oracle_trials": self.oracle_trials,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }

    def summary(self) -> str:
        lines = [
            f"{self.name}: best pipeline {self.pipeline_text()}",
            "  benefit: "
            + ", ".join(
                f"{model} {self.benefit.get(model, 0.0):g} cycles"
                f" ({self.baseline_cycles.get(model, 0.0):g} -> "
                f"{self.best_cycles.get(model, 0.0):g})"
                for model in self.baseline_cycles
            ),
            f"  search: {self.evaluator}, {self.pruned} pruned"
            + (", budget exhausted" if self.exhausted else ""),
        ]
        if self.certified is not None:
            verdict = "PASSED" if self.certified else "FAILED"
            lines.append(
                f"  oracle: {verdict} on {self.oracle_trials} seeded "
                f"environment(s)"
            )
        return "\n".join(lines)


class PhaseOrderingEngine:
    """Shared machinery under every search strategy."""

    def __init__(
        self,
        config: SearchConfig,
        evaluator: Optional[Evaluator] = None,
        client=None,
    ):
        if evaluator is not None and client is not None:
            raise SearchError("pass an evaluator or a client, not both")
        self.config = config
        if evaluator is not None:
            self.evaluator = evaluator
        elif client is not None:
            self.evaluator = ServiceEvaluator(
                client, options=config.driver_options()
            )
        else:
            self.evaluator = LocalEvaluator(
                options=config.driver_options()
            )
        self.model = MODELS_BY_NAME[config.objective]
        self.root: Optional[SearchNode] = None
        self.best: Optional[SearchNode] = None
        self.exhausted = False
        self.pruned = 0
        #: fingerprints of every state ever constructed
        self.visited: set[str] = set()
        #: resulting sequence of every evaluation, in order
        self.visit_order: list[tuple[str, ...]] = []
        self.leaves: list[SearchNode] = []

    # ------------------------------------------------------------------
    # state construction
    # ------------------------------------------------------------------
    def start(self, source: str) -> SearchNode:
        """Install the root state (the unoptimized program)."""
        program = parse_program(source)
        self.root = SearchNode(
            sequence=(),
            source=source,
            fingerprint=program.fingerprint(),
            score=self._score(program),
        )
        self.best = self.root
        self.visited.add(self.root.fingerprint)
        return self.root

    def _score(self, program: Program) -> float:
        return estimate_time(program, self.model).cycles

    def rank(self, node: SearchNode):
        """Deterministic candidate ordering: score, then the sequence."""
        return (node.score, node.depth, node.sequence)

    # ------------------------------------------------------------------
    # budget
    # ------------------------------------------------------------------
    @property
    def remaining_budget(self) -> int:
        return max(0, self.config.budget - self.evaluator.stats.evaluations)

    def candidate_passes(self, node: SearchNode) -> tuple[str, ...]:
        """The passes a node may be extended with, in stable order."""
        if self.config.allow_repeats:
            return self.config.opt_names
        used = set(node.sequence)
        return tuple(
            name for name in self.config.opt_names if name not in used
        )

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------
    def expand(
        self,
        node: SearchNode,
        passes: Optional[Sequence[str]] = None,
        keep_unchanged: bool = False,
        dedup: Optional[bool] = None,
    ) -> list[SearchNode]:
        """All children of ``node``, in candidate order.

        Children whose program is unchanged (the pass found no
        application point) are dropped unless ``keep_unchanged`` —
        exhaustive studies keep them so every full-length ordering is
        enumerated.  With ``dedup`` (default: the config's ``prune``),
        children whose fingerprint was already visited are pruned from
        the returned list and counted.  Budget exhaustion truncates
        the expansion deterministically (earliest candidates first).
        """
        if node.depth >= self.config.depth:
            return []
        wanted = tuple(passes) if passes is not None else (
            self.candidate_passes(node)
        )
        if not wanted:
            return []
        allowance = self.remaining_budget
        if allowance < len(wanted):
            self.exhausted = True
            wanted = wanted[:allowance]
            if not wanted:
                return []
        requests = [EvalRequest(node, name) for name in wanted]
        outcomes = self.evaluator.evaluate(requests)
        prune = self.config.prune if dedup is None else dedup
        children: list[SearchNode] = []
        for request, outcome in zip(requests, outcomes):
            child = self._admit(request, outcome)
            if child is None:
                continue
            unchanged = child.fingerprint == node.fingerprint
            if unchanged and not keep_unchanged:
                continue
            if prune and not unchanged and (
                child.fingerprint in self.visited
            ):
                self.pruned += 1
                continue
            self.visited.add(child.fingerprint)
            children.append(child)
        return children

    def _admit(self, request: EvalRequest, outcome) -> Optional[SearchNode]:
        """Turn an evaluation outcome into a state; track the best."""
        if not outcome.ok:
            return None
        program = parse_program(outcome.source)
        child = SearchNode(
            sequence=request.node.sequence + (request.opt_name,),
            source=outcome.source,
            fingerprint=program.fingerprint(),
            score=self._score(program),
            applied=request.node.applied + (outcome.applications,),
        )
        self.visit_order.append(child.sequence)
        # strictly-better-only: the incumbent is the *first* visit
        # that achieved its score, which keeps every strategy's best
        # independent of how later duplicates tie-break
        assert self.best is not None
        if child.score < self.best.score:
            self.best = child
        return child

    def extend(self, node: SearchNode, opt_name: str) -> Optional[SearchNode]:
        """One extension, no unchanged/visited filtering (replays)."""
        if self.remaining_budget < 1:
            self.exhausted = True
            return None
        outcome = self.evaluator.evaluate([EvalRequest(node, opt_name)])[0]
        child = self._admit(EvalRequest(node, opt_name), outcome)
        if child is not None:
            self.visited.add(child.fingerprint)
        return child

    def replay(self, sequence: Sequence[str]) -> Optional[SearchNode]:
        """Walk a known sequence from the root (memo/cache hits)."""
        assert self.root is not None
        node: Optional[SearchNode] = self.root
        for name in sequence:
            if node is None:
                return None
            node = self.extend(node, name)
        return node

    def record_leaf(self, node: SearchNode) -> None:
        if self.config.record_leaves:
            self.leaves.append(node)


# ----------------------------------------------------------------------
# running a search
# ----------------------------------------------------------------------
def search_program(
    program,
    config: SearchConfig,
    evaluator: Optional[Evaluator] = None,
    client=None,
    name: str = "",
) -> SearchResult:
    """Search pass orderings for one program (or source text)."""
    from repro.search.strategy import make_strategy

    if isinstance(program, Program):
        label = name or program.name
        source = canonical_source(program)
    else:
        label = name or "program"
        source = str(program)
    engine = PhaseOrderingEngine(config, evaluator=evaluator, client=client)
    strategy = make_strategy(config)
    started = time.perf_counter()
    engine.start(source)
    strategy.run(engine)
    elapsed = time.perf_counter() - started

    assert engine.root is not None and engine.best is not None
    base = parse_program(engine.root.source)
    best = parse_program(engine.best.source)
    baseline_cycles = {
        model.name: estimate_time(base, model).cycles
        for model in ALL_MODELS
    }
    best_cycles = {
        model.name: estimate_time(best, model).cycles
        for model in ALL_MODELS
    }
    return SearchResult(
        name=label,
        strategy=strategy.name,
        seed=config.seed,
        opt_names=config.opt_names,
        depth=config.depth,
        beam_width=config.beam_width,
        budget=config.budget,
        objective=config.objective,
        prune=config.prune,
        baseline_cycles=baseline_cycles,
        best_sequence=engine.best.sequence,
        best_fingerprint=engine.best.fingerprint,
        best_source=engine.best.source,
        best_score=engine.best.score,
        best_cycles=best_cycles,
        benefit={
            key: baseline_cycles[key] - best_cycles[key]
            for key in baseline_cycles
        },
        evaluator=engine.evaluator.stats,
        pruned=engine.pruned,
        exhausted=engine.exhausted,
        visit_order=list(engine.visit_order),
        leaves=list(engine.leaves),
        elapsed_seconds=elapsed,
    )


def replay_sequence(
    source: str,
    sequence: Sequence[str],
    options: Optional[DriverOptions] = None,
) -> Program:
    """Replay a reported pipeline through the ordinary driver path.

    This is deliberately *not* the evaluator: it re-runs the sequence
    through :func:`repro.genesis.pipeline.optimize` from scratch, so
    tests can assert that what the search recorded is what the driver
    actually does.
    """
    from repro.genesis.pipeline import optimize
    from repro.opts.catalog import build_optimizer, standard_optimizers
    from repro.opts.specs import STANDARD_SPECS

    program = parse_program(source)
    optimizers = [
        standard_optimizers((name,))[name]
        if name in STANDARD_SPECS
        else build_optimizer(name)
        for name in sequence
    ]
    optimize(
        program,
        optimizers,
        options=options or DriverOptions(apply_all=True),
        in_place=True,
    )
    return program


def certify(
    result: SearchResult,
    base_source: str,
    trials: int = 3,
    seed: int = 0,
    options: Optional[DriverOptions] = None,
) -> SearchResult:
    """Oracle-certify a search result before anyone believes it.

    Replays the best sequence through the driver pipeline, checks the
    replay reaches the recorded fingerprint (a mismatch is a
    determinism bug, raised loudly as :class:`SearchError`), then
    differential-tests base vs optimized on ``trials`` randomized
    seeded environments.  The verdict lands in ``result.certified``.
    """
    from repro.verify.oracle import EquivalenceOracle

    replayed = replay_sequence(base_source, result.best_sequence, options)
    if replayed.fingerprint() != result.best_fingerprint:
        raise SearchError(
            f"replaying {result.pipeline_text()} reached fingerprint "
            f"{replayed.fingerprint()[:12]}…, but the search recorded "
            f"{result.best_fingerprint[:12]}… — search and driver "
            "disagree"
        )
    oracle = EquivalenceOracle(trials=trials, seed=seed)
    report = oracle.check(parse_program(base_source), replayed)
    result.certified = report.equivalent
    result.oracle_trials = report.trials
    result.oracle_summary = report.summary()
    return result


def search_suite(
    names: Optional[Sequence[str]] = None,
    config: Optional[SearchConfig] = None,
    client=None,
    certify_results: bool = True,
    oracle_trials: int = 3,
    oracle_seed: int = 0,
) -> list[SearchResult]:
    """Best-found pipelines per workload, oracle-certified by default.

    One shared service client (when given) serves every workload, so
    states reached from different workloads still share the
    fingerprint-keyed cache across the whole campaign.
    """
    from repro.workloads.suite import full_suite

    config = config or SearchConfig(opt_names=_default_passes())
    results: list[SearchResult] = []
    for item in full_suite(names):
        result = search_program(
            item.source, config, client=client, name=item.name
        )
        if certify_results:
            certify(
                result,
                item.source,
                trials=oracle_trials,
                seed=oracle_seed,
                options=config.driver_options(),
            )
        results.append(result)
    return results


def _default_passes() -> tuple[str, ...]:
    from repro.opts.specs import PAPER_TEN

    return PAPER_TEN
