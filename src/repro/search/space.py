"""The phase-ordering search space: states and candidate evaluation.

A search *state* (:class:`SearchNode`) is one program reached by
applying a sequence of catalog optimizations to a base program.  States
are identified by :meth:`repro.ir.program.Program.fingerprint` — the
same canonical content hash the service result cache and the match
indexes key on — so two orderings that converge to the same program
*are* the same state, wherever they sit in the search tree.

Extending a state by one pass is an :class:`EvalRequest`; executing it
is the evaluator's job.  Two interchangeable evaluators implement the
same contract:

* :class:`LocalEvaluator` runs the transactional pipeline
  (:func:`repro.genesis.pipeline.optimize`) in-process, with an
  optional ``(fingerprint, pass)``-keyed memo — the serial baseline;
* :class:`ServiceEvaluator` submits each extension as a one-pass
  :class:`~repro.service.job.Job` through an
  :class:`~repro.service.scheduler.OptimizationService`, so
  fingerprint-identical intermediate states are *free cache hits*
  (and identical in-flight extensions coalesce, single-flight), and a
  process-pool backend evaluates a whole frontier concurrently.

Both run the exact same driver path a ``genesis optimize`` run uses, so
a sequence found by search replays byte-identically through the
pipeline — the property the oracle-certification gate and the
``tests/search`` replay properties assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.genesis.driver import DriverOptions
from repro.ir.program import Program


class SearchError(Exception):
    """Misconfigured search or an evaluation the engine cannot use."""


@dataclass(frozen=True)
class SearchNode:
    """One explored state: a pass sequence and the program it reaches.

    ``applied`` records how many application points each step of
    ``sequence`` fired at (parallel to ``sequence``), so exhaustive
    studies can report per-pass activity without replaying.  ``score``
    is the estimated cycle count under the engine's objective machine
    model — lower is better.
    """

    sequence: tuple[str, ...]
    source: str
    fingerprint: str
    score: float
    applied: tuple[int, ...] = ()

    @property
    def depth(self) -> int:
        return len(self.sequence)

    def describe(self) -> str:
        pipeline = " -> ".join(self.sequence) if self.sequence else "(empty)"
        return f"{pipeline} [score {self.score:g}]"


@dataclass(frozen=True)
class EvalRequest:
    """Extend ``node`` by one application of pass ``opt_name``."""

    node: SearchNode
    opt_name: str


@dataclass
class EvalOutcome:
    """What one extension produced.

    ``executed`` is False when the result came from a memo entry, the
    service result cache, or a coalesced single-flight ride — i.e. no
    backend actually ran the driver for this request.
    """

    source: str
    applications: int = 0
    executed: bool = True
    ok: bool = True
    failure: str = ""


@dataclass
class EvaluatorStats:
    """Work accounting shared by every evaluator."""

    #: extensions requested (the search budget counts these)
    evaluations: int = 0
    #: extensions that actually ran the driver on a backend
    executed: int = 0
    #: extensions served from a memo, the result cache, or coalescing
    cache_hits: int = 0
    #: extensions that failed structurally (worker death, bad job)
    failures: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "evaluations": self.evaluations,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "failures": self.failures,
        }

    def __str__(self) -> str:
        return (
            f"{self.evaluations} evaluation(s): {self.executed} executed, "
            f"{self.cache_hits} cache hit(s), {self.failures} failure(s)"
        )


class Evaluator:
    """The contract both evaluators implement."""

    stats: EvaluatorStats

    def evaluate(self, requests: Sequence[EvalRequest]) -> list[EvalOutcome]:
        """One outcome per request, in request order."""
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release owned resources (service-backed evaluators)."""


class LocalEvaluator(Evaluator):
    """Serial in-process evaluation through the transactional pipeline.

    With ``memo=True`` (the default) repeated ``(fingerprint, pass)``
    extensions are served from an in-memory memo — the local analogue
    of the service's fingerprint-keyed result cache.  ``memo=False``
    is the honest sequential baseline the search benchmark measures
    against.
    """

    def __init__(self, options: Optional[DriverOptions] = None,
                 memo: bool = True):
        self.options = options or DriverOptions(apply_all=True)
        self.stats = EvaluatorStats()
        self._memo: Optional[dict[tuple[str, str], EvalOutcome]] = (
            {} if memo else None
        )

    def evaluate(self, requests: Sequence[EvalRequest]) -> list[EvalOutcome]:
        return [self._evaluate_one(request) for request in requests]

    def _evaluate_one(self, request: EvalRequest) -> EvalOutcome:
        self.stats.evaluations += 1
        key = (request.node.fingerprint, request.opt_name)
        if self._memo is not None:
            hit = self._memo.get(key)
            if hit is not None:
                self.stats.cache_hits += 1
                return EvalOutcome(
                    source=hit.source,
                    applications=hit.applications,
                    executed=False,
                    ok=hit.ok,
                    failure=hit.failure,
                )
        outcome = self._run(request)
        self.stats.executed += 1
        if not outcome.ok:
            self.stats.failures += 1
        if self._memo is not None:
            self._memo[key] = outcome
        return outcome

    def _run(self, request: EvalRequest) -> EvalOutcome:
        from repro.frontend.lower import parse_program
        from repro.frontend.unparse import unparse_program
        from repro.genesis.pipeline import optimize
        from repro.opts.catalog import build_optimizer, standard_optimizers
        from repro.opts.specs import STANDARD_SPECS

        program = parse_program(request.node.source)
        name = request.opt_name
        optimizer = (
            standard_optimizers((name,))[name]
            if name in STANDARD_SPECS
            else build_optimizer(name)
        )
        report = optimize(
            program, [optimizer], options=self.options, in_place=True
        )
        return EvalOutcome(
            source=unparse_program(program, name=program.name),
            applications=report.total_applications,
        )


class ServiceEvaluator(Evaluator):
    """Evaluation through an :class:`OptimizationService`.

    Every extension is one single-pass job; the service's
    fingerprint-keyed result cache turns convergent orderings (and a
    restarted search) into free hits, its single-flight coalescing
    deduplicates identical extensions submitted in the same frontier,
    and a process-pool backend runs distinct extensions concurrently.
    Submissions are windowed to the service's queue limit, so an
    arbitrarily wide frontier is never rejected with ``QueueFull``.
    """

    def __init__(self, client, options: Optional[DriverOptions] = None):
        # duck-typed so the network client (repro.service.net) plugs in
        # exactly like the in-process one
        for method in ("submit", "wait"):
            if not callable(getattr(client, method, None)):
                raise SearchError(
                    "ServiceEvaluator needs a service client with "
                    "submit/wait (repro.service.ServiceClient or "
                    "repro.service.net.NetworkServiceClient)"
                )
        self.client = client
        self.options = options or DriverOptions(apply_all=True)
        self.stats = EvaluatorStats()

    def evaluate(self, requests: Sequence[EvalRequest]) -> list[EvalOutcome]:
        from repro.service.job import Job

        outcomes: list[Optional[EvalOutcome]] = [None] * len(requests)
        window = max(1, self.client.queue_limit)
        pending: list[tuple[int, int]] = []  # (request index, job id)

        def collect() -> None:
            for index, job_id in pending:
                outcomes[index] = self._outcome(self.client.wait(job_id))
            pending.clear()

        for index, request in enumerate(requests):
            self.stats.evaluations += 1
            job = Job(
                source=request.node.source,
                opt_names=(request.opt_name,),
                options=_options_dict(self.options),
                fingerprint=request.node.fingerprint,
            )
            if len(pending) >= window:
                collect()
            pending.append((index, self.client.submit(job)))
        collect()
        return [outcome for outcome in outcomes if outcome is not None]

    def _outcome(self, result) -> EvalOutcome:
        served = bool(result.cached or result.coalesced)
        if served:
            self.stats.cache_hits += 1
        else:
            self.stats.executed += 1
        if not result.ok or result.source is None:
            self.stats.failures += 1
            failure = (
                f"{result.failure.error_type}: {result.failure.error}"
                if result.failure is not None
                else f"job resolved {result.status} without a program"
            )
            return EvalOutcome(
                source="", executed=not served, ok=False, failure=failure
            )
        return EvalOutcome(
            source=result.source,
            applications=result.applications,
            executed=not served,
        )


def _options_dict(options: DriverOptions) -> dict[str, object]:
    from repro.service.job import options_to_dict

    return options_to_dict(options)


def canonical_source(program: Program) -> str:
    """A program as round-trip-stable mini-Fortran text.

    Search states live in the unparse/parse domain (the service wire
    format), so the root is rendered once up front; fingerprints
    survive the round trip (see :meth:`Program.fingerprint`).
    """
    from repro.frontend.unparse import unparse_program

    return unparse_program(program, name=program.name)
