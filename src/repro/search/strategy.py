"""Search strategies over pass orderings.

Every strategy drives the same :class:`PhaseOrderingEngine` primitives
(``expand``/``extend``/``replay``) and therefore inherits the engine's
budget, pruning, best-tracking and determinism guarantees; a strategy
only decides *which* states to extend next.

* **beam** — classic beam search: expand the whole frontier one level,
  keep the ``beam_width`` best children, repeat to ``depth``.
* **greedy** — beam search with width 1 (one walk, best child each
  step).  Kept as its own name because it is the building block the
  others are measured against.
* **iterated** — iterated greedy: a first greedy walk identical to
  ``greedy``, then seeded destroy-and-rebuild rounds — cut the
  incumbent's sequence at a random point, replay the prefix (free
  memo/cache hits), and greedily rebuild with a shuffled candidate
  order.  With ``iterations=1`` it *is* greedy, bit for bit — the
  property suite asserts this.
* **exhaustive** — breadth-first enumeration of every sequence to
  ``depth`` (no-repeat sequences when ``allow_repeats=False``),
  recording full-depth trajectories; the ordering experiment (E4)
  rides this strategy.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.search.engine import PhaseOrderingEngine, SearchConfig
from repro.search.space import SearchError, SearchNode


class SearchStrategy:
    """The strategy contract: explore via the engine's primitives."""

    name: str = "strategy"

    def run(self, engine: PhaseOrderingEngine) -> None:
        raise NotImplementedError


class BeamSearch(SearchStrategy):
    """Frontier of the ``width`` best states, level by level."""

    name = "beam"

    def __init__(self, width: int):
        if width < 1:
            raise SearchError("beam width must be >= 1")
        self.width = width

    def run(self, engine: PhaseOrderingEngine) -> None:
        assert engine.root is not None
        frontier: list[SearchNode] = [engine.root]
        for _level in range(engine.config.depth):
            children: list[SearchNode] = []
            for node in frontier:
                children.extend(engine.expand(node))
            if not children:
                break
            children.sort(key=engine.rank)
            frontier = children[: self.width]


class GreedySearch(BeamSearch):
    """One walk, best child each step: beam search with width 1."""

    name = "greedy"

    def __init__(self):
        super().__init__(width=1)


class IteratedGreedy(SearchStrategy):
    """Greedy construction plus seeded destroy-and-rebuild rounds."""

    name = "iterated"

    def __init__(self, iterations: int, seed: int):
        if iterations < 1:
            raise SearchError("iterated greedy needs >= 1 iteration")
        self.iterations = iterations
        self.seed = seed

    def run(self, engine: PhaseOrderingEngine) -> None:
        assert engine.root is not None
        rng = random.Random(self.seed)
        # round 1: canonical-order greedy — identical to GreedySearch
        self._walk(engine, engine.root, engine.config.opt_names)
        for _round in range(self.iterations - 1):
            if engine.remaining_budget < 1:
                break
            assert engine.best is not None
            incumbent = engine.best.sequence
            order = list(engine.config.opt_names)
            rng.shuffle(order)
            start: Optional[SearchNode] = engine.root
            if incumbent:
                # destroy: keep a random prefix of the incumbent
                # (replayed for free through the memo/result cache)
                cut = rng.randrange(len(incumbent) + 1)
                start = engine.replay(incumbent[:cut])
            if start is None:
                break
            self._walk(engine, start, tuple(order))

    def _walk(
        self,
        engine: PhaseOrderingEngine,
        node: SearchNode,
        order: Sequence[str],
    ) -> None:
        current = node
        while current.depth < engine.config.depth:
            if engine.config.allow_repeats:
                passes = tuple(order)
            else:
                used = set(current.sequence)
                passes = tuple(n for n in order if n not in used)
            if not passes:
                break
            children = engine.expand(current, passes=passes)
            if not children:
                break
            current = min(children, key=engine.rank)


class ExhaustiveSearch(SearchStrategy):
    """Breadth-first enumeration of every sequence to ``depth``.

    Keeps unchanged states (a pass that found no application point
    still occupies its slot in the ordering) and does not dedup
    convergent branches — the point of an exhaustive study is one
    trajectory per ordering.  Evaluation reuse still happens a layer
    down, in the evaluator's memo or the service's result cache.
    """

    name = "exhaustive"

    def run(self, engine: PhaseOrderingEngine) -> None:
        assert engine.root is not None
        frontier: list[SearchNode] = [engine.root]
        for _level in range(engine.config.depth):
            next_frontier: list[SearchNode] = []
            for node in frontier:
                next_frontier.extend(
                    engine.expand(node, keep_unchanged=True, dedup=False)
                )
            if not next_frontier:
                break
            frontier = next_frontier
        for node in frontier:
            engine.record_leaf(node)


#: strategy name -> factory over the search config
STRATEGIES = {
    "beam": lambda config: BeamSearch(config.beam_width),
    "greedy": lambda config: GreedySearch(),
    "iterated": lambda config: IteratedGreedy(config.iterations,
                                              config.seed),
    "exhaustive": lambda config: ExhaustiveSearch(),
}


def make_strategy(config: SearchConfig) -> SearchStrategy:
    """Build the configured strategy (:class:`SearchError` if unknown)."""
    factory = STRATEGIES.get(config.strategy)
    if factory is None:
        raise SearchError(
            f"unknown search strategy {config.strategy!r}; "
            f"known: {sorted(STRATEGIES)}"
        )
    return factory(config)
