"""Optimization-as-a-service: scheduler, worker pools, result cache.

The serving layer above the Figure 5 driver and the Figure 3 pipeline:
many programs, many optimization pipelines, concurrently, with
identical requests served from a fingerprint-keyed cache instead of
re-optimized.  See ``docs/service.md`` for the architecture.

* :mod:`repro.service.job` — the :class:`Job`/:class:`JobResult`
  wire model (programs travel as mini-Fortran text via the
  frontend/unparse round trip);
* :mod:`repro.service.cache` — the LRU :class:`ResultCache` keyed by
  :meth:`repro.ir.program.Program.fingerprint` × optimization sequence
  × options × package version;
* :mod:`repro.service.backends` — the in-process (deterministic) and
  process-pool (parallel, crash-isolated) worker backends;
* :mod:`repro.service.scheduler` — :class:`OptimizationService`:
  bounded queue, admission control, per-job deadlines, single-flight
  coalescing, worker reaping;
* :mod:`repro.service.client` — the :class:`ServiceClient` Python API;
  the ``genesis serve``/``submit``/``batch`` CLI verbs wrap it.
"""

from repro.service.backends import (
    InProcessBackend,
    ProcessPoolBackend,
    execute_job,
)
from repro.service.cache import CacheStats, ResultCache
from repro.service.client import ServiceClient
from repro.service.job import (
    COMPLETED,
    EXPIRED,
    FAILED,
    Job,
    JobError,
    JobResult,
    REJECTED,
    options_from_dict,
    options_to_dict,
)
from repro.service.scheduler import (
    OptimizationService,
    ServiceConfig,
    ServiceError,
    ServiceStats,
)

__all__ = [
    "COMPLETED",
    "EXPIRED",
    "FAILED",
    "REJECTED",
    "CacheStats",
    "InProcessBackend",
    "Job",
    "JobError",
    "JobResult",
    "OptimizationService",
    "ProcessPoolBackend",
    "ResultCache",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceStats",
    "execute_job",
    "options_from_dict",
    "options_to_dict",
]
