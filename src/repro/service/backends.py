"""Worker backends: where jobs actually execute.

Two interchangeable backends implement the same tiny contract
(:class:`WorkerHandle`): :class:`InProcessBackend` runs each job
synchronously in the submitting process — fully deterministic, no
subprocess machinery, the right arm for tests and for ``workers=1``
serial baselines — and :class:`ProcessPoolBackend` runs each job in its
own forked worker process, up to ``max_workers`` concurrently, results
returned over a pipe.

One process per job (rather than long-lived pool workers) keeps fault
isolation trivial: a crashed or stalled worker is *reaped* — terminated
and collected — without poisoning any other job's state, and the
scheduler reports the death as a structured
:class:`~repro.genesis.transaction.ApplicationFailure` (phase
``"worker"``).  On fork-capable platforms a worker inherits the
parent's generated-optimizer cache and match-engine code, so spawn cost
is milliseconds against jobs that run pipelines for tens of
milliseconds to seconds.

:func:`execute_job` is the shared execution path: parse the job's
source, build the named optimizers from the catalog, and run the
existing transactional pipeline (:func:`repro.genesis.pipeline.optimize`)
with its rollback/quarantine/budget semantics intact.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Optional

from repro.service.job import (
    COMPLETED,
    FAILED,
    KIND_EXPERIMENT,
    KIND_OPTIMIZE,
    Job,
    JobResult,
    job_failure,
)

#: Exit code a chaos-"exit" worker dies with (distinctive in reports).
CHAOS_EXIT_CODE = 23

#: How long a chaos-"stall" worker wedges (longer than any deadline).
_STALL_SECONDS = 3600.0


def execute_job(job: Job, worker: str = "inprocess") -> JobResult:
    """Run one job to completion in the current process.

    Any exception is converted into a ``status="failed"`` result with
    a structured failure — the service never surfaces a traceback for
    a bad job, matching the driver's own containment policy.
    """
    started = time.perf_counter()
    try:
        if job.kind == KIND_EXPERIMENT:
            result = _execute_experiment(job)
        elif job.kind == KIND_OPTIMIZE:
            result = _execute_optimize(job)
        else:
            raise ValueError(f"unknown job kind {job.kind!r}")
    except Exception as error:
        result = JobResult(
            job_id=-1,
            status=FAILED,
            fingerprint=job.fingerprint,
            failure=job_failure(
                "execute", type(error).__name__, str(error)
            ),
        )
    result.worker = worker
    result.elapsed_seconds = time.perf_counter() - started
    return result


def _execute_optimize(job: Job) -> JobResult:
    from repro.frontend.lower import parse_program
    from repro.frontend.unparse import unparse_program
    from repro.genesis.pipeline import optimize
    from repro.opts.catalog import standard_optimizers
    from repro.opts.specs import STANDARD_SPECS

    program = parse_program(job.source)
    if program.fingerprint() != job.fingerprint:
        # the fingerprint was stamped at admission from the same text,
        # so a mismatch means the job was corrupted in transit
        raise ValueError(
            f"program fingerprint mismatch: job says "
            f"{job.fingerprint[:12]}…, parsed source hashes to "
            f"{program.fingerprint()[:12]}…"
        )
    optimizers = _resolve_optimizers(job.opt_names, STANDARD_SPECS,
                                     standard_optimizers,
                                     inline=job.payload.get("spec_sources"))
    # pipeline knobs that are not DriverOptions travel in the payload
    # (and therefore in the cache key) so a service run is byte-
    # identical to a serial one under the same settings
    pipeline_kwargs: dict[str, int] = {}
    if "quarantine_after" in job.payload:
        pipeline_kwargs["quarantine_after"] = int(
            job.payload["quarantine_after"]  # type: ignore[arg-type]
        )
    report = optimize(
        program,
        optimizers,
        options=job.driver_options(),
        in_place=True,
        **pipeline_kwargs,
    )
    per_optimizer: dict[str, int] = {}
    stopped: dict[str, str] = {}
    for result in report.results:
        per_optimizer[result.optimizer] = (
            per_optimizer.get(result.optimizer, 0) + result.applied
        )
        if result.stopped:
            stopped.setdefault(result.optimizer, result.stopped)
    return JobResult(
        job_id=-1,
        status=COMPLETED,
        fingerprint=job.fingerprint,
        source=unparse_program(program, name=program.name),
        applications=report.total_applications,
        rollbacks=report.total_rollbacks,
        per_optimizer=per_optimizer,
        stopped=stopped,
        quarantined=list(report.quarantined),
        app_failures=[str(failure) for failure in report.failures()],
    )


def _resolve_optimizers(opt_names, standard_specs, standard_optimizers,
                        inline=None):
    """Catalog lookups, sharing the generated-optimizer cache.

    ``inline`` maps names to GOSpeL sources shipped in the job payload
    (``payload["spec_sources"]``) — how the spec-inference pipeline
    evaluates candidates that exist in no catalog yet.  Inline sources
    shadow catalog names and, being part of the payload, participate
    in the result-cache key.
    """
    from repro.genesis.generator import generate_optimizer
    from repro.opts.catalog import build_optimizer

    inline = inline or {}
    standard = standard_optimizers(
        tuple(sorted(
            {n for n in opt_names if n in standard_specs and n not in inline}
        ))
    )

    def resolve(name):
        if name in inline:
            return generate_optimizer(str(inline[name]), name=name)
        if name in standard:
            return standard[name]
        return build_optimizer(name)

    return [resolve(name) for name in opt_names]


def _execute_experiment(job: Job) -> JobResult:
    from repro.experiments.runner import run_experiment_component

    name = str(job.payload.get("experiment", ""))
    workload_names = job.payload.get("workloads")
    component = run_experiment_component(name, workload_names)
    return JobResult(
        job_id=-1,
        status=COMPLETED,
        fingerprint=job.fingerprint,
        payload=component,
    )


def _apply_chaos(job: Job) -> None:
    """Honour the test-only worker fault hooks (subprocess side)."""
    if job.chaos == "stall":
        time.sleep(_STALL_SECONDS)
    elif job.chaos == "exit":
        os._exit(CHAOS_EXIT_CODE)


class WorkerHandle:
    """One in-flight job execution (the backend contract).

    ``poll()`` is non-blocking and returns the :class:`JobResult` once
    available; ``crashed`` reports a worker that died without
    producing one; ``kill()`` reaps the worker (used for deadline
    enforcement and shutdown).
    """

    worker: str = "?"

    def poll(self) -> Optional[JobResult]:  # pragma: no cover - interface
        raise NotImplementedError

    @property
    def crashed(self) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    @property
    def exitcode(self) -> Optional[int]:
        return None

    def kill(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class _CompletedHandle(WorkerHandle):
    """An already-finished execution (the in-process backend)."""

    def __init__(self, result: JobResult, worker: str):
        self._result = result
        self.worker = worker

    def poll(self) -> Optional[JobResult]:
        return self._result

    @property
    def crashed(self) -> bool:
        return False

    def kill(self) -> None:
        pass


class InProcessBackend:
    """Synchronous execution in the submitting process.

    Deterministic and debuggable: ``spawn`` runs the job to completion
    before returning, so scheduling order *is* completion order.  The
    chaos hooks are simulated (a ``chaos="exit"``/``"stall"`` job
    yields the same structured worker failure the process backend
    reports) so containment tests run identically on either backend.
    """

    name = "inprocess"

    def __init__(self, max_workers: int = 1):
        self.max_workers = max(1, max_workers)

    def spawn(self, job: Job) -> WorkerHandle:
        if job.chaos in ("exit", "stall"):
            error_type = (
                "WorkerCrashed" if job.chaos == "exit" else "WorkerStalled"
            )
            result = JobResult(
                job_id=-1,
                status=FAILED,
                fingerprint=job.fingerprint,
                failure=job_failure(
                    "worker",
                    error_type,
                    f"simulated {job.chaos} fault (in-process backend)",
                ),
            )
            return _CompletedHandle(result, worker=self.name)
        return _CompletedHandle(execute_job(job, worker=self.name),
                                worker=self.name)

    def close(self) -> None:
        pass


def _worker_main(conn, payload: dict) -> None:
    """Subprocess entry: execute one job, ship the result back."""
    job = Job.from_dict(payload)
    try:
        if job.chaos == "exit":
            # die mid-job: parse work has happened, no result ever sent
            _apply_chaos(job)
        elif job.chaos == "stall":
            _apply_chaos(job)
        result = execute_job(job, worker=f"pid:{os.getpid()}")
        conn.send(result.to_dict() if job.kind != KIND_EXPERIMENT
                  else result)
    except BaseException:  # pragma: no cover - belt and braces
        try:
            conn.send(
                JobResult(
                    job_id=-1,
                    status=FAILED,
                    fingerprint=job.fingerprint,
                    failure=job_failure(
                        "worker", "WorkerError", "worker raised unexpectedly"
                    ),
                ).to_dict()
            )
        except Exception:
            pass
    finally:
        conn.close()


class _ProcessHandle(WorkerHandle):
    """A live worker process plus the pipe its result arrives on."""

    def __init__(self, process, conn, kind: str):
        self._process = process
        self._conn = conn
        self._kind = kind
        self._result: Optional[JobResult] = None
        self._dead = False
        self._released = False
        #: exit code snapshot taken before the Process object is closed
        self._exitcode: Optional[int] = None
        self.worker = f"pid:{process.pid}"

    def poll(self) -> Optional[JobResult]:
        if self._result is not None:
            return self._result
        if self._dead:
            return None
        try:
            if self._conn.poll():
                payload = self._conn.recv()
                self._result = (
                    payload if isinstance(payload, JobResult)
                    else JobResult.from_dict(payload)
                )
                self._process.join(timeout=5.0)
                self._release()
                return self._result
        except (EOFError, OSError):
            # the worker closed the pipe without a result: it is dead
            self._dead = True
            self._release()
            return None
        if not self._process.is_alive():
            # one last race-free look: the worker may have written the
            # result and exited between the two checks above
            try:
                if self._conn.poll():
                    payload = self._conn.recv()
                    self._result = (
                        payload if isinstance(payload, JobResult)
                        else JobResult.from_dict(payload)
                    )
                    self._release()
                    return self._result
            except (EOFError, OSError):
                pass
            self._dead = True
            self._release()
        return None

    def _release(self) -> None:
        """Free per-job OS resources as soon as the outcome is known.

        Closes the parent's pipe end, joins the exited process, and
        closes the Process object (dropping its sentinel fd) so a
        long-running service does not accumulate one open pipe and one
        unreaped process per completed job.  The exit code is
        snapshotted first — the scheduler reports it for crashes.
        """
        if self._released:
            return
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self._process.is_alive():  # pragma: no cover - lingering
            return
        self._process.join(timeout=1.0)
        self._exitcode = self._process.exitcode
        try:
            self._process.close()
        except ValueError:  # pragma: no cover - still running
            return
        self._released = True

    @property
    def finished(self) -> bool:
        """The outcome is known (result landed or the worker died)."""
        return self._result is not None or self._dead

    @property
    def crashed(self) -> bool:
        return self._result is None and self._dead

    @property
    def exitcode(self) -> Optional[int]:
        if self._released:
            return self._exitcode
        return self._process.exitcode

    def kill(self) -> None:
        """Reap the worker: terminate, escalate to SIGKILL, join."""
        if self._released:
            return
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=1.0)
            if self._process.is_alive():  # pragma: no cover - stubborn
                self._process.kill()
                self._process.join(timeout=1.0)
        self._dead = self._result is None
        self._release()


class ProcessPoolBackend:
    """One forked worker process per job, ``max_workers`` at a time.

    The concurrency cap is enforced by the scheduler (it never holds
    more than ``max_workers`` live handles); the backend itself only
    knows how to spawn and how to reap.
    """

    name = "process"

    def __init__(self, max_workers: int = 4, mp_context=None):
        self.max_workers = max(1, max_workers)
        self._ctx = mp_context or multiprocessing.get_context()
        self._handles: list[_ProcessHandle] = []

    def spawn(self, job: Job) -> WorkerHandle:
        # prune handles whose jobs already finished (their fds are
        # closed in _release); only live workers need tracking for
        # close()'s shutdown reap
        self._handles = [h for h in self._handles if not h.finished]
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, job.to_dict()),
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _ProcessHandle(process, parent_conn, job.kind)
        self._handles.append(handle)
        return handle

    def close(self) -> None:
        """Reap every worker still alive (service shutdown)."""
        for handle in self._handles:
            handle.kill()
        self._handles.clear()
