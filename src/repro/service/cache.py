"""The fingerprint-keyed optimization result cache.

Identical requests — same canonical program content hash
(:meth:`repro.ir.program.Program.fingerprint`), same optimization
sequence, same driver options, same package version — are served from
memory instead of being re-optimized.  Optimizers are deterministic
functions of (program, options), so a cached result is exact, not
approximate; the version component of the key
(:meth:`repro.service.job.Job.cache_key`) makes caches self-invalidate
across releases.

Plain LRU with hit/miss/eviction counters; capacity is in entries, not
bytes, since results are small (the optimized source plus counters).

An optional persistent tier (:class:`~repro.service.diskcache.DiskCache`)
layers beneath the LRU: a memory miss falls through to disk, a disk hit
is promoted back into memory, and every completed result is published
to both — so results survive restarts and are shared across a fleet of
serve processes pointed at the same directory.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

from repro.service.job import JobResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.diskcache import DiskCache


@dataclass
class CacheStats:
    """Hit/miss counters, exposed through ``ServiceStats``."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __str__(self) -> str:
        return (
            f"cache: {self.hits} hit(s), {self.misses} miss(es), "
            f"{self.evictions} eviction(s) "
            f"({self.hit_rate * 100:.1f}% hit rate)"
        )


class ResultCache:
    """LRU cache of completed :class:`JobResult` keyed by cache key,
    with an optional persistent :class:`DiskCache` tier beneath it."""

    def __init__(self, capacity: int = 256, disk: Optional["DiskCache"] = None):
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0")
        self.capacity = capacity
        self.disk = disk
        self._entries: OrderedDict[str, JobResult] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[JobResult]:
        """The cached result, marked ``cached=True``, or None.

        A hit refreshes the entry's recency.  The returned object is a
        shallow copy, so callers may stamp their own job id and timing
        on it without corrupting the cache.  A memory miss falls
        through to the persistent tier; a disk hit is promoted back
        into the LRU so a warm restart pays the disk read once.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return replace(entry, cached=True)
        if self.disk is not None:
            loaded = self.disk.get(key)
            if loaded is not None:
                self._store_memory(key, loaded)
                self.stats.hits += 1
                return replace(loaded, cached=True)
        self.stats.misses += 1
        return None

    def put(self, key: str, result: JobResult) -> None:
        """Store a completed result (non-completed results are not
        cacheable: crashes and deadline kills must be retried)."""
        if not result.ok:
            return
        self._store_memory(key, result)
        if self.disk is not None:
            self.disk.put(key, result)

    def _store_memory(self, key: str, result: JobResult) -> None:
        if self.capacity == 0:
            return
        self._entries[key] = replace(result, cached=False, coalesced=False)
        self._entries.move_to_end(key)
        self.stats.stores += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop the in-memory tier (the persistent tier is unaffected)."""
        self._entries.clear()
