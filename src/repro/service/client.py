"""`ServiceClient`: the Python API in front of the service.

A thin convenience layer that owns (or borrows) an
:class:`~repro.service.scheduler.OptimizationService` and exposes the
three calling conventions consumers need: one-shot optimization
(``optimize_program``/``optimize_source``), explicit
``submit``/``wait``, and order-preserving batches (``run_batch``) —
the shape the experiment/fuzz/chaos harnesses use to parallelize their
studies across cores.

    from repro.service import ServiceClient

    with ServiceClient(backend="process", max_workers=4) as client:
        results = client.run_batch(jobs)
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.genesis.driver import DriverOptions
from repro.ir.program import Program
from repro.service.job import Job, JobResult
from repro.service.scheduler import (
    OptimizationService,
    ServiceConfig,
    ServiceStats,
)


class ServiceClient:
    """Submit programs to an optimization service and await results."""

    def __init__(
        self,
        service: Optional[OptimizationService] = None,
        *,
        backend: str = "inprocess",
        max_workers: int = 2,
        queue_limit: int = 256,
        cache_capacity: int = 256,
        cache_dir: Optional[str] = None,
        default_deadline: Optional[float] = None,
        log=None,
    ):
        if service is not None:
            self.service = service
            self._owned = False
        else:
            self.service = OptimizationService(
                ServiceConfig(
                    backend=backend,
                    max_workers=max_workers,
                    queue_limit=queue_limit,
                    cache_capacity=cache_capacity,
                    cache_dir=cache_dir,
                    default_deadline=default_deadline,
                ),
                log=log,
            )
            self._owned = True

    # ------------------------------------------------------------------
    # one-shot convenience
    # ------------------------------------------------------------------
    def optimize_source(
        self,
        source: str,
        opt_names: Sequence[str],
        options: Optional[DriverOptions] = None,
        timeout: Optional[float] = None,
    ) -> JobResult:
        """Optimize mini-Fortran text; blocks until the job resolves."""
        job = Job.from_source(source, opt_names, options)
        return self.service.wait(self.service.submit(job), timeout=timeout)

    def optimize_program(
        self,
        program: Program,
        opt_names: Sequence[str],
        options: Optional[DriverOptions] = None,
        timeout: Optional[float] = None,
    ) -> JobResult:
        """Optimize an in-memory program (unparse round-trip transport)."""
        job = Job.from_program(program, opt_names, options)
        return self.service.wait(self.service.submit(job), timeout=timeout)

    # ------------------------------------------------------------------
    # explicit scheduling
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> int:
        return self.service.submit(job)

    def wait(self, job_id: int, timeout: Optional[float] = None) -> JobResult:
        return self.service.wait(job_id, timeout=timeout)

    def run_batch(
        self,
        jobs: Sequence[Job],
        timeout: Optional[float] = None,
    ) -> list[JobResult]:
        """Submit a batch and block until every job resolves.

        Results come back in submission order regardless of completion
        order, so batch consumers can zip them against their inputs.
        """
        job_ids = [self.service.submit(job) for job in jobs]
        self.service.drain(timeout=timeout)
        return [self.service.result(job_id) for job_id in job_ids]

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def stats(self) -> ServiceStats:
        return self.service.stats

    @property
    def queue_limit(self) -> int:
        """The service's admission-queue limit (batch consumers window
        their submissions to this so large campaigns are never
        rejected with ``QueueFull``)."""
        return self.service.config.queue_limit

    def close(self) -> None:
        """Close the underlying service if this client created it."""
        if self._owned:
            self.service.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
