"""The persistent, content-addressed disk tier of the result cache.

The in-memory LRU (:class:`~repro.service.cache.ResultCache`) dies with
the process; this tier does not.  Every completed
:class:`~repro.service.job.JobResult` is written to
``<root>/<key[:2]>/<key>.json`` — the sha256 cache key
(:meth:`repro.service.job.Job.cache_key`) *is* the address, so a result
computed by any serve process in a fleet is readable by every other one
sharing the directory, and survives restarts, crashes and ``kill -9``.

Crash safety is structural, not best-effort:

* **atomic writes** — an entry is serialized to a pid-tagged ``*.tmp``
  file in the same shard directory, flushed and fsynced, then published
  with :func:`os.replace`.  A process that dies mid-write leaves only a
  temp file, never a partial entry; readers can only ever observe a
  complete rename.
* **checksums on read** — the header records the sha256 of the payload
  JSON; an entry that fails the checksum (torn by a filesystem fault,
  truncated by hand, bit-flipped) is *quarantined*: deleted and
  counted, never deserialized.
* **version headers** — the header embeds ``repro.__version__`` and the
  on-disk ``FORMAT`` number; a mismatch on either is silently treated
  as a miss (with a counter), so an upgraded service never
  deserializes a stale format.
* **cross-process locking** — mutations (store, GC, temp-file sweep)
  serialize on an ``fcntl``-locked ``.lock`` file so a fleet of serve
  processes can share one directory; reads are lock-free (atomic
  rename makes every visible entry complete).
* **size-capped GC** — when the directory exceeds ``limit_bytes``, the
  oldest entries (by mtime; a read refreshes it, so this is LRU-ish)
  are removed until it fits.  Orphaned temp files whose writer died are
  swept on startup and during GC.

``REPRO_CHAOS_DISKCACHE=crash-put:<n>`` is a test-only fault hook: the
``n``-th store writes *half* of its temp file and hard-exits the
process (exit code :data:`CACHE_CRASH_EXIT`) — the network chaos
campaign uses it to prove that a crash mid-cache-write can never
publish a corrupt entry.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from repro._version import __version__
from repro.service.job import JobResult

try:  # POSIX; the lock degrades to a no-op elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

#: On-disk entry format; bump on any incompatible header/payload change.
FORMAT = 1

#: Exit code of the test-only crash-mid-write fault hook.
CACHE_CRASH_EXIT = 21

#: Environment variable carrying the fault hook (``crash-put:<n>``).
CHAOS_ENV = "REPRO_CHAOS_DISKCACHE"

#: Temp files older than this with a dead writer pid are swept.
_TMP_GRACE_SECONDS = 60.0


@dataclass
class DiskCacheStats:
    """Counters for the persistent tier (ride along in ServiceStats)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: entries that failed checksum/parse and were quarantined (deleted)
    corrupt_dropped: int = 0
    #: entries skipped because their format/version header mismatched
    version_misses: int = 0
    #: entries removed by the size-capped GC
    gc_evictions: int = 0
    #: orphaned temp files swept
    tmp_swept: int = 0
    #: I/O errors tolerated (cache degraded to a miss/no-op)
    errors: int = 0

    def as_dict(self) -> dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt_dropped": self.corrupt_dropped,
            "version_misses": self.version_misses,
            "gc_evictions": self.gc_evictions,
            "tmp_swept": self.tmp_swept,
            "errors": self.errors,
        }

    def __str__(self) -> str:
        return (
            f"disk: {self.hits} hit(s), {self.misses} miss(es), "
            f"{self.stores} store(s), {self.corrupt_dropped} "
            f"quarantined, {self.version_misses} version-miss(es), "
            f"{self.gc_evictions} gc-evicted"
        )


@dataclass
class DiskVerifyReport:
    """What :meth:`DiskCache.verify` found on a full directory scan."""

    entries: int = 0
    valid: int = 0
    #: published entries that failed checksum/parse (corruption!)
    corrupt: list[str] = None  # type: ignore[assignment]
    #: entries with a mismatched format/version header (stale, benign)
    stale: list[str] = None  # type: ignore[assignment]
    #: temp files present (unpublished partial writes, benign)
    temp_files: list[str] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.corrupt = self.corrupt or []
        self.stale = self.stale or []
        self.temp_files = self.temp_files or []

    @property
    def ok(self) -> bool:
        """No published entry is corrupt (temp files are not entries)."""
        return not self.corrupt

    def __str__(self) -> str:
        return (
            f"disk cache verify: {self.entries} entr(ies), "
            f"{self.valid} valid, {len(self.corrupt)} corrupt, "
            f"{len(self.stale)} stale, {len(self.temp_files)} temp "
            f"file(s)"
        )


class DiskCache:
    """Content-addressed persistent result store, shared across
    processes via atomic renames and an ``fcntl`` lock file."""

    def __init__(
        self,
        root: Path | str,
        limit_bytes: int = 64 * 1024 * 1024,
        shard_width: int = 2,
    ):
        if limit_bytes <= 0:
            raise ValueError("disk cache limit_bytes must be > 0")
        self.root = Path(root)
        self.limit_bytes = limit_bytes
        self.shard_width = max(0, shard_width)
        self.stats = DiskCacheStats()
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock_path = self.root / ".lock"
        self._puts = 0
        self._crash_at = _parse_chaos(os.environ.get(CHAOS_ENV))
        with self._locked():
            self._sweep_tmp()

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Where this cache key lives (sharded by fingerprint prefix)."""
        shard = key[: self.shard_width] if self.shard_width else ""
        return (self.root / shard if shard else self.root) / f"{key}.json"

    # ------------------------------------------------------------------
    # read
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[JobResult]:
        """The stored result, or None; corrupt entries are quarantined.

        Lock-free: atomic publication means any visible entry is
        complete.  A hit refreshes the entry's mtime so the GC's
        oldest-first eviction approximates LRU.
        """
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.errors += 1
            self.stats.misses += 1
            return None
        result = self._decode(key, blob)
        if result is None:
            self.stats.misses += 1
            return None
        try:
            now = time.time()
            os.utime(path, (now, now))
        except OSError:  # pragma: no cover - entry raced away
            pass
        self.stats.hits += 1
        return result

    def _decode(self, key: str, blob: bytes) -> Optional[JobResult]:
        """Header-check, checksum-check, and rebuild one entry."""
        try:
            envelope = json.loads(blob)
            if not isinstance(envelope, dict):
                raise ValueError("entry is not an object")
        except (ValueError, UnicodeDecodeError):
            self._quarantine(key, "unparseable entry")
            return None
        if (
            envelope.get("format") != FORMAT
            or envelope.get("version") != __version__
        ):
            # a different release (or on-disk format) wrote this: a
            # miss, never a deserialization — upgrades stay safe
            self.stats.version_misses += 1
            return None
        payload = envelope.get("payload")
        recorded = envelope.get("checksum")
        if not isinstance(payload, dict) or not isinstance(recorded, str):
            self._quarantine(key, "missing payload/checksum")
            return None
        if _checksum(payload) != recorded:
            self._quarantine(key, "checksum mismatch")
            return None
        result = JobResult.from_dict(payload)
        result.cache_key = key
        return result

    def _quarantine(self, key: str, reason: str) -> None:
        """Delete a corrupt entry so it can never be served again."""
        self.stats.corrupt_dropped += 1
        with self._locked():
            try:
                self.path_for(key).unlink()
            except OSError:  # pragma: no cover - already gone
                pass

    # ------------------------------------------------------------------
    # write
    # ------------------------------------------------------------------
    def put(self, key: str, result: JobResult) -> None:
        """Publish one completed result atomically.

        Serialized to a pid-tagged temp file in the entry's shard
        directory, fsynced, then renamed over the final path — a crash
        at any instant leaves either the old state or the new entry,
        never a torn one.  I/O failures degrade to a no-op (the cache
        is an accelerator, not a dependency).
        """
        if not result.ok:
            return
        path = self.path_for(key)
        payload = result.to_dict()
        envelope = {
            "format": FORMAT,
            "version": __version__,
            "key": key,
            "checksum": _checksum(payload),
            "payload": payload,
        }
        blob = (json.dumps(envelope, sort_keys=True) + "\n").encode()
        tmp = path.parent / f"{path.name}.tmp-{os.getpid()}"
        self._puts += 1
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                if self._crash_at is not None and self._puts >= self._crash_at:
                    # test-only fault: die mid-write with a half-written
                    # temp file on disk — the rename below never happens
                    handle.write(blob[: len(blob) // 2])
                    handle.flush()
                    os.fsync(handle.fileno())
                    os._exit(CACHE_CRASH_EXIT)
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError:
            self.stats.errors += 1
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        self.stats.stores += 1
        self._maybe_gc()

    # ------------------------------------------------------------------
    # GC / maintenance
    # ------------------------------------------------------------------
    def _entries(self) -> Iterator[Path]:
        yield from self.root.glob("*/*.json")
        yield from self.root.glob("*.json")

    def _maybe_gc(self) -> None:
        try:
            files = [
                (path, path.stat()) for path in set(self._entries())
            ]
        except OSError:  # pragma: no cover - directory raced away
            self.stats.errors += 1
            return
        total = sum(stat.st_size for _, stat in files)
        if total <= self.limit_bytes:
            return
        with self._locked():
            self.gc(files_hint=files, total_hint=total)

    def gc(self, files_hint=None, total_hint=None) -> int:
        """Evict oldest entries until under the byte cap; sweep temps.

        Call under the lock (``_maybe_gc`` does); returns evictions.
        """
        self._sweep_tmp()
        if files_hint is None:
            files_hint = [
                (path, path.stat()) for path in set(self._entries())
            ]
            total_hint = sum(stat.st_size for _, stat in files_hint)
        total = total_hint or 0
        evicted = 0
        for path, stat in sorted(files_hint, key=lambda f: f[1].st_mtime):
            if total <= self.limit_bytes:
                break
            try:
                path.unlink()
            except OSError:  # pragma: no cover - raced with a peer
                continue
            total -= stat.st_size
            evicted += 1
            self.stats.gc_evictions += 1
        return evicted

    def _sweep_tmp(self) -> None:
        """Remove temp files whose writer died (crash mid-write)."""
        now = time.time()
        for tmp in list(self.root.glob("**/*.tmp-*")):
            pid = _tmp_pid(tmp.name)
            stale_age = False
            try:
                stale_age = now - tmp.stat().st_mtime > _TMP_GRACE_SECONDS
            except OSError:
                continue
            if pid == os.getpid():
                continue
            if pid is None or stale_age or not _pid_alive(pid):
                try:
                    tmp.unlink()
                    self.stats.tmp_swept += 1
                except OSError:  # pragma: no cover - raced with a peer
                    pass

    def verify(self) -> DiskVerifyReport:
        """Full-directory integrity scan (the chaos campaign's gate).

        Classifies every published entry as valid / corrupt / stale
        and lists unpublished temp files.  Read-only: nothing is
        quarantined or swept.
        """
        report = DiskVerifyReport()
        for tmp in self.root.glob("**/*.tmp-*"):
            report.temp_files.append(str(tmp))
        for path in sorted(set(self._entries())):
            report.entries += 1
            try:
                envelope = json.loads(path.read_bytes())
                if not isinstance(envelope, dict):
                    raise ValueError("entry is not an object")
            except (ValueError, UnicodeDecodeError, OSError):
                report.corrupt.append(str(path))
                continue
            if (
                envelope.get("format") != FORMAT
                or envelope.get("version") != __version__
            ):
                report.stale.append(str(path))
                continue
            payload = envelope.get("payload")
            if (
                not isinstance(payload, dict)
                or _checksum(payload) != envelope.get("checksum")
            ):
                report.corrupt.append(str(path))
                continue
            report.valid += 1
        return report

    def __len__(self) -> int:
        return sum(1 for _ in set(self._entries()))

    # ------------------------------------------------------------------
    # locking
    # ------------------------------------------------------------------
    @contextmanager
    def _locked(self):
        """Cross-process mutation lock (no-op where fcntl is absent)."""
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            yield
            return
        try:
            handle = open(self._lock_path, "a+b")
        except OSError:  # pragma: no cover - unwritable cache dir
            self.stats.errors += 1
            yield
            return
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            finally:
                handle.close()


def _checksum(payload: dict) -> str:
    """sha256 over the canonical payload JSON."""
    material = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(material).hexdigest()


def _tmp_pid(name: str) -> Optional[int]:
    _, _, tail = name.rpartition(".tmp-")
    try:
        return int(tail)
    except ValueError:
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError as error:
        return error.errno == errno.EPERM
    return True


def _parse_chaos(value: Optional[str]) -> Optional[int]:
    """``crash-put:<n>`` from the environment, else None."""
    if not value:
        return None
    kind, _, count = value.partition(":")
    if kind != "crash-put":
        return None
    try:
        return max(1, int(count))
    except ValueError:
        return None
