"""The unit of work the optimization service schedules.

A :class:`Job` is one program (carried as mini-Fortran source — the
frontend/unparse round trip is the serialization format, so jobs cross
process boundaries as plain text), one optimization sequence, and one
set of driver knobs.  :class:`JobResult` is the structured outcome:
either the optimized source plus per-optimizer statistics, or a
:class:`~repro.genesis.transaction.ApplicationFailure`-shaped record of
why the job died (worker crash, deadline, rejection) — a job never
surfaces a raw traceback to the submitter.

Everything here is plain-dict serializable (``to_dict``/``from_dict``)
because the process-pool backend ships jobs and results over pipes and
the ``genesis serve`` stdio server speaks JSON lines.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Optional, Sequence

from repro._version import __version__
from repro.genesis.driver import DriverOptions
from repro.genesis.transaction import ApplicationFailure
from repro.ir.program import Program

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
REJECTED = "rejected"
EXPIRED = "expired"

#: Job kinds the workers know how to execute.
KIND_OPTIMIZE = "optimize"
KIND_EXPERIMENT = "experiment"

#: ``DriverOptions`` fields that serialize into a job.  ``point_filter``
#: is deliberately absent: callables cannot cross a process boundary.
_OPTION_FIELDS = tuple(
    f.name for f in fields(DriverOptions) if f.name != "point_filter"
)


class JobError(ValueError):
    """A job that cannot be represented or executed as submitted."""


def options_to_dict(options: DriverOptions) -> dict[str, object]:
    """Serialize driver knobs to a plain dict (the job wire format)."""
    if options.point_filter is not None:
        raise JobError(
            "DriverOptions.point_filter is a callable and cannot be "
            "serialized into a service job"
        )
    return {name: getattr(options, name) for name in _OPTION_FIELDS}


def options_from_dict(payload: dict[str, object]) -> DriverOptions:
    """Rebuild :class:`DriverOptions` from the job wire format."""
    unknown = set(payload) - set(_OPTION_FIELDS)
    if unknown:
        raise JobError(
            f"unknown DriverOptions field(s) in job: {sorted(unknown)}"
        )
    return DriverOptions(**payload)  # type: ignore[arg-type]


@dataclass
class Job:
    """One optimization request.

    ``source`` is the program's mini-Fortran text; ``opt_names`` the
    optimization sequence (catalog names, applied in order, duplicates
    allowed — a multi-pass pipeline is just a repeated name); and
    ``options`` the serialized :class:`DriverOptions`.  ``fingerprint``
    is the canonical content hash of the *parsed* program
    (:meth:`repro.ir.program.Program.fingerprint`), computed at
    construction so admission control can key caches and single-flight
    tracking without re-parsing.

    ``deadline_seconds`` is the *service-level* wall-clock budget for
    the whole job (queue wait included) — distinct from the driver's
    own per-run ``options["deadline_seconds"]`` budget.  ``chaos`` is a
    test-only fault hook honoured by workers: ``"exit"`` hard-kills the
    worker process mid-job, ``"stall"`` wedges it until reaped.
    """

    source: str
    opt_names: tuple[str, ...]
    options: dict[str, object] = field(default_factory=dict)
    kind: str = KIND_OPTIMIZE
    fingerprint: str = ""
    #: service-level wall-clock budget (None: the service default)
    deadline_seconds: Optional[float] = None
    #: opaque payload for non-optimize kinds (e.g. experiment name)
    payload: dict[str, object] = field(default_factory=dict)
    #: test-only worker fault injection: None | "exit" | "stall"
    chaos: Optional[str] = None

    def __post_init__(self) -> None:
        self.opt_names = tuple(self.opt_names)
        if self.kind == KIND_OPTIMIZE and not self.fingerprint:
            from repro.frontend.lower import parse_program

            self.fingerprint = parse_program(self.source).fingerprint()

    @classmethod
    def from_program(
        cls,
        program: Program,
        opt_names: Sequence[str],
        options: Optional[DriverOptions] = None,
        **extra: object,
    ) -> "Job":
        """Build a job from an in-memory program (unparse round trip)."""
        from repro.frontend.unparse import unparse_program

        return cls(
            source=unparse_program(program, name=program.name),
            opt_names=tuple(opt_names),
            options=options_to_dict(options or DriverOptions(apply_all=True)),
            fingerprint=program.fingerprint(),
            **extra,  # type: ignore[arg-type]
        )

    @classmethod
    def from_source(
        cls,
        source: str,
        opt_names: Sequence[str],
        options: Optional[DriverOptions] = None,
        **extra: object,
    ) -> "Job":
        """Build a job from mini-Fortran text (parsed once, eagerly, so
        malformed programs are rejected at admission, not in a worker)."""
        return cls(
            source=source,
            opt_names=tuple(opt_names),
            options=options_to_dict(options or DriverOptions(apply_all=True)),
            **extra,  # type: ignore[arg-type]
        )

    @classmethod
    def experiment(cls, name: str, **extra: object) -> "Job":
        """An experiment-component job (see ``repro.experiments.runner``)."""
        return cls(
            source="",
            opt_names=(),
            kind=KIND_EXPERIMENT,
            fingerprint=f"experiment:{name}",
            payload={"experiment": name},
            **extra,  # type: ignore[arg-type]
        )

    def driver_options(self) -> DriverOptions:
        return options_from_dict(dict(self.options))

    def cache_key(self) -> str:
        """The fingerprint-keyed cache identity of this job.

        Canonical program content hash × optimization sequence ×
        driver options × job kind/payload × package version.  The
        version component makes caches self-invalidate across
        releases: a result computed by repro 1.0 is never served for
        the same request under 1.1.
        """
        material = json.dumps(
            {
                "version": __version__,
                "kind": self.kind,
                "fingerprint": self.fingerprint,
                "opts": list(self.opt_names),
                "options": {
                    name: self.options[name] for name in sorted(self.options)
                },
                "payload": {
                    str(k): repr(v) for k, v in sorted(self.payload.items())
                },
            },
            sort_keys=True,
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def to_dict(self) -> dict[str, object]:
        return {
            "source": self.source,
            "opt_names": list(self.opt_names),
            "options": dict(self.options),
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "deadline_seconds": self.deadline_seconds,
            "payload": dict(self.payload),
            "chaos": self.chaos,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "Job":
        return cls(
            source=payload["source"],  # type: ignore[arg-type]
            opt_names=tuple(payload.get("opt_names", ())),  # type: ignore[arg-type]
            options=dict(payload.get("options", {})),  # type: ignore[arg-type]
            kind=payload.get("kind", KIND_OPTIMIZE),  # type: ignore[arg-type]
            fingerprint=payload.get("fingerprint", ""),  # type: ignore[arg-type]
            deadline_seconds=payload.get("deadline_seconds"),  # type: ignore[arg-type]
            payload=dict(payload.get("payload", {})),  # type: ignore[arg-type]
            chaos=payload.get("chaos"),  # type: ignore[arg-type]
        )


def job_failure(
    phase: str, error_type: str, error: str, optimizer: str = "<service>"
) -> ApplicationFailure:
    """A job-level failure in the pipeline's own failure shape.

    Reuses :class:`ApplicationFailure` so service consumers handle
    worker crashes, reaped stalls and rejections with the same code
    that handles contained optimization failures.  ``restored`` is
    ``"isolation"``: the submitter's program was never mutated — the
    worker's copy died with the worker.
    """
    return ApplicationFailure(
        optimizer=optimizer,
        phase=phase,
        error_type=error_type,
        error=error,
        restored="isolation",
    )


@dataclass
class JobResult:
    """The structured outcome of one job."""

    job_id: int
    status: str
    fingerprint: str = ""
    cache_key: str = ""
    #: optimized program source (``status == "completed"``, optimize kind)
    source: Optional[str] = None
    applications: int = 0
    rollbacks: int = 0
    #: applications per optimizer name, in submission order
    per_optimizer: dict[str, int] = field(default_factory=dict)
    #: optimizer -> early-stop reason (deadline/fuel/rollback-budget/...)
    stopped: dict[str, str] = field(default_factory=dict)
    quarantined: list[str] = field(default_factory=list)
    #: contained per-application failures, rendered
    app_failures: list[str] = field(default_factory=list)
    #: the job-level failure for failed/rejected/expired statuses
    failure: Optional[ApplicationFailure] = None
    #: served from the result cache without running
    cached: bool = False
    #: piggybacked on another in-flight job's execution (single-flight)
    coalesced: bool = False
    #: backend worker that ran the job ("inprocess" or "pid:<n>")
    worker: str = ""
    queued_seconds: float = 0.0
    elapsed_seconds: float = 0.0
    #: opaque result object for non-optimize kinds (in-process and
    #: pipe-pickle transport only; omitted from the JSON wire format)
    payload: object = None

    @property
    def ok(self) -> bool:
        return self.status == COMPLETED

    def to_dict(self) -> dict[str, object]:
        """JSON-safe rendering (for ``genesis serve``/``batch``)."""
        failure = None
        if self.failure is not None:
            failure = {
                "optimizer": self.failure.optimizer,
                "phase": self.failure.phase,
                "error_type": self.failure.error_type,
                "error": self.failure.error,
                "restored": self.failure.restored,
            }
        return {
            "job_id": self.job_id,
            "status": self.status,
            "fingerprint": self.fingerprint,
            "source": self.source,
            "applications": self.applications,
            "rollbacks": self.rollbacks,
            "per_optimizer": dict(self.per_optimizer),
            "stopped": dict(self.stopped),
            "quarantined": list(self.quarantined),
            "app_failures": list(self.app_failures),
            "failure": failure,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "worker": self.worker,
            "queued_seconds": round(self.queued_seconds, 6),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "JobResult":
        failure = payload.get("failure")
        rebuilt = None
        if isinstance(failure, dict):
            rebuilt = ApplicationFailure(
                optimizer=failure.get("optimizer", "<service>"),
                phase=failure.get("phase", "worker"),
                error_type=failure.get("error_type", "Error"),
                error=failure.get("error", ""),
                restored=failure.get("restored", "isolation"),
            )
        return cls(
            job_id=int(payload.get("job_id", -1)),
            status=str(payload.get("status", FAILED)),
            fingerprint=str(payload.get("fingerprint", "")),
            source=payload.get("source"),  # type: ignore[arg-type]
            applications=int(payload.get("applications", 0)),
            rollbacks=int(payload.get("rollbacks", 0)),
            per_optimizer=dict(payload.get("per_optimizer", {})),  # type: ignore[arg-type]
            stopped=dict(payload.get("stopped", {})),  # type: ignore[arg-type]
            quarantined=list(payload.get("quarantined", [])),  # type: ignore[arg-type]
            app_failures=list(payload.get("app_failures", [])),  # type: ignore[arg-type]
            failure=rebuilt,
            cached=bool(payload.get("cached", False)),
            coalesced=bool(payload.get("coalesced", False)),
            worker=str(payload.get("worker", "")),
            queued_seconds=float(payload.get("queued_seconds", 0.0)),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
        )

    def program(self) -> Program:
        """Parse the optimized source back to a :class:`Program`."""
        if self.source is None:
            raise JobError(
                f"job {self.job_id} has no program (status {self.status})"
            )
        from repro.frontend.lower import parse_program

        return parse_program(self.source)

    def __str__(self) -> str:
        text = f"job {self.job_id}: {self.status}"
        if self.status == COMPLETED:
            text += f", {self.applications} application(s)"
            if self.rollbacks:
                text += f", {self.rollbacks} rollback(s)"
            if self.cached:
                text += " [cached]"
            if self.coalesced:
                text += " [coalesced]"
        elif self.failure is not None:
            text += f" ({self.failure.error_type}: {self.failure.error})"
        return text
