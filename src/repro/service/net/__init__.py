"""The network face of the optimization service.

``repro.service.net`` puts the PR 5 scheduler on a TCP socket:

* :mod:`repro.service.net.protocol` — the JSON-lines wire dialect
  (requests, responses, events, error envelopes) shared by the server,
  the client, and the ``genesis serve`` stdio debug loop;
* :mod:`repro.service.net.server` — :class:`OptimizationServer`: an
  asyncio server fronting one
  :class:`~repro.service.scheduler.OptimizationService`, with
  concurrent client sessions, streaming job-status events, heartbeats,
  per-connection backpressure, and graceful SIGTERM drain;
* :mod:`repro.service.net.client` — :class:`NetworkServiceClient`: a
  blocking socket client with connect/request timeouts, bounded
  seeded-jitter exponential backoff, and idempotent resubmission
  (safe because job identity is the cache key, so a retried
  submission coalesces or cache-hits instead of re-running).

See ``docs/service.md`` for the wire protocol and failure matrix.
"""

from repro.service.net.client import (
    NetworkServiceClient,
    RequestError,
    RetryPolicy,
    ServiceUnavailable,
)
from repro.service.net.protocol import (
    ProtocolError,
    job_from_request,
)
from repro.service.net.server import OptimizationServer, ServeConfig

__all__ = [
    "NetworkServiceClient",
    "OptimizationServer",
    "ProtocolError",
    "RequestError",
    "RetryPolicy",
    "ServeConfig",
    "ServiceUnavailable",
    "job_from_request",
]
